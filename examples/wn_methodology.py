#!/usr/bin/env python3
"""The workload-neutral methodology (Section 4.4), end to end.

Demonstrates the library's WNk pipeline on a small universe: partition the
training benchmarks by behaviour, evolve a specialist vector per group,
evaluate on a held-out benchmark that contributed nothing to training, and
compare against the workload-inclusive variant.

Run:  python examples/wn_methodology.py   (takes a couple of minutes)
"""

from repro.eval import default_config
from repro.eval.crossval import evolve_duel_vectors, partition_benchmarks
from repro.ga import FitnessEvaluator
from repro.policies import DGIPPRPolicy
from repro.viz import describe_vector

UNIVERSE = [
    "462.libquantum",
    "482.sphinx3",
    "447.dealII",
    "429.mcf",
    "400.perlbench",
    "453.povray",
]
HELD_OUT = "436.cactusADM"  # never seen during training


def main():
    config = default_config(trace_length=8000)

    groups = partition_benchmarks(UNIVERSE, 2, config)
    print("behaviour groups (by LRU miss rate):")
    for index, group in enumerate(groups):
        print(f"  group {index}: {', '.join(group)}")

    print("\nevolving one specialist vector per group (WN: training set")
    print(f"excludes {HELD_OUT}) ...")
    vectors = evolve_duel_vectors(
        UNIVERSE, 2, config=config, population_size=12, generations=3, seed=1
    )
    for vector in vectors:
        print(" ", describe_vector(vector))

    probe = FitnessEvaluator([HELD_OUT], config=config)
    print(f"\nheld-out benchmark: {HELD_OUT}")
    for vector in vectors:
        print(f"  {vector.name}: speedup over LRU "
              f"{probe.evaluate(vector):.4f}")

    # The duelled pair on the held-out benchmark, via actual simulation.
    from repro.eval.runner import run_benchmark
    from repro.workloads import get_benchmark

    bench = get_benchmark(HELD_OUT)
    duel = run_benchmark(
        "dgippr", bench, config, policy_kwargs={"ipvs": vectors}
    )
    lru = run_benchmark("lru", bench, config)
    print(f"\n2-DGIPPR with the WN vectors: "
          f"{duel.mpki / lru.mpki:.3f} of LRU's MPKI")
    print("Training never saw this benchmark — the generalization the")
    print("paper's Figure 12 is about.")


if __name__ == "__main__":
    main()
