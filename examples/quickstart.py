#!/usr/bin/env python3
"""Quickstart: build a DGIPPR last-level cache and measure it.

Builds the paper's recommended configuration — 16-way tree PseudoLRU with
four duelled insertion/promotion vectors (WN1-4-DGIPPR's workload-inclusive
siblings) — runs a thrashing loop through it, and compares against true LRU.

Run:  python examples/quickstart.py
"""

from repro import DGIPPRPolicy, SetAssociativeCache, TrueLRUPolicy
from repro.trace import noisy_loop


def measure(policy, trace):
    cache = SetAssociativeCache(64, 16, policy, block_size=1)
    for address, pc in trace:
        cache.access(address, pc=pc)
    return cache.stats


def main():
    # A loop of 1,400 blocks over a 1,024-block cache, with 30% noise:
    # the canonical pattern where LRU thrashes and adaptive insertion wins.
    trace = noisy_loop(working_set=1400, n=100_000, noise=0.3, seed=1)

    lru_stats = measure(TrueLRUPolicy(64, 16), trace)
    dgippr = DGIPPRPolicy(64, 16)  # defaults to the paper's WI-4 vectors
    dgippr_stats = measure(dgippr, trace)

    print(f"trace: {len(trace):,} accesses, footprint {trace.footprint():,} blocks")
    print(f"LRU       miss rate: {lru_stats.miss_rate:.3f}")
    print(f"4-DGIPPR  miss rate: {dgippr_stats.miss_rate:.3f}")
    print(f"4-DGIPPR selected vector: {dgippr.active_ipv().name}")
    saved = 1 - dgippr_stats.misses / lru_stats.misses
    print(f"misses avoided vs LRU: {saved:.1%}")
    print()
    print("replacement state: "
          f"DGIPPR {dgippr.total_state_bits() / 8 / 1024:.2f} KB vs "
          f"LRU {TrueLRUPolicy(64, 16).total_state_bits() / 8 / 1024:.2f} KB")


if __name__ == "__main__":
    main()
