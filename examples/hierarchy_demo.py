#!/usr/bin/env python3
"""Drive a full three-level hierarchy with a DGIPPR last-level cache.

Builds the paper's memory system (32KB L1D, 256KB L2, LLC; Section 4.5) at
a scaled-down LLC size and shows how the upper levels filter the stream the
LLC replacement policy actually sees — the reason LLC reuse distances look
nothing like program-level reuse distances.

Run:  python examples/hierarchy_demo.py
"""

from repro import DGIPPRPolicy, TrueLRUPolicy, paper_hierarchy
from repro.trace import mix, looping, zipf

LLC_SETS = 256  # 256 sets x 16 ways x 64B = 256KB LLC


def run(policy_factory):
    hierarchy = paper_hierarchy(policy_factory(), llc_sets=LLC_SETS)
    hot = zipf(2000, 150_000, alpha=1.3, seed=1)      # L1/L2-friendly
    loop = looping(6000, 150_000, seed=2, region=1)   # LLC-sized loop
    trace = mix([hot, loop], chunk=48, seed=3)
    for address, pc in trace:
        # Traces carry block addresses; the hierarchy wants bytes.
        hierarchy.access(address * 64, pc=pc)
    return hierarchy


def describe(hierarchy, label):
    l1, l2, llc = hierarchy.levels
    print(f"--- {label} ---")
    for cache in (l1, l2, llc):
        s = cache.stats
        print(
            f"{cache.name:>4}: {s.accesses:>8,} accesses, "
            f"miss rate {s.miss_rate:.3f}"
        )
    print(f"LLC sees only {llc.stats.accesses / l1.stats.accesses:.1%} of the traffic")
    print()


def main():
    lru = run(lambda: TrueLRUPolicy(LLC_SETS, 16))
    dgippr = run(lambda: DGIPPRPolicy(LLC_SETS, 16))
    describe(lru, "LLC running true LRU")
    describe(dgippr, "LLC running 4-DGIPPR")
    lru_misses = lru.llc.stats.misses
    dgippr_misses = dgippr.llc.stats.misses
    print(
        f"LLC misses: LRU {lru_misses:,} vs 4-DGIPPR {dgippr_misses:,} "
        f"({1 - dgippr_misses / lru_misses:.1%} fewer)"
    )


if __name__ == "__main__":
    main()
