#!/usr/bin/env python3
"""Compare replacement policies across the synthetic SPEC suite.

Runs the paper's main line-up (LRU, PLRU, Random, DRRIP, PDP, GIPPR,
4-DGIPPR, Belady MIN) over a slice of the SPEC CPU 2006 stand-ins and
prints the Figure 13-style speedup table plus an ASCII rendition of the
per-benchmark bars.

Run:  python examples/compare_policies.py [--full] [--length N]
"""

import argparse

from repro.core.vectors import DGIPPR4_WI_VECTORS
from repro.eval import PolicySpec, default_config, run_suite, speedup_table
from repro.viz import bar_chart
from repro.workloads import benchmark_names

QUICK_BENCHES = [
    "462.libquantum",
    "436.cactusADM",
    "482.sphinx3",
    "429.mcf",
    "447.dealII",
    "453.povray",
    "483.xalancbmk",
    "400.perlbench",
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run all 29 benchmarks (slower)"
    )
    parser.add_argument(
        "--length", type=int, default=20_000, help="accesses per simpoint"
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="parallel worker processes"
    )
    args = parser.parse_args()

    config = default_config(trace_length=args.length)
    benches = benchmark_names() if args.full else QUICK_BENCHES
    suite = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        config=config,
        benchmarks=benches,
        workers=args.workers,
    )

    print(f"config: {config}")
    print()
    print(speedup_table(suite))
    print()
    print(bar_chart(suite.speedups("4-DGIPPR"), title="4-DGIPPR speedup over LRU"))
    print()
    subset = suite.memory_intensive()
    print(f"memory-intensive subset ({len(subset)}): {', '.join(subset)}")
    for label in ("DRRIP", "PDP", "4-DGIPPR"):
        print(
            f"  {label:10s} subset geomean speedup: "
            f"{suite.geomean_speedup(label, benchmarks=subset):.3f}"
        )


if __name__ == "__main__":
    main()
