#!/usr/bin/env python3
"""Evolve an insertion/promotion vector with the genetic algorithm.

Reproduces the paper's Section 2.5/4.2 workflow at laptop scale: a GA over
IPVs with single-point crossover and 5% point mutation, scored by the
linear-CPI fitness over a training set, followed by the Section 2.6
hill-climbing refinement.  Prints the evolved vector, its transition
summary, and its fitness against the published GIPPR vector.

Run:  python examples/evolve_ipv.py [--generations N] [--population N]

``--profile ga.trace.json`` writes a Chrome trace-event span profile of
the run (open in chrome://tracing or https://ui.perfetto.dev); with
``--workers N`` the worker processes' spans are merged into the same
timeline.  ``--status-json run-status.json`` publishes live progress for
``repro obs watch``.
"""

import argparse
import contextlib

from repro.core.vectors import GIPPR_WI_VECTOR
from repro.eval import default_config
from repro.ga import FitnessEvaluator, evolve_ipv, hill_climb
from repro.obs.spans import profiled
from repro.viz import transition_text

TRAINING = [
    "462.libquantum",
    "436.cactusADM",
    "482.sphinx3",
    "447.dealII",
    "429.mcf",
    "400.perlbench",
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=10)
    parser.add_argument("--population", type=int, default=24)
    parser.add_argument("--length", type=int, default=12_000)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", default=None, metavar="TRACE_JSON",
                        help="write a Chrome trace-event span profile here")
    parser.add_argument("--status-json", default=None, metavar="PATH",
                        help="publish live run status here "
                             "(watch with `repro obs watch`)")
    args = parser.parse_args()

    config = default_config(trace_length=args.length)
    evaluator = FitnessEvaluator(TRAINING, config=config, substrate="plru")

    print(f"training on {len(TRAINING)} benchmarks, {config}")
    print("evolving", end="", flush=True)
    scope = (profiled(args.profile) if args.profile
             else contextlib.nullcontext())
    with scope:
        result = evolve_ipv(
            evaluator,
            population_size=args.population,
            generations=args.generations,
            seed=args.seed,
            workers=args.workers,
            status_path=args.status_json,
            on_generation=lambda g, f: print(".", end="", flush=True),
        )
    print()
    if args.profile:
        print(f"span profile written to {args.profile}")
    print(f"GA best fitness (mean speedup over LRU): {result.best_fitness:.4f}")
    print(f"evaluations: {result.evaluations}")

    refined = hill_climb(
        evaluator, result.best, candidate_values=[0, 4, 8, 12, 15], max_passes=1
    )
    print(
        f"hill climb: {refined.start_fitness:.4f} -> {refined.best_fitness:.4f} "
        f"({len(refined.steps)} improving steps)"
    )
    print()
    print(transition_text(refined.best))
    print()
    paper_fitness = evaluator.evaluate(GIPPR_WI_VECTOR)
    print(f"published GIPPR-WI vector fitness on this training set: {paper_fitness:.4f}")
    print("(the published vector was evolved for real SPEC traces; the GA")
    print(" specialises to whatever training distribution it is given)")


if __name__ == "__main__":
    main()
