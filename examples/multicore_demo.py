#!/usr/bin/env python3
"""Shared-LLC multi-core demo (the paper's future-work item 4).

Co-schedules a thrashing benchmark with a cache-friendly one on a shared
LLC and compares LRU against 4-DGIPPR on weighted speedup: the adaptive
policy confines the thrasher's damage, so *both* cores improve.

Run:  python examples/multicore_demo.py
"""

from repro.eval import default_config, run_multicore

MIXES = [
    ["462.libquantum", "400.perlbench"],
    ["436.cactusADM", "482.sphinx3"],
    ["429.mcf", "453.povray"],
]


def main():
    config = default_config(trace_length=15_000)
    for mix in MIXES:
        print(f"=== {' + '.join(mix)} ===")
        for policy in ("lru", "dgippr"):
            # Normalize both policies to LRU-alone so the weighted speedups
            # are directly comparable.
            result = run_multicore(policy, mix, config=config, alone_policy="lru")
            per_core = ", ".join(
                f"{c.benchmark.split('.')[1]} x{c.slowdown:.2f} slowdown"
                for c in result.cores
            )
            print(
                f"  {result.policy_name:>9}: weighted speedup "
                f"{result.weighted_speedup:.3f} / {len(mix)}  ({per_core})"
            )
        print()


if __name__ == "__main__":
    main()
