#!/usr/bin/env python3
"""Watch DGIPPR's set-dueling adapt across program phases.

Builds a workload that alternates between a recency-friendly phase and a
thrashing phase (the 456.hmmer situation from Section 5.1) and samples
which IPV the follower sets run over time.  The duel should track the
phase: PMRU-style insertion while the working set fits, PLRU-style
insertion while the loop thrashes.

Run:  python examples/adaptivity_demo.py
"""

from repro import DGIPPRPolicy, SetAssociativeCache
from repro.core.ipv import IPV
from repro.trace import concatenate, noisy_loop, stack_distance

PHASE = 30_000


def main():
    # "Friendly" here means LRU-friendly *with pressure*: reuse distances
    # sit just under capacity, so PMRU insertion hits but PLRU insertion
    # evicts blocks before their reuse.  A no-miss phase would give the
    # duel no signal at all.
    friendly = lambda s: stack_distance(
        list(range(300, 800, 50)), [1.0] * 10, PHASE, cold_fraction=0.15, seed=s
    )
    thrash = lambda s: noisy_loop(1500, PHASE, noise=0.25, seed=s)
    trace = concatenate(
        [friendly(1), thrash(2), friendly(3), thrash(4)], name="phased"
    )

    pmru = IPV([0] * 17, name="PMRU-insert")
    plru = IPV([0] * 16 + [15], name="PLRU-insert")
    # The paper's 11-bit PSEL suits a 4096-set LLC; at 64 sets the miss
    # differential per phase is ~100x smaller, so an 8-bit counter keeps
    # the adaptation lag proportionate (same saturation-to-traffic ratio).
    policy = DGIPPRPolicy(64, 16, ipvs=[pmru, plru], counter_bits=8)
    cache = SetAssociativeCache(64, 16, policy, block_size=1)

    print(f"{'access':>8}  {'phase':<9} {'selected vector':<14} {'PSEL':>6} {'miss rate':>9}")
    window_misses = 0
    window = 5000
    for i, (address, pc) in enumerate(trace):
        if not cache.access(address, pc=pc):
            window_misses += 1
        if (i + 1) % window == 0:
            phase = "friendly" if ((i // PHASE) % 2 == 0) else "thrash"
            print(
                f"{i + 1:>8}  {phase:<9} {policy.active_ipv().name:<14} "
                f"{policy.selector.psel.value:>6} {window_misses / window:>9.3f}"
            )
            window_misses = 0

    print()
    print("The selected vector flips with the phase: set-dueling is doing")
    print("exactly what Section 3.5 designed it to do.")


if __name__ == "__main__":
    main()
