#!/usr/bin/env python3
"""Miss-ratio curves: where adaptive insertion pays off.

Sweeps cache capacity for a thrash-plus-noise workload under LRU, DRRIP and
4-DGIPPR.  LRU shows the classic cliff at the loop's working-set size;
the adaptive policies cut through it by retaining a useful fraction of the
loop at every undersized capacity — then all curves merge once the loop
fits (the crossover the sweep helper locates).

Run:  python examples/miss_ratio_curves.py
"""

from repro.eval import crossover_size, miss_ratio_curve
from repro.trace import noisy_loop

SET_COUNTS = (16, 32, 64, 128, 256)
POLICIES = ("lru", "drrip", "dgippr")


def main():
    trace = noisy_loop(working_set=1000, n=40_000, noise=0.2, seed=1)
    print(f"workload: 1,000-block loop + 20% noise, {len(trace):,} accesses")
    print()
    curves = {}
    for policy in POLICIES:
        curves[policy] = miss_ratio_curve(policy, trace, set_counts=SET_COUNTS)

    sizes = sorted(curves["lru"])
    header = "capacity(blocks)" + "".join(f"{p:>10}" for p in POLICIES)
    print(header)
    print("-" * len(header))
    for size in sizes:
        row = f"{size:>16,}"
        for policy in POLICIES:
            row += f"{curves[policy][size]:>10.3f}"
        print(row)

    print()
    cross = crossover_size(curves["lru"], curves["dgippr"], tolerance=0.01)
    if cross is None:
        print("4-DGIPPR dominates LRU at every sampled size below the cliff;")
        print("once the loop fits, the curves merge (no true crossover).")
    else:
        print(f"curves meet at {cross:,} blocks")


if __name__ == "__main__":
    main()
