#!/usr/bin/env python3
"""Regenerate the paper's transition graphs (Figures 2 and 3).

Emits Graphviz DOT for the LRU vector and the evolved GIPLR vector, plus
human-readable transition summaries for every published vector.  Pipe the
DOT output through ``dot -Tpdf`` to get figures comparable to the paper's.

Run:  python examples/transition_graphs.py [--dot-dir DIR]
"""

import argparse
import os

from repro.core.ipv import lru_ipv
from repro.core.vectors import GIPLR_VECTOR, paper_vectors
from repro.viz import transition_dot, transition_text


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dot-dir", default=None, help="directory to write .dot files into"
    )
    args = parser.parse_args()

    figures = {
        "figure2_lru": (lru_ipv(16), "Figure 2: LRU transition graph"),
        "figure3_giplr": (GIPLR_VECTOR, "Figure 3: GIPLR vector"),
    }
    if args.dot_dir:
        os.makedirs(args.dot_dir, exist_ok=True)
        for name, (ipv, title) in figures.items():
            path = os.path.join(args.dot_dir, f"{name}.dot")
            with open(path, "w") as handle:
                handle.write(transition_dot(ipv, title=title))
            print(f"wrote {path}")
        print("render with: dot -Tpdf <file>.dot -o <file>.pdf")
    else:
        for name, (ipv, title) in figures.items():
            print(f"--- {title} ---")
            print(transition_dot(ipv, title=title))
            print()

    print("=== transition summaries for all published vectors ===")
    for name, vector in paper_vectors().items():
        print()
        print(transition_text(vector))


if __name__ == "__main__":
    main()
