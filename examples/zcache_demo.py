#!/usr/bin/env python3
"""zCache demo: effective associativity without ways (future work item 6).

The paper's future work points at the zCache as the structure to pair with
high-associativity insertion/promotion.  This demo shows why: a 4-way
zCache with a depth-2 replacement walk matches a 16-way conventional cache
on a conflict-heavy workload that demolishes the 4-way conventional design.

Run:  python examples/zcache_demo.py
"""

import random

from repro.cache import SetAssociativeCache, ZCache
from repro.policies import TrueLRUPolicy

CAPACITY = 1024


def conflict_trace(n=50_000, seed=7):
    # 900 hot blocks that collide into 64 conventional sets (14 blocks per
    # 4-way set) — the pathological index-conflict case.
    rng = random.Random(seed)
    hot = [(i % 64) + 256 * (i // 64) for i in range(900)]
    return [rng.choice(hot) for _ in range(n)]


def main():
    trace = conflict_trace()
    print("conflict workload: 900 hot blocks in 64 conventional sets\n")

    for assoc in (4, 8, 16):
        num_sets = CAPACITY // assoc
        cache = SetAssociativeCache(
            num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=1
        )
        for address in trace:
            cache.access(address)
        print(f"conventional {assoc:>2}-way:  miss rate "
              f"{cache.stats.miss_rate:.4f}")

    print()
    for depth in (1, 2, 3):
        z = ZCache(CAPACITY // 4, ways=4, depth=depth)
        for address in trace:
            z.access(address)
        print(f"zCache 4-way depth {depth}: miss rate {z.stats.miss_rate:.4f} "
              f"(pool <= {z.candidate_pool_size()} candidates, "
              f"{z.relocations} relocations)")

    print()
    print("Skewed hashing plus the replacement walk gives 4 physical ways")
    print("the eviction quality of 16 — the substrate the paper proposes")
    print("pairing with insertion/promotion vectors.")


if __name__ == "__main__":
    main()
