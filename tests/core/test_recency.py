"""Tests for the IPV-driven true-LRU recency stack (Section 2.3 semantics)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.recency import RecencyStack


class TestClassicLRU:
    def test_initial_order_is_identity(self):
        stack = RecencyStack(4, lru_ipv(4))
        assert stack.order() == [0, 1, 2, 3]

    def test_touch_promotes_to_mru(self):
        stack = RecencyStack(4, lru_ipv(4))
        stack.touch(2)
        assert stack.order() == [2, 0, 1, 3]

    def test_victim_is_lru(self):
        stack = RecencyStack(4, lru_ipv(4))
        stack.touch(3)
        assert stack.victim() == 2

    def test_sequence_matches_reference_lru(self):
        """Cross-check against a plain move-to-front list model."""
        rng = random.Random(1)
        stack = RecencyStack(8, lru_ipv(8))
        reference = list(range(8))
        for _ in range(500):
            way = rng.randrange(8)
            stack.touch(way)
            reference.remove(way)
            reference.insert(0, way)
            assert stack.order() == reference
            stack.check_invariants()


class TestIPVSemantics:
    def test_promotion_shift_down(self):
        """V[i] < i: blocks between V[i] and i-1 shift down one position."""
        ipv = IPV([0, 0, 1, 0, 0])  # 4-way; hit at 2 promotes to 1
        stack = RecencyStack(4, ipv)
        # order [0,1,2,3]; touch way 2 (position 2) -> position 1
        stack.touch(2)
        assert stack.order() == [0, 2, 1, 3]

    def test_promotion_shift_up(self):
        """V[i] > i: blocks between i+1 and V[i] shift up one position."""
        ipv = IPV([2, 1, 2, 3, 0])  # hit at 0 demotes to 2
        stack = RecencyStack(4, ipv)
        stack.touch(0)  # position 0 -> 2; blocks at 1,2 shift up
        assert stack.order() == [1, 2, 0, 3]

    def test_insertion_at_lru_position(self):
        stack = RecencyStack(4, lip_ipv(4))
        victim = stack.victim()
        stack.insert(victim)  # incoming block placed in victim's way
        assert stack.position_of(victim) == 3  # stays in LRU position

    def test_insertion_mid_stack(self):
        ipv = IPV([0, 0, 0, 0, 2])
        stack = RecencyStack(4, ipv)
        victim = stack.victim()
        stack.insert(victim)
        assert stack.position_of(victim) == 2

    def test_three_touch_promotion_path(self):
        """Section 2.4's example: LRU insert, then middle, then MRU."""
        k = 16
        entries = [0] * (k + 1)
        entries[k] = k - 1
        entries[k - 1] = k // 2
        stack = RecencyStack(k, IPV(entries))
        way = stack.victim()
        stack.insert(way)
        assert stack.position_of(way) == k - 1
        stack.touch(way)
        assert stack.position_of(way) == k // 2
        stack.touch(way)
        assert stack.position_of(way) == 0

    def test_place_bypasses_ipv(self):
        stack = RecencyStack(4, lru_ipv(4))
        stack.place(0, 3)
        assert stack.position_of(0) == 3
        with pytest.raises(ValueError):
            stack.place(0, 4)

    def test_set_ipv_switches_policy(self):
        stack = RecencyStack(4, lru_ipv(4))
        stack.set_ipv(lip_ipv(4))
        victim = stack.victim()
        stack.insert(victim)
        assert stack.position_of(victim) == 3

    def test_set_ipv_rejects_wrong_k(self):
        stack = RecencyStack(4, lru_ipv(4))
        with pytest.raises(ValueError):
            stack.set_ipv(lru_ipv(8))

    def test_ipv_k_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RecencyStack(8, lru_ipv(4))


@given(
    entries=st.lists(st.integers(0, 7), min_size=9, max_size=9),
    ops=st.lists(st.integers(0, 15), min_size=1, max_size=200),
)
@settings(max_examples=150)
def test_stack_stays_a_permutation(entries, ops):
    """Any IPV, any op sequence: the stack remains a permutation of ways."""
    stack = RecencyStack(8, IPV(entries))
    for op in ops:
        if op < 8:
            stack.touch(op)
        else:
            stack.insert(stack.victim())
        stack.check_invariants()


@given(ops=st.lists(st.integers(0, 7), min_size=1, max_size=100))
@settings(max_examples=100)
def test_lru_vector_equals_move_to_front(ops):
    stack = RecencyStack(8, lru_ipv(8))
    reference = list(range(8))
    for way in ops:
        stack.touch(way)
        reference.remove(way)
        reference.insert(0, way)
    assert stack.order() == reference
