"""Tests for the tree-PLRU machinery (paper Figures 5-9)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plru import (
    PLRUTree,
    all_positions,
    find_plru,
    is_power_of_two,
    position,
    promote,
    set_position,
    tree_bits,
    way_at_position,
)

ASSOCS = [2, 4, 8, 16, 32]


def states(k):
    return st.integers(min_value=0, max_value=(1 << (k - 1)) - 1)


class TestBasics:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(16)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    @pytest.mark.parametrize("k", ASSOCS)
    def test_tree_bits(self, k):
        assert tree_bits(k) == k - 1

    def test_tree_bits_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            tree_bits(12)

    def test_all_zero_state_victim_is_way_zero(self):
        # With every plru bit 0 the victim walk goes left to way 0.
        assert find_plru(0, 16) == 0

    def test_all_ones_state_victim_is_last_way(self):
        k = 16
        assert find_plru((1 << (k - 1)) - 1, k) == k - 1


class TestFigure8Example:
    """The worked example tree from the paper's Figure 8.

    The figure shows a 16-way set whose decoded positions are, per way:
    way 0 -> 5, way 1 -> 4, way 2 -> 7, way 3 -> 6, way 4 -> 1, way 5 -> 0,
    way 6 -> 2, way 7 -> 3, way 8 -> 11, way 9 -> 10, way 10 -> 8,
    way 11 -> 9, way 12 -> 14, way 13 -> 15, way 14 -> 13, way 15 -> 12.
    We reconstruct the state from the positions and verify consistency
    rather than transcribe the bit layout (the figure's drawing order is
    ambiguous on paper, the decoded positions are not).
    """

    PYRAMID = {0: 5, 1: 4, 2: 7, 3: 6, 4: 1, 5: 0, 6: 2, 7: 3,
               8: 11, 9: 10, 10: 8, 11: 9, 12: 14, 13: 15, 14: 13, 15: 12}

    def test_positions_reconstructible(self):
        k = 16
        state = 0
        # Setting positions leaf-by-leaf must converge because the figure's
        # assignment is a consistent PLRU permutation.
        for way, pos in self.PYRAMID.items():
            state = set_position(state, way, pos, k)
        assert all_positions(state, k) == [self.PYRAMID[w] for w in range(k)]

    def test_victim_is_position_fifteen(self):
        k = 16
        state = 0
        for way, pos in self.PYRAMID.items():
            state = set_position(state, way, pos, k)
        assert find_plru(state, k) == 13  # way 13 holds position 15


class TestPositionProperties:
    @pytest.mark.parametrize("k", ASSOCS)
    def test_positions_form_permutation(self, k):
        rng = random.Random(7)
        for _ in range(200):
            state = rng.getrandbits(k - 1)
            assert sorted(all_positions(state, k)) == list(range(k))

    @pytest.mark.parametrize("k", ASSOCS)
    def test_victim_has_max_position(self, k):
        rng = random.Random(11)
        for _ in range(200):
            state = rng.getrandbits(k - 1)
            victim = find_plru(state, k)
            assert position(state, victim, k) == k - 1

    @pytest.mark.parametrize("k", ASSOCS)
    def test_promote_moves_to_position_zero(self, k):
        rng = random.Random(13)
        for _ in range(100):
            state = rng.getrandbits(k - 1)
            way = rng.randrange(k)
            assert position(promote(state, way, k), way, k) == 0

    @pytest.mark.parametrize("k", ASSOCS)
    def test_promote_equals_set_position_zero(self, k):
        rng = random.Random(17)
        for _ in range(100):
            state = rng.getrandbits(k - 1)
            way = rng.randrange(k)
            assert promote(state, way, k) == set_position(state, way, 0, k)

    @pytest.mark.parametrize("k", ASSOCS)
    def test_way_at_position_inverts_position(self, k):
        rng = random.Random(19)
        for _ in range(100):
            state = rng.getrandbits(k - 1)
            for pos in range(k):
                way = way_at_position(state, pos, k)
                assert position(state, way, k) == pos

    def test_set_position_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            set_position(0, 0, 16, 16)
        with pytest.raises(ValueError):
            set_position(0, 0, -1, 16)

    def test_way_at_position_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            way_at_position(0, 16, 16)


class TestSetPositionHypothesis:
    @given(state=states(16), way=st.integers(0, 15), pos=st.integers(0, 15))
    @settings(max_examples=300)
    def test_roundtrip(self, state, way, pos):
        new_state = set_position(state, way, pos, 16)
        assert position(new_state, way, 16) == pos

    @given(state=states(16), way=st.integers(0, 15), pos=st.integers(0, 15))
    @settings(max_examples=300)
    def test_touches_only_path_bits(self, state, way, pos):
        # Only log2(k) bits may change (the paper's complexity argument).
        new_state = set_position(state, way, pos, 16)
        changed = bin(state ^ new_state).count("1")
        assert changed <= 4

    @given(state=states(16), way=st.integers(0, 15), pos=st.integers(0, 15))
    @settings(max_examples=300)
    def test_positions_stay_a_permutation(self, state, way, pos):
        new_state = set_position(state, way, pos, 16)
        assert sorted(all_positions(new_state, 16)) == list(range(16))

    @given(state=states(8), way=st.integers(0, 7))
    @settings(max_examples=200)
    def test_promoted_block_not_victim(self, state, way):
        new_state = promote(state, way, 8)
        assert find_plru(new_state, 8) != way


class TestPLRUTreeWrapper:
    def test_touch_then_victim_differs(self):
        tree = PLRUTree(8)
        for way in range(8):
            tree.touch(way)
            assert tree.victim() != way

    def test_move_to_and_positions(self):
        tree = PLRUTree(16)
        tree.move_to(3, 15)
        assert tree.position_of(3) == 15
        assert tree.victim() == 3

    def test_positions_permutation(self):
        tree = PLRUTree(4)
        tree.touch(1)
        tree.touch(3)
        assert sorted(tree.positions()) == [0, 1, 2, 3]

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            PLRUTree(12)

    def test_plru_victim_is_not_most_recent(self):
        """The paper: the PLRU block is guaranteed not to be the MRU block."""
        rng = random.Random(3)
        tree = PLRUTree(16)
        last = None
        for _ in range(500):
            way = rng.randrange(16)
            tree.touch(way)
            last = way
            assert tree.victim() != last
