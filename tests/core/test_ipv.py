"""Tests for the IPV value type and the published paper vectors."""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ipv import (
    IPV,
    lip_ipv,
    lru_ipv,
    mru_pessimistic_ipv,
    random_ipv,
)
from repro.core.vectors import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPLR_VECTOR,
    GIPPR_WI_VECTOR,
    GIPPR_WN1_PERLBENCH,
    paper_vectors,
)


class TestValidation:
    def test_entries_and_k(self):
        ipv = lru_ipv(16)
        assert ipv.k == 16
        assert len(ipv) == 17
        assert ipv.insertion == 0

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(ValueError):
            IPV([0] * 16 + [16])
        with pytest.raises(ValueError):
            IPV([-1] + [0] * 16)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            IPV([0, 0, 0, 0])  # implies k=3, not a power of two
        with pytest.raises(ValueError):
            IPV([0])

    def test_immutable(self):
        ipv = lru_ipv(4)
        with pytest.raises(AttributeError):
            ipv.k = 8

    def test_value_semantics(self):
        a = IPV([0] * 17)
        b = lru_ipv(16)
        assert a == b
        assert hash(a) == hash(b)
        assert a != lip_ipv(16)

    def test_pickle_roundtrip(self):
        ipv = GIPLR_VECTOR
        clone = pickle.loads(pickle.dumps(ipv))
        assert clone == ipv
        assert clone.name == ipv.name

    def test_mutated(self):
        ipv = lru_ipv(16)
        changed = ipv.mutated(16, 15)
        assert changed.insertion == 15
        assert ipv.insertion == 0  # original untouched


class TestClassicVectors:
    def test_lru_vector_promotes_to_mru(self):
        ipv = lru_ipv(16)
        assert all(ipv.promotion(i) == 0 for i in range(16))
        assert ipv.insertion == 0

    def test_lip_vector_inserts_at_lru(self):
        ipv = lip_ipv(16)
        assert ipv.insertion == 15
        assert all(ipv.promotion(i) == 0 for i in range(16))

    def test_three_touch_vector_matches_section_2_4(self):
        # V = [0,...,0, k/2, k-1]: insert at LRU, first hit to middle,
        # second hit to MRU.
        ipv = mru_pessimistic_ipv(16)
        assert ipv.insertion == 15
        assert ipv.promotion(15) == 8
        assert ipv.promotion(8) == 0

    def test_random_ipv_in_range(self):
        rng = random.Random(0)
        for _ in range(50):
            ipv = random_ipv(16, rng)
            assert all(0 <= e < 16 for e in ipv)


class TestPaperVectors:
    def test_giplr_vector_entries(self):
        # Section 2.5: insert at 13, LRU-position hit moves to 11.
        assert list(GIPLR_VECTOR.entries) == [
            0, 0, 1, 0, 3, 0, 1, 2, 1, 0, 5, 1, 0, 0, 1, 11, 13
        ]
        assert GIPLR_VECTOR.insertion == 13
        assert GIPLR_VECTOR.promotion(15) == 11

    def test_all_paper_vectors_valid_16_way(self):
        for name, vec in paper_vectors().items():
            assert vec.k == 16, name
            assert len(vec) == 17, name

    def test_wi2_duel_insertion_positions(self):
        # Section 5.3.2: the 2-vector set duels PLRU vs PMRU insertion.
        inserts = sorted(v.insertion for v in DGIPPR2_WI_VECTORS)
        assert inserts == [0, 15]

    def test_wi4_vector_count_and_names(self):
        assert len(DGIPPR4_WI_VECTORS) == 4
        assert len({v.name for v in DGIPPR4_WI_VECTORS}) == 4

    def test_no_paper_vector_is_degenerate(self):
        for name, vec in paper_vectors().items():
            assert not vec.is_degenerate(), name

    def test_perlbench_vector(self):
        assert GIPPR_WN1_PERLBENCH.insertion == 11
        assert GIPPR_WI_VECTOR.insertion == 5


class TestTransitionAnalysis:
    def test_lru_edges_all_point_to_mru(self):
        edges = lru_ipv(4).transition_edges()
        # Promotions i->0 plus downward shifts p->p+1.
        assert (3, 0) in edges
        assert (0, 1) in edges and (1, 2) in edges and (2, 3) in edges

    def test_reachability_lru(self):
        assert lru_ipv(16).reachable_from_insertion() == set(range(16))

    def test_degenerate_vector_detected(self):
        # Insert at LRU and promote every position to itself: a block can
        # never leave position k-1, so MRU is unreachable.
        k = 4
        entries = [i for i in range(k)] + [k - 1]
        ipv = IPV(entries)
        assert ipv.is_degenerate()

    def test_lip_not_degenerate(self):
        assert not lip_ipv(16).is_degenerate()

    def test_shift_edges_direction(self):
        # V[3] = 1 on a 4-way: blocks at 1..2 shift down (edges 1->2, 2->3).
        ipv = IPV([0, 0, 0, 1, 0])
        edges = ipv.transition_edges()
        assert (3, 1) in edges
        assert (1, 2) in edges
        assert (2, 3) in edges


class TestWN1Loading:
    def test_missing_file_returns_empty(self, tmp_path):
        from repro.core.vectors import load_wn1_vectors

        assert load_wn1_vectors(str(tmp_path / "absent.json")) == {}

    def test_roundtrip(self, tmp_path):
        import json

        from repro.core.vectors import load_wn1_vectors

        payload = {
            "vectors": {
                "429.mcf": {"1": [[0] * 17], "2": [[0] * 17, [0] * 16 + [15]]},
                "WI": {"1": [list(GIPLR_VECTOR.entries)]},
            }
        }
        path = tmp_path / "wn1.json"
        path.write_text(json.dumps(payload))
        loaded = load_wn1_vectors(str(path))
        assert set(loaded) == {"429.mcf", "WI"}
        assert loaded["429.mcf"][2][1].insertion == 15
        assert loaded["WI"][1][0] == GIPLR_VECTOR


@given(
    entries=st.lists(st.integers(0, 15), min_size=17, max_size=17),
)
@settings(max_examples=200)
def test_transition_edges_within_bounds(entries):
    ipv = IPV(entries)
    for a, b in ipv.transition_edges():
        assert 0 <= a < 16 and 0 <= b < 16
    reachable = ipv.reachable_from_insertion()
    assert ipv.insertion in reachable
    assert reachable <= set(range(16))
