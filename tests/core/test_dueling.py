"""Tests for set-dueling: counters, leader assignment, selectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dueling import (
    BracketSelector,
    DuelSelector,
    SaturatingCounter,
    TournamentSelector,
    assign_leader_sets,
    default_leaders_per_policy,
    make_selector,
)


class TestSaturatingCounter:
    def test_bounds(self):
        c = SaturatingCounter(bits=3)
        assert (c.lo, c.hi) == (-4, 3)

    def test_saturates_high(self):
        c = SaturatingCounter(bits=3)
        for _ in range(20):
            c.increment()
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(bits=3)
        for _ in range(20):
            c.decrement()
        assert c.value == -4

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=3, init=10)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    @given(ops=st.lists(st.booleans(), max_size=300), bits=st.integers(1, 12))
    @settings(max_examples=100)
    def test_always_within_bounds(self, ops, bits):
        c = SaturatingCounter(bits=bits)
        for up in ops:
            c.increment() if up else c.decrement()
            assert c.lo <= c.value <= c.hi

    def test_rejects_non_integer_bits(self):
        with pytest.raises(TypeError):
            SaturatingCounter(bits=2.0)
        with pytest.raises(TypeError):
            SaturatingCounter(bits=True)  # bool used to mean "1-bit"
        with pytest.raises(TypeError):
            SaturatingCounter(bits=3, init=1.5)

    def test_normalized_rails(self):
        c = SaturatingCounter(bits=3)
        assert c.normalized() == 0.0
        for _ in range(10):
            c.increment()
        assert c.normalized() == 1.0  # exactly +1 at the high rail
        for _ in range(20):
            c.decrement()
        assert c.normalized() == -1.0  # exactly -1 at the low rail

    def test_normalized_is_monotone_and_bounded(self):
        c = SaturatingCounter(bits=4)
        seen = []
        for _ in range(20):
            seen.append(c.normalized())
            c.increment()
        assert all(-1.0 <= v <= 1.0 for v in seen)
        assert seen == sorted(seen)

    @given(bits=st.integers(1, 12), ups=st.integers(0, 50),
           downs=st.integers(0, 50))
    @settings(max_examples=100)
    def test_normalized_always_in_unit_interval(self, bits, ups, downs):
        c = SaturatingCounter(bits=bits)
        for _ in range(ups):
            c.increment()
        for _ in range(downs):
            c.decrement()
        assert -1.0 <= c.normalized() <= 1.0


class TestLeaderAssignment:
    def test_counts(self):
        leaders = assign_leader_sets(4096, 4, 32)
        for policy in range(4):
            assert leaders.count(policy) == 32
        assert leaders.count(-1) == 4096 - 128

    def test_deterministic(self):
        assert assign_leader_sets(256, 2, 8) == assign_leader_sets(256, 2, 8)

    def test_distinct_seeds_differ(self):
        a = assign_leader_sets(256, 2, 8, seed=1)
        b = assign_leader_sets(256, 2, 8, seed=2)
        assert a != b

    def test_too_many_leaders_clamped(self):
        # An oversized request degrades to num_sets // num_policies leaders
        # per policy instead of raising (tiny scaled-down geometries).
        leaders = assign_leader_sets(16, 4, 32)
        for policy in range(4):
            assert leaders.count(policy) == 4
        assert leaders.count(-1) == 0

    def test_tiny_geometry_degrades_to_followers(self):
        # num_sets=2 with 4 policies cannot give every policy a leader;
        # the auto default degrades to zero leaders (all followers).
        leaders = assign_leader_sets(2, 4)
        assert leaders == [-1, -1]
        # An explicit request is clamped the same way.
        assert assign_leader_sets(2, 4, 1) == [-1, -1]
        # Three sets, two policies: one leader each, one follower.
        leaders = assign_leader_sets(3, 2, 5)
        assert sorted(leaders) == [-1, 0, 1]

    def test_negative_leaders_rejected(self):
        with pytest.raises(ValueError):
            assign_leader_sets(16, 4, -1)

    def test_default_scaling(self):
        assert default_leaders_per_policy(4096, 2) == 32
        assert default_leaders_per_policy(4096, 4) == 32
        assert default_leaders_per_policy(64, 4) == 2
        assert default_leaders_per_policy(256, 4) == 8
        # Tiny geometries: never force a leader count that cannot fit.
        assert default_leaders_per_policy(2, 4) == 0
        assert default_leaders_per_policy(4, 4) == 1
        assert default_leaders_per_policy(1, 2) == 0

    def test_tiny_geometry_selectors_construct(self):
        # Seed code raised here (max(1, ...) forced 1 leader/policy while
        # needed=4 > num_sets=2); now all sets become followers.
        sel = TournamentSelector(2)
        assert [sel.leader_policy(s) for s in range(2)] == [-1, -1]
        sel.record_miss(0)  # follower miss: counters must not move
        assert (sel.pair01.value, sel.pair23.value, sel.meta.value) == (0, 0, 0)
        assert sel.policy_for_set(0) == sel.selected()
        duel = DuelSelector(1)
        assert duel.policy_for_set(0) == duel.selected()


class TestDuelSelector:
    def test_policy_zero_wins_when_policy_one_misses(self):
        sel = DuelSelector(256, leaders_per_policy=8)
        ones = [s for s in range(256) if sel.leader_policy(s) == 1]
        for s in ones * 10:
            sel.record_miss(s)
        assert sel.selected() == 0

    def test_policy_one_wins_when_policy_zero_misses(self):
        sel = DuelSelector(256, leaders_per_policy=8)
        zeros = [s for s in range(256) if sel.leader_policy(s) == 0]
        for s in zeros * 10:
            sel.record_miss(s)
        assert sel.selected() == 1

    def test_followers_follow_selected(self):
        sel = DuelSelector(256, leaders_per_policy=8)
        follower = next(s for s in range(256) if sel.leader_policy(s) == -1)
        assert sel.policy_for_set(follower) == sel.selected()

    def test_leaders_always_run_their_policy(self):
        sel = DuelSelector(256, leaders_per_policy=8)
        zeros = [s for s in range(256) if sel.leader_policy(s) == 0]
        for s in zeros * 100:
            sel.record_miss(s)
        # Even though policy 1 is selected, policy-0 leaders stay policy 0.
        assert sel.policy_for_set(zeros[0]) == 0

    def test_follower_misses_do_not_move_counter(self):
        sel = DuelSelector(256, leaders_per_policy=8)
        follower = next(s for s in range(256) if sel.leader_policy(s) == -1)
        before = sel.psel.value
        sel.record_miss(follower)
        assert sel.psel.value == before


class TestTournamentSelector:
    def _selector(self):
        return TournamentSelector(512, leaders_per_policy=8)

    def _leaders(self, sel, policy):
        return [s for s in range(512) if sel.leader_policy(s) == policy]

    @pytest.mark.parametrize("winner", [0, 1, 2, 3])
    def test_least_missing_policy_wins(self, winner):
        sel = self._selector()
        for policy in range(4):
            if policy == winner:
                continue
            for s in self._leaders(sel, policy) * 20:
                sel.record_miss(s)
        assert sel.selected() == winner

    def test_meta_counter_picks_better_pair(self):
        sel = self._selector()
        # Pair {0,1} misses a lot; pair {2,3} is quiet.
        for policy in (0, 1):
            for s in self._leaders(sel, policy) * 20:
                sel.record_miss(s)
        assert sel.selected() in (2, 3)


class TestBracketSelector:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BracketSelector(512, 6)

    @pytest.mark.parametrize("num_policies", [2, 4, 8])
    @pytest.mark.parametrize("winner_mod", [0, 1])
    def test_quietest_policy_wins(self, num_policies, winner_mod):
        winner = (num_policies - 1) if winner_mod else 0
        sel = BracketSelector(1024, num_policies, leaders_per_policy=4)
        for policy in range(num_policies):
            if policy == winner:
                continue
            leaders = [s for s in range(1024) if sel.leader_policy(s) == policy]
            for s in leaders * 30:
                sel.record_miss(s)
        assert sel.selected() == winner

    def test_matches_tournament_for_four(self):
        """Bracket and Loh tournament agree on every single-winner scenario."""
        for winner in range(4):
            bracket = BracketSelector(512, 4, leaders_per_policy=8, seed=42)
            loh = TournamentSelector(512, leaders_per_policy=8, seed=42)
            for policy in range(4):
                if policy == winner:
                    continue
                leaders = [
                    s for s in range(512) if bracket.leader_policy(s) == policy
                ]
                for s in leaders * 20:
                    bracket.record_miss(s)
                    loh.record_miss(s)
            assert bracket.selected() == loh.selected() == winner


class TestMakeSelector:
    def test_single_policy_constant(self):
        sel = make_selector(64, 1)
        assert sel.selected() == 0
        assert sel.policy_for_set(5) == 0
        sel.record_miss(5)  # no-op

    def test_dispatch(self):
        assert isinstance(make_selector(512, 2), DuelSelector)
        assert isinstance(make_selector(512, 4), TournamentSelector)
        assert isinstance(make_selector(512, 8), BracketSelector)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            make_selector(512, 6)
