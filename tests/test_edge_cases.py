"""Edge-case tests across modules: branches the mainline tests skip."""

import math
import random

import pytest

from repro.cache import CacheHierarchy, SetAssociativeCache
from repro.core.dueling import SaturatingCounter
from repro.core.ipv import IPV, lru_ipv
from repro.policies import (
    DGIPPRPolicy,
    PDPPolicy,
    SHiPPolicy,
    TreePLRUPolicy,
    TrueLRUPolicy,
)
from repro.trace import Trace, mix, uniform_random


class TestCacheEdgeCases:
    def test_single_way_cache(self):
        """Direct-mapped works with positionless policies (IPV-based ones
        legitimately require associativity >= 2)."""
        from repro.policies import FIFOPolicy

        cache = SetAssociativeCache(4, 1, FIFOPolicy(4, 1), block_size=1)
        for a in [0, 4, 0, 4]:
            cache.access(a)
        assert cache.stats.misses == 4  # 0 and 4 conflict in set 0

    def test_single_set_cache(self):
        cache = SetAssociativeCache(1, 4, TrueLRUPolicy(1, 4), block_size=1)
        for a in range(8):
            cache.access(a)
        assert cache.stats.evictions == 4

    def test_bad_victim_detected(self):
        class BrokenPolicy(TrueLRUPolicy):
            def victim(self, set_index, ctx):
                return 99

        cache = SetAssociativeCache(1, 2, BrokenPolicy(1, 2), block_size=1)
        cache.access(0)
        cache.access(1)
        with pytest.raises(RuntimeError, match="invalid victim"):
            cache.access(2)

    def test_hierarchy_mixed_block_sizes(self):
        """Inclusion invalidates every upper block covered by an LLC block."""
        l1 = SetAssociativeCache(64, 2, TrueLRUPolicy(64, 2), block_size=32,
                                 name="L1")
        llc = SetAssociativeCache(2, 2, TrueLRUPolicy(2, 2), block_size=64,
                                  name="LLC")
        h = CacheHierarchy([l1, llc], inclusive_llc=True)
        # Three 64B blocks mapping to LLC set 0: byte addresses 0, 128, 256.
        for address in (0, 128, 256):
            h.access(address)
            h.access(address + 32)  # second half-block lands in L1 too
        assert not h.llc.contains(0)
        assert not h.levels[0].contains(0)
        assert not h.levels[0].contains(32)


class TestInclusiveDGIPPR:
    def test_dgippr_llc_with_inclusion_hook(self):
        """The inclusion wrapper must forward every hook DGIPPR needs
        (on_miss drives the duel; on_evict drives back-invalidation)."""
        l1 = SetAssociativeCache(256, 4, TrueLRUPolicy(256, 4), block_size=1,
                                 name="L1")
        policy = DGIPPRPolicy(16, 16)
        llc = SetAssociativeCache(16, 16, policy, block_size=1, name="LLC")
        h = CacheHierarchy([l1, llc], inclusive_llc=True)
        rng = random.Random(3)
        for _ in range(20_000):
            h.access(rng.randrange(600))
        # The duel still saw misses (PSEL moved or stayed dueling-capable)
        # and inclusion held: every L1-resident block is in the LLC.
        for s in range(256):
            for tag in l1.resident_tags(s):
                block = (tag << 8) | s
                assert llc.contains(block), block

    def test_wrapped_policy_statistics_accessible(self):
        policy = DGIPPRPolicy(16, 16)
        llc = SetAssociativeCache(16, 16, policy, block_size=1)
        h = CacheHierarchy(
            [SetAssociativeCache(64, 2, TrueLRUPolicy(64, 2), block_size=1),
             llc],
            inclusive_llc=True,
        )
        h.access(0)
        assert h.llc.policy.state_bits_per_set() == 15
        assert h.llc.policy.global_state_bits() == 33


class TestCounterEdgeCases:
    def test_one_bit_counter(self):
        c = SaturatingCounter(bits=1)
        assert (c.lo, c.hi) == (-1, 0)
        c.increment()
        assert c.value == 0
        c.decrement()
        c.decrement()
        assert c.value == -1


class TestPolicyEdgeCases:
    def test_dgippr_single_vector_degenerates_to_gippr(self):
        from repro.core.vectors import GIPPR_WI_VECTOR
        from repro.policies import GIPPRPolicy

        rng = random.Random(1)
        trace = [rng.randrange(600) for _ in range(10_000)]
        dgippr = DGIPPRPolicy(8, 16, ipvs=[GIPPR_WI_VECTOR])
        gippr = GIPPRPolicy(8, 16, ipv=GIPPR_WI_VECTOR)
        ca = SetAssociativeCache(8, 16, dgippr, block_size=1)
        cb = SetAssociativeCache(8, 16, gippr, block_size=1)
        for a in trace:
            ca.access(a)
            cb.access(a)
        assert ca.stats.misses == cb.stats.misses

    def test_pdp_minimum_counter_bits(self):
        with pytest.raises(ValueError):
            PDPPolicy(4, 4, counter_bits=1)

    def test_pdp_step_quantization(self):
        policy = PDPPolicy(4, 4, counter_bits=2)  # max RPD 3
        policy.pd = 10
        assert policy.step == 4  # ceil(10/3)
        assert policy._quantized_pd() <= policy.max_rpd

    def test_ship_small_table(self):
        policy = SHiPPolicy(4, 4, signature_bits=4)
        cache = SetAssociativeCache(4, 4, policy, block_size=1)
        rng = random.Random(2)
        for _ in range(2000):
            cache.access(rng.randrange(100), pc=rng.randrange(1000))
        assert all(0 <= v <= policy._shct_max for v in policy._shct)

    def test_rrip_one_bit_rrpv(self):
        from repro.policies import SRRIPPolicy

        policy = SRRIPPolicy(2, 4, rrpv_bits=1)
        cache = SetAssociativeCache(2, 4, policy, block_size=1)
        for a in range(32):
            cache.access(a)
        assert cache.stats.accesses == 32


class TestIPVEdgeCases:
    def test_minimum_associativity(self):
        ipv = lru_ipv(2)
        assert ipv.k == 2
        assert len(ipv.transition_edges()) > 0

    def test_all_self_loops_degenerate_unless_insert_mru(self):
        identity_mru = IPV([0, 1, 2, 3, 0])
        assert not identity_mru.is_degenerate()

    def test_with_name(self):
        renamed = lru_ipv(4).with_name("alias")
        assert renamed.name == "alias"
        assert renamed == lru_ipv(4)


class TestTraceEdgeCases:
    def test_empty_positions_none(self):
        trace = Trace([1, 2, 3])
        assert trace.position_list() is None

    def test_mix_single_trace_identity_length(self):
        t = uniform_random(10, 100, seed=1)
        m = mix([t], chunk=7)
        assert len(m) == 100

    def test_slice_empty_region(self):
        t = uniform_random(10, 100, seed=2)
        part = t.slice(50, 50)
        assert len(part) == 0


class TestReportingEdgeCases:
    def test_sorted_benchmarks_unknown_metric(self):
        from repro.eval import PolicySpec, default_config, run_suite

        suite = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("PLRU", "plru")],
            config=default_config(trace_length=2000),
            benchmarks=["453.povray"],
        )
        with pytest.raises(ValueError, match="unknown metric"):
            suite.sorted_benchmarks("PLRU", metric="entropy")

    def test_bar_chart_unsorted(self):
        from repro.viz import bar_chart

        chart = bar_chart({"b": 2.0, "a": 1.0}, sort=False)
        lines = chart.splitlines()
        assert lines[0].startswith("b")  # insertion order preserved

    def test_overhead_row_nan_handling(self):
        from repro.eval import overhead_row

        row = overhead_row("belady", num_sets=16)
        assert math.isnan(row["bits_per_block"])
