"""Tests for the zCache substrate (future work item 6's complement)."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.cache.zcache import ZCache
from repro.policies import TrueLRUPolicy


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZCache(0, 4)
        with pytest.raises(ValueError):
            ZCache(16, 1)
        with pytest.raises(ValueError):
            ZCache(16, 4, depth=0)

    def test_hit_after_fill(self):
        z = ZCache(16, 4)
        assert not z.access(42)
        assert z.access(42)
        assert z.stats.hits == 1

    def test_capacity_and_occupancy(self):
        z = ZCache(8, 4)
        assert z.capacity_blocks == 32
        for a in range(32):
            z.access(a)
        # Hash skew may force early evictions, but occupancy approaches
        # capacity thanks to relocation.
        assert z.occupancy() >= 28

    def test_candidate_pool_size(self):
        assert ZCache(16, 4, depth=1).candidate_pool_size() == 4
        assert ZCache(16, 4, depth=2).candidate_pool_size() == 4 + 12

    def test_contains_tracks_residency(self):
        z = ZCache(16, 4)
        z.access(7)
        assert z.contains(7)
        assert not z.contains(8)

    def test_relocations_happen_under_pressure(self):
        z = ZCache(16, 4, depth=3)
        rng = random.Random(0)
        for _ in range(5000):
            z.access(rng.randrange(100))
        assert z.relocations > 0

    def test_eviction_consistency(self):
        """After heavy traffic the location map matches the arrays."""
        z = ZCache(8, 4, depth=2)
        rng = random.Random(1)
        for _ in range(10_000):
            z.access(rng.randrange(200))
        count = 0
        for way in range(z.ways):
            for row in range(z.num_sets):
                block = z._rows[way][row]
                if block is not None:
                    count += 1
                    assert z._where[block] == (way, row)
        assert count == z.occupancy()


class TestEffectiveAssociativity:
    def _miss_rate_zcache(self, depth, trace):
        z = ZCache(256, 4, depth=depth)  # 1024 blocks, only 4 ways
        for a in trace:
            z.access(a)
        return z.stats.miss_rate

    def _miss_rate_setassoc(self, assoc, trace):
        num_sets = 1024 // assoc
        cache = SetAssociativeCache(
            num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=1
        )
        for a in trace:
            cache.access(a)
        return cache.stats.miss_rate

    def test_deeper_walks_improve_eviction_quality(self):
        rng = random.Random(3)
        trace = [rng.randrange(900) for _ in range(40_000)]
        shallow = self._miss_rate_zcache(1, trace)
        deep = self._miss_rate_zcache(3, trace)
        assert deep <= shallow + 0.005

    def test_zcache_beats_same_way_count_setassoc(self):
        """The zCache's whole point: 4 physical ways behave like many.

        The working set collides in the conventional cache's index bits
        (14 blocks per set against 4 ways), which skewed hashing spreads
        back out."""
        rng = random.Random(4)
        hot = [(i % 64) + 256 * (i // 64) for i in range(900)]
        trace = [rng.choice(hot) for _ in range(40_000)]
        z = self._miss_rate_zcache(2, trace)
        four_way = self._miss_rate_setassoc(4, trace)
        assert z < four_way * 0.5

    def test_zcache_approaches_high_associativity(self):
        rng = random.Random(5)
        trace = [rng.randrange(950) for _ in range(40_000)]
        z = self._miss_rate_zcache(3, trace)
        sixteen_way = self._miss_rate_setassoc(16, trace)
        assert z <= sixteen_way * 1.15
