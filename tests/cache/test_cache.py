"""Tests for the set-associative cache model."""

import pytest

from repro.cache import SetAssociativeCache
from repro.policies import TrueLRUPolicy


def lru_cache(num_sets=4, assoc=4, block_size=1):
    return SetAssociativeCache(
        num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=block_size
    )


class TestGeometry:
    def test_capacity(self):
        cache = lru_cache(num_sets=8, assoc=4, block_size=64)
        assert cache.capacity_bytes == 8 * 4 * 64
        assert cache.capacity_blocks == 32

    def test_locate_block_addresses(self):
        cache = lru_cache(num_sets=4, assoc=2, block_size=1)
        assert cache.locate(5) == (1, 1)  # 5 = set 1, tag 1
        assert cache.locate(4) == (0, 1)

    def test_locate_byte_addresses(self):
        cache = lru_cache(num_sets=4, assoc=2, block_size=64)
        set_index, tag = cache.locate(64 * 5)
        assert (set_index, tag) == (1, 1)
        # All bytes in the same block map identically.
        assert cache.locate(64 * 5 + 63) == (1, 1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            lru_cache(num_sets=3)

    def test_rejects_mismatched_policy(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(8, 4, TrueLRUPolicy(4, 4), block_size=1)


class TestAccessPath:
    def test_cold_misses_then_hits(self):
        cache = lru_cache(num_sets=1, assoc=4)
        assert [cache.access(a) for a in range(4)] == [False] * 4
        assert [cache.access(a) for a in range(4)] == [True] * 4
        assert cache.stats.misses == 4
        assert cache.stats.hits == 4

    def test_lru_eviction_order(self):
        cache = lru_cache(num_sets=1, assoc=4)
        for a in range(4):
            cache.access(a)
        cache.access(0)  # 1 is now LRU
        cache.access(4)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_eviction_counts(self):
        cache = lru_cache(num_sets=1, assoc=2)
        for a in range(5):
            cache.access(a)
        assert cache.stats.evictions == 3
        assert cache.stats.misses == 5

    def test_sets_are_independent(self):
        cache = lru_cache(num_sets=2, assoc=2)
        # Addresses 0,2,4 map to set 0; 1,3 to set 1.
        cache.access(0)
        cache.access(2)
        cache.access(1)
        cache.access(4)  # evicts 0 from set 0
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_writeback_accounting(self):
        cache = lru_cache(num_sets=1, assoc=2)
        cache.access(0, is_write=True)
        cache.access(1)
        cache.access(2)  # evicts dirty 0
        assert cache.stats.writebacks == 1
        cache.access(3)  # evicts clean 1
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = lru_cache(num_sets=1, assoc=2)
        cache.access(0)
        cache.access(0, is_write=True)
        cache.access(1)
        cache.access(2)  # evicts 0, now dirty
        assert cache.stats.writebacks == 1


class TestInvalidationAndStats:
    def test_invalidate(self):
        cache = lru_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.contains(0)
        assert not cache.invalidate(0)  # already gone

    def test_invalidated_way_reused_without_eviction(self):
        cache = lru_cache(num_sets=1, assoc=2)
        cache.access(0)
        cache.access(1)
        cache.invalidate(0)
        cache.access(2)
        assert cache.stats.evictions == 0
        assert cache.contains(1) and cache.contains(2)

    def test_reset_stats_keeps_contents(self):
        cache = lru_cache(num_sets=1, assoc=2)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0)  # still resident

    def test_miss_rate(self):
        cache = lru_cache(num_sets=1, assoc=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5

    def test_resident_tags(self):
        cache = lru_cache(num_sets=1, assoc=4)
        for a in range(3):
            cache.access(a)
        assert sorted(cache.resident_tags(0)) == [0, 1, 2]

    def test_stats_snapshot_keys(self):
        cache = lru_cache()
        cache.access(0)
        snap = cache.stats.snapshot()
        assert snap["accesses"] == 1 and snap["misses"] == 1
        assert "mpki" in snap and "writebacks" in snap
