"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.cache import CacheHierarchy, SetAssociativeCache, paper_hierarchy
from repro.policies import TreePLRUPolicy, TrueLRUPolicy


def small_hierarchy(inclusive=False):
    l1 = SetAssociativeCache(2, 2, TrueLRUPolicy(2, 2), block_size=1, name="L1")
    l2 = SetAssociativeCache(4, 2, TrueLRUPolicy(4, 2), block_size=1, name="L2")
    llc = SetAssociativeCache(8, 4, TrueLRUPolicy(8, 4), block_size=1, name="LLC")
    return CacheHierarchy([l1, l2, llc], inclusive_llc=inclusive)


class TestFiltering:
    def test_hit_levels(self):
        h = small_hierarchy()
        assert h.access(0) == 3  # memory
        assert h.access(0) == 0  # L1 hit

    def test_l1_filters_llc(self):
        h = small_hierarchy()
        for _ in range(10):
            h.access(0)
        assert h.levels[0].stats.accesses == 10
        assert h.llc.stats.accesses == 1  # only the initial miss reached it

    def test_all_levels_allocate_on_miss(self):
        h = small_hierarchy()
        h.access(7)
        assert all(level.contains(7) for level in h.levels)

    def test_llc_sees_l1_victim_stream(self):
        h = small_hierarchy()
        # Blocks 0, 4, 8 thrash both the 2-way L1 set and the 2-way L2 set
        # they share, so misses keep flowing down to the LLC.
        for _ in range(5):
            for addr in (0, 4, 8):
                h.access(addr)
        # L1 misses repeatedly but the LLC absorbs them: after warmup the
        # LLC should hit on every L1 miss (its set is big enough).
        assert h.llc.stats.hits > 0

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


def wide_l1_hierarchy(inclusive):
    """An L1 with more sets than the LLC, so LLC evictions happen while the
    block is still resident in L1 — the case inclusion must clean up."""
    l1 = SetAssociativeCache(16, 4, TrueLRUPolicy(16, 4), block_size=1, name="L1")
    llc = SetAssociativeCache(2, 2, TrueLRUPolicy(2, 2), block_size=1, name="LLC")
    return CacheHierarchy([l1, llc], inclusive_llc=inclusive)


class TestInclusion:
    def test_back_invalidation(self):
        h = wide_l1_hierarchy(inclusive=True)
        # Blocks 0, 2, 4 all map to LLC set 0 (2 ways) but to distinct L1
        # sets, so L1 never evicts them on its own.
        for addr in (0, 2, 4):
            h.access(addr)
        # The LLC evicted block 0; inclusion must have removed it from L1.
        assert not h.llc.contains(0)
        assert not h.levels[0].contains(0)
        assert h.levels[0].contains(2) and h.levels[0].contains(4)

    def test_inclusive_wrapper_preserves_policy_name(self):
        h = wide_l1_hierarchy(inclusive=True)
        assert h.llc.policy.name == "lru"

    def test_non_inclusive_keeps_upper_copy(self):
        h = wide_l1_hierarchy(inclusive=False)
        for addr in (0, 2, 4):
            h.access(addr)
        assert not h.llc.contains(0)
        assert h.levels[0].contains(0)  # no back-invalidation


class TestPaperHierarchy:
    def test_geometry(self):
        h = paper_hierarchy(TreePLRUPolicy(4096, 16))
        l1, l2, llc = h.levels
        assert l1.capacity_bytes == 32 * 1024
        assert l2.capacity_bytes == 256 * 1024
        assert llc.capacity_bytes == 4 * 1024 * 1024
        assert llc.assoc == 16

    def test_scaled_down_llc(self):
        h = paper_hierarchy(TreePLRUPolicy(64, 16), llc_sets=64)
        assert h.llc.num_sets == 64

    def test_runs_accesses(self):
        h = paper_hierarchy(TreePLRUPolicy(64, 16), llc_sets=64)
        for i in range(1000):
            h.access(i * 64)  # one block per access, streaming
        assert h.llc.stats.misses == 1000
