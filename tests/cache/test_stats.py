"""CacheStats derived rates, NaN mpki semantics, sanity checking."""

import math

import pytest

from repro.cache.stats import CacheStats


def _stats(**kwargs):
    stats = CacheStats()
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


class TestRates:
    def test_hit_and_miss_rates(self):
        stats = _stats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == 0.7
        assert stats.miss_rate == 0.3

    def test_idle_cache_rates_are_zero(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_mpki_with_instructions(self):
        stats = _stats(accesses=4, hits=2, misses=2, instructions=1000)
        assert stats.mpki == 2.0

    def test_mpki_undefined_without_instructions(self):
        """0.0 used to masquerade as a perfect cache; nan is honest."""
        stats = _stats(accesses=4, hits=2, misses=2)
        assert math.isnan(stats.mpki)


class TestSanity:
    def test_consistent_counters_pass(self):
        _stats(accesses=5, hits=3, misses=2, evictions=1,
               writebacks=1).sanity_check()

    def test_hits_plus_misses_must_equal_accesses(self):
        with pytest.raises(ValueError, match="accesses"):
            _stats(accesses=5, hits=3, misses=1).sanity_check()

    def test_evictions_cannot_exceed_misses(self):
        with pytest.raises(ValueError, match="evictions"):
            _stats(accesses=3, hits=1, misses=2, evictions=5).sanity_check()

    def test_writebacks_cannot_exceed_evictions(self):
        with pytest.raises(ValueError, match="writebacks"):
            _stats(accesses=3, hits=1, misses=2, evictions=1,
                   writebacks=2).sanity_check()

    def test_bypasses_cannot_exceed_misses(self):
        with pytest.raises(ValueError, match="bypasses"):
            _stats(accesses=3, hits=1, misses=2, bypasses=3).sanity_check()


class TestSnapshot:
    def test_snapshot_includes_rates_and_validates(self):
        stats = _stats(accesses=8, hits=6, misses=2, evictions=2,
                       instructions=4000)
        snap = stats.snapshot()
        assert snap["hit_rate"] == 0.75
        assert snap["miss_rate"] == 0.25
        assert snap["mpki"] == 0.5
        assert snap["evictions"] == 2

    def test_snapshot_rejects_corrupt_counters(self):
        with pytest.raises(ValueError):
            _stats(accesses=1, hits=1, misses=1).snapshot()

    def test_reset_clears_everything(self):
        stats = _stats(accesses=8, hits=6, misses=2, instructions=100)
        stats.reset()
        assert stats.snapshot()["accesses"] == 0
