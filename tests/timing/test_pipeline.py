"""Tests for the CMP$im-like pipeline timing model."""

import pytest

from repro.timing.pipeline import PipelineModel, PipelineResult, simulate_ipc


class TestPipelineModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(width=0)
        with pytest.raises(ValueError):
            PipelineModel(dram_latency=10, llc_hit_latency=30)
        with pytest.raises(ValueError):
            PipelineModel().simulate(100, 2, [True])
        with pytest.raises(ValueError):
            PipelineModel().simulate(1, 2, [True, True])

    def test_all_hits_reach_near_peak_ipc(self):
        model = PipelineModel(width=4)
        result = model.simulate(100_000, 1000, [True] * 1000)
        assert result.ipc == pytest.approx(4.0, rel=0.01)
        assert result.stall_cycles == 0  # 30-cycle hits hide under the window

    def test_isolated_miss_penalty(self):
        """One far-apart miss costs dram_latency - window/width cycles."""
        model = PipelineModel(width=4, window=128, dram_latency=200)
        result = model.simulate(100_000, 100, [False] + [True] * 99)
        assert result.stall_cycles == pytest.approx(200 - 32)
        assert result.miss_episodes == 1

    def test_more_misses_never_faster(self):
        model = PipelineModel()
        previous = None
        for miss_count in (0, 100, 400, 1000):
            outcomes = ([False] * miss_count + [True] * (1000 - miss_count))
            ipc = model.simulate(60_000, 1000, outcomes).ipc
            if previous is not None:
                assert ipc <= previous + 1e-9
            previous = ipc

    def test_clustered_misses_cheaper_than_spread(self):
        """The MLP effect: a burst of misses inside one window overlaps."""
        model = PipelineModel()
        n = 2000
        instructions = 20_000  # 10 instructions between accesses
        clustered = [False] * 200 + [True] * (n - 200)
        spread = ([False] + [True] * 9) * 200
        fast = model.simulate(instructions, n, clustered)
        slow = model.simulate(instructions, n, spread)
        assert fast.total_misses == slow.total_misses == 200
        assert fast.cycles < slow.cycles
        assert fast.mlp > slow.mlp

    def test_mlp_bounded_by_mshrs(self):
        model = PipelineModel(mshrs=4)
        # Dense miss burst: overlap would be huge without the MSHR cap.
        result = model.simulate(8000, 4000, [False] * 4000)
        assert result.mlp <= 4 + 1e-9

    def test_episode_breaks_beyond_window(self):
        model = PipelineModel(width=4, window=128)
        # Two misses 1000 instructions apart: two separate episodes.
        outcomes = [False] + [True] * 9 + [False] + [True] * 9
        result = model.simulate(2000, 20, outcomes)
        assert result.miss_episodes == 2

    def test_simulate_ipc_wrapper(self):
        result = simulate_ipc(10_000, 100, [True] * 100)
        assert isinstance(result, PipelineResult)
        assert result.ipc > 0

    def test_policy_ordering_preserved(self):
        """Fewer misses -> higher IPC (same ranking as the linear model)."""
        model = PipelineModel()
        better = [True] * 900 + [False] * 100
        worse = [True] * 700 + [False] * 300
        assert (
            model.simulate(50_000, 1000, better).ipc
            > model.simulate(50_000, 1000, worse).ipc
        )

    def test_no_misses_no_episodes(self):
        result = PipelineModel().simulate(1000, 10, [True] * 10)
        assert result.miss_episodes == 0
        assert result.mlp == 0.0
