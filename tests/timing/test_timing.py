"""Tests for the CPI models."""

import pytest

from repro.timing import LinearCPIModel, MLPAwareCPIModel


class TestLinearCPI:
    def test_cycles(self):
        model = LinearCPIModel(base_cpi=0.5, miss_penalty=200)
        assert model.cycles(1000, 10) == 500 + 2000

    def test_cpi(self):
        model = LinearCPIModel(base_cpi=1.0, miss_penalty=100)
        assert model.cpi(1000, 0) == 1.0
        assert model.cpi(1000, 10) == 2.0

    def test_speedup_direction(self):
        model = LinearCPIModel()
        # Fewer misses -> speedup above 1.
        assert model.speedup(10_000, 100, 50) > 1.0
        assert model.speedup(10_000, 50, 100) < 1.0

    def test_speedup_identity(self):
        model = LinearCPIModel()
        assert model.speedup(10_000, 77, 77) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearCPIModel(base_cpi=0)
        with pytest.raises(ValueError):
            LinearCPIModel(miss_penalty=-1)
        with pytest.raises(ValueError):
            LinearCPIModel().cycles(0, 5)


class TestMLPAwareCPI:
    def test_isolated_misses_pay_full_latency(self):
        model = MLPAwareCPIModel(miss_penalty=200, window=100)
        # Misses 1000 instructions apart never overlap.
        assert model.miss_cycles([0, 1000, 2000]) == 600

    def test_clustered_misses_overlap(self):
        model = MLPAwareCPIModel(
            miss_penalty=200, window=100, serial_fraction=0.25
        )
        # Three misses within one window: 200 * (1 + 2*0.25) = 300.
        assert model.miss_cycles([0, 10, 20]) == 300

    def test_cluster_break(self):
        model = MLPAwareCPIModel(miss_penalty=100, window=50, serial_fraction=0.0)
        # Two clusters of two: each costs one latency with full overlap.
        assert model.miss_cycles([0, 10, 500, 510]) == 200

    def test_full_serialization_matches_linear(self):
        mlp = MLPAwareCPIModel(
            base_cpi=0.5, miss_penalty=200, window=100, serial_fraction=1.0
        )
        linear_total = 200 * 5
        assert mlp.miss_cycles([0, 1, 2, 3, 4]) == linear_total

    def test_mlp_rewards_clustering(self):
        """Same miss count, clustered vs spread: clustered is cheaper —
        the effect the paper's linear fitness cannot see."""
        model = MLPAwareCPIModel()
        clustered = model.cycles(10_000, [0, 10, 20, 30])
        spread = model.cycles(10_000, [0, 2000, 4000, 6000])
        assert clustered < spread

    def test_requires_sorted_positions(self):
        with pytest.raises(ValueError):
            MLPAwareCPIModel().miss_cycles([100, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPAwareCPIModel(serial_fraction=1.5)
        with pytest.raises(ValueError):
            MLPAwareCPIModel(window=0)

    def test_speedup(self):
        model = MLPAwareCPIModel()
        assert model.speedup(1000, [0, 500], [0]) > 1.0
