"""Tests asserting the paper's Section 5.3.2 vector readings."""

from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.vectors import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPPR_WI_VECTOR,
)
from repro.viz.vector_analysis import (
    describe_vector,
    duel_coverage,
    insertion_class,
    is_pessimistic_promotion,
    promotion_bias,
)


class TestInsertionClass:
    def test_classic_vectors(self):
        assert insertion_class(lru_ipv(16)) == "pmru"
        assert insertion_class(lip_ipv(16)) == "plru"
        assert insertion_class(IPV([0] * 16 + [8])) == "middle"
        assert insertion_class(IPV([0] * 16 + [2])) == "near-pmru"

    def test_wi2_duels_plru_vs_pmru(self):
        """Section 5.3.2: 'the WI-2-DGIPPR IPVs clearly duel between PLRU
        and PMRU insertion, just as DIP would do.'"""
        classes = sorted(insertion_class(v) for v in DGIPPR2_WI_VECTORS)
        assert classes == ["plru", "pmru"]

    def test_wi4_switches_across_classes(self):
        """Section 5.3.2: 'switch between PLRU, PMRU, close to PMRU, and
        middle insertion.'"""
        coverage = duel_coverage(DGIPPR4_WI_VECTORS)
        assert len(coverage) >= 3
        assert "plru" in coverage or "middle" in coverage


class TestPromotionBias:
    def test_lru_maximally_optimistic(self):
        assert promotion_bias(lru_ipv(16)) == -1.0
        assert not is_pessimistic_promotion(lru_ipv(16))

    def test_identity_vector_neutral(self):
        identity = IPV(list(range(16)) + [0])
        assert promotion_bias(identity) == 0.0

    def test_2dg_a_pessimistic(self):
        """Section 5.3.2: the first WI-2 vector 'seems to prefer a very
        pessimistic promotion policy, moving most referenced blocks closer
        to the PLRU position.'"""
        vector_a = DGIPPR2_WI_VECTORS[0]
        vector_b = DGIPPR2_WI_VECTORS[1]
        assert promotion_bias(vector_a) > promotion_bias(vector_b)
        assert is_pessimistic_promotion(vector_a)

    def test_gippr_wi_between_extremes(self):
        bias = promotion_bias(GIPPR_WI_VECTOR)
        assert -1.0 < bias < 1.0


class TestDescription:
    def test_describe_mentions_class_and_style(self):
        text = describe_vector(lip_ipv(16))
        assert "plru insertion" in text
        assert "optimistic" in text or "pessimistic" in text

    def test_describe_all_paper_vectors(self):
        from repro.core.vectors import paper_vectors

        for vector in paper_vectors().values():
            text = describe_vector(vector)
            assert vector.name in text
