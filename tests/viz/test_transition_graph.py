"""Unit tests for the IPV transition-graph renderers (Figures 2/3).

Covers the degenerate k=2 floor geometry, the published 16-way vector,
DOT well-formedness and the degeneracy warning.
"""

from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.vectors import GIPPR_WI_VECTOR
from repro.viz.transition_graph import transition_dot, transition_text


class TestTransitionDot:
    def test_k2_minimal_geometry(self):
        dot = transition_dot(lru_ipv(2))
        assert dot.startswith("digraph ipv {")
        assert dot.rstrip().endswith("}")
        assert "insertion -> 0;" in dot
        assert "1 -> eviction [style=bold];" in dot

    def test_paper_vector_edges(self):
        ipv = GIPPR_WI_VECTOR
        dot = transition_dot(ipv)
        # The insertion pseudo-edge targets V[k].
        assert f"insertion -> {ipv.insertion};" in dot
        # Eviction hangs off position k-1.
        assert f"{ipv.k - 1} -> eviction" in dot
        # Every position appears as an edge source.
        for i in range(ipv.k):
            assert f"  {i} -> " in dot

    def test_title_override(self):
        dot = transition_dot(lru_ipv(4), title="custom title")
        assert 'label="custom title";' in dot

    def test_self_loop_for_stationary_positions(self):
        # LIP at position 0 promotes to 0: a self-loop, not a missing edge.
        dot = transition_dot(lip_ipv(4))
        assert "  0 -> 0;" in dot


class TestTransitionText:
    def test_k2_lists_both_positions(self):
        text = transition_text(lru_ipv(2))
        assert "hit at position  0" in text
        assert "hit at position  1" in text
        assert "insertion at position 0" in text
        assert "eviction from position 1" in text

    def test_degenerate_vector_warns(self):
        # No path from the insertion position to MRU: blocks inserted at
        # k-1 and promoted back to k-1 can never escape eviction.
        degenerate = IPV([0, 1, 2, 3, 3], name="dead-end")
        assert degenerate.is_degenerate()
        assert "WARNING: degenerate" in transition_text(degenerate)

    def test_healthy_vector_does_not_warn(self):
        assert "WARNING" not in transition_text(lru_ipv(4))

    def test_entries_rendered(self):
        text = transition_text(GIPPR_WI_VECTOR)
        joined = " ".join(map(str, GIPPR_WI_VECTOR.entries))
        assert joined in text
