"""Tests for the transition-graph and chart rendering."""

import pytest

from repro.core.ipv import lip_ipv, lru_ipv
from repro.core.vectors import GIPLR_VECTOR
from repro.viz import bar_chart, transition_dot, transition_text


class TestTransitionDot:
    def test_valid_dot_structure(self):
        dot = transition_dot(lru_ipv(16))
        assert dot.startswith("digraph ipv {")
        assert dot.rstrip().endswith("}")
        assert "insertion -> 0;" in dot
        assert "15 -> eviction" in dot

    def test_giplr_edges(self):
        dot = transition_dot(GIPLR_VECTOR)
        assert "insertion -> 13;" in dot  # V[16] = 13
        assert "15 -> 11;" in dot  # V[15] = 11

    def test_title_override(self):
        dot = transition_dot(lru_ipv(16), title="Figure 2")
        assert 'label="Figure 2";' in dot


class TestTransitionText:
    def test_mentions_all_positions(self):
        text = transition_text(lip_ipv(16))
        for i in range(16):
            assert f"position {i:2d}" in text
        assert "insertion at position 15" in text

    def test_degenerate_warning(self):
        from repro.core.ipv import IPV

        bad = IPV([0, 1, 2, 3, 3])
        assert "degenerate" in transition_text(bad)


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart({"a": 1.2, "b": 0.9}, title="t")
        assert "a" in chart and "b" in chart and "t" in chart
        assert "baseline" in chart

    def test_direction_markers(self):
        chart = bar_chart({"up": 1.5, "down": 0.5})
        up_line = next(l for l in chart.splitlines() if l.startswith("up"))
        down_line = next(l for l in chart.splitlines() if l.startswith("down"))
        assert ">" in up_line
        assert "<" in down_line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
