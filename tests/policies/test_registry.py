"""Tests for the policy registry and shared policy-contract behaviour."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.policies import POLICIES, make_policy, policy_names
from repro.policies.base import ReplacementPolicy

ALL_NAMES = policy_names()
RUNNABLE = [n for n in ALL_NAMES if n not in ("belady", "ipv-lru")]


class TestRegistry:
    def test_known_names(self):
        for expected in ["lru", "plru", "gippr", "dgippr", "drrip", "pdp", "belady"]:
            assert expected in ALL_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("clairvoyant", 4, 4)

    def test_kwargs_forwarded(self):
        from repro.core.ipv import lip_ipv

        policy = make_policy("gippr", 4, 16, ipv=lip_ipv(16))
        assert policy.ipv.insertion == 15

    @pytest.mark.parametrize("name", RUNNABLE)
    def test_every_policy_respects_contract(self, name):
        """Every policy returns valid victims and never corrupts the cache."""
        policy = make_policy(name, 8, 16)
        cache = SetAssociativeCache(8, 16, policy, block_size=1)
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(4000):
            cache.access(rng.randrange(600), pc=rng.randrange(16))
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == 4000
        # Every resident tag is found where the tag map says it is.
        for s in range(8):
            for tag, way in cache._way_of[s].items():
                assert cache._tags[s][way] == tag

    @pytest.mark.parametrize("name", RUNNABLE)
    def test_state_accounting_defined(self, name):
        policy = make_policy(name, 64, 16)
        bits = policy.state_bits_per_set()
        assert bits >= 0
        assert policy.total_state_bits() >= bits * 64

    def test_base_policy_geometry_validation(self):
        with pytest.raises(ValueError):
            ReplacementPolicy(0, 4)
        with pytest.raises(ValueError):
            ReplacementPolicy(4, 0)

    @pytest.mark.parametrize("name", RUNNABLE)
    def test_deterministic_across_runs(self, name):
        rng = random.Random(99)
        trace = [rng.randrange(300) for _ in range(3000)]

        def misses():
            policy = make_policy(name, 8, 16)
            cache = SetAssociativeCache(8, 16, policy, block_size=1)
            return sum(not cache.access(a, pc=a % 8) for a in trace)

        assert misses() == misses()
