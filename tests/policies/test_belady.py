"""Tests for Belady's MIN."""

import itertools
import random

import pytest

from repro.cache import SetAssociativeCache
from repro.policies import BeladyPolicy, TrueLRUPolicy, make_policy, policy_names
from repro.trace import Trace, annotate_next_use


def run_with_future(policy, addresses, num_sets=1, assoc=2):
    trace = Trace(addresses)
    next_use = annotate_next_use(trace)
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    misses = 0
    for i, addr in enumerate(addresses):
        if not cache.access(addr, next_use=next_use[i]):
            misses += 1
    return misses


def brute_force_min_misses(addresses, assoc):
    """Exhaustive optimal misses for a single set (tiny inputs only).

    Dynamic programming over (index, frozenset of resident blocks).
    """
    from functools import lru_cache as memo

    addresses = tuple(addresses)

    @memo(maxsize=None)
    def best(i, resident):
        if i == len(addresses):
            return 0
        addr = addresses[i]
        if addr in resident:
            return best(i + 1, resident)
        if len(resident) < assoc:
            return 1 + best(i + 1, resident | {addr})
        return 1 + min(
            best(i + 1, (resident - {victim}) | {addr}) for victim in resident
        )

    return best(0, frozenset())


class TestBelady:
    def test_requires_annotation(self):
        policy = BeladyPolicy(1, 2)
        cache = SetAssociativeCache(1, 2, policy, block_size=1)
        with pytest.raises(RuntimeError):
            cache.access(0)

    def test_textbook_sequence(self):
        # Classic example: with 2 ways, OPT on [0,1,2,0,1,2] misses 4 times
        # (0,1 cold; 2 evicts whichever of 0/1 is farther; etc.).
        addresses = [0, 1, 2, 0, 1, 2]
        misses = run_with_future(BeladyPolicy(1, 2), addresses)
        assert misses == brute_force_min_misses(addresses, 2)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_optimum(self, seed):
        rng = random.Random(seed)
        addresses = [rng.randrange(5) for _ in range(16)]
        misses = run_with_future(BeladyPolicy(1, 2), addresses)
        assert misses == brute_force_min_misses(addresses, 2)

    def test_never_worse_than_practical_policies(self):
        """MIN lower-bounds every implementable policy (Figure 10's floor)."""
        rng = random.Random(42)
        addresses = [rng.randrange(300) for _ in range(20_000)]
        belady_misses = run_with_future(
            BeladyPolicy(4, 16), addresses, num_sets=4, assoc=16
        )
        for name in ["lru", "plru", "drrip", "pdp", "gippr", "dgippr", "dip"]:
            policy = make_policy(name, 4, 16)
            cache = SetAssociativeCache(4, 16, policy, block_size=1)
            misses = sum(not cache.access(a) for a in addresses)
            assert belady_misses <= misses, name

    def test_streaming_equivalence(self):
        """On a zero-reuse stream every policy misses everything; MIN too."""
        addresses = list(range(5000))
        misses = run_with_future(BeladyPolicy(4, 16), addresses, num_sets=4, assoc=16)
        assert misses == 5000

    def test_evicts_never_reused_first(self):
        policy = BeladyPolicy(1, 2)
        # 0 reused at the end, 1 never reused; 2 must evict 1.
        addresses = [0, 1, 2, 0, 2]
        misses = run_with_future(policy, addresses)
        assert misses == 3
