"""Tests for the DGIPPR+bypass extension (paper future work, item 1)."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import BypassDGIPPRPolicy, DGIPPRPolicy


def run(policy, accesses, num_sets=16, assoc=16):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for addr, pc in accesses:
        cache.access(addr, pc=pc)
    return cache


def scan_plus_hot(n, seed=0):
    """Hot working set from one PC, dead scans from another."""
    rng = random.Random(seed)
    hot = list(range(200))
    accesses = []
    scan = 100_000
    for _ in range(n // 10):
        accesses.extend((rng.choice(hot), 7) for _ in range(7))
        for _ in range(3):
            accesses.append((scan, 0xDEAD))
            scan += 1
    return accesses


class TestBypassDGIPPR:
    def test_learns_to_bypass_dead_pc(self):
        policy = BypassDGIPPRPolicy(16, 16)
        cache = run(policy, scan_plus_hot(40_000))
        assert cache.stats.bypasses > 0
        sig = policy._signature(0xDEAD)
        assert policy._shct[sig] == 0

    def test_never_bypasses_live_pc(self):
        policy = BypassDGIPPRPolicy(16, 16)
        run(policy, scan_plus_hot(40_000))
        sig = policy._signature(7)
        assert policy._shct[sig] > 0

    def test_at_least_as_good_as_plain_dgippr_on_scans(self):
        accesses = scan_plus_hot(60_000, seed=3)
        bypass = run(BypassDGIPPRPolicy(16, 16), accesses)
        plain = run(DGIPPRPolicy(16, 16), accesses)
        assert bypass.stats.hits >= plain.stats.hits

    def test_bypassed_blocks_not_resident(self):
        policy = BypassDGIPPRPolicy(4, 16)
        cache = SetAssociativeCache(4, 16, policy, block_size=1)
        # Train the dead signature.
        for i in range(2000):
            cache.access(1000 + i, pc=0xDEAD)
        # Fill sets with live data from a different PC.
        for i in range(64):
            cache.access(i, pc=5)
        before = cache.stats.bypasses
        cache.access(999_999, pc=0xDEAD)
        assert cache.stats.bypasses == before + 1
        assert not cache.contains(999_999)

    def test_cold_sets_always_allocate(self):
        """Bypass only applies to full sets (free ways always fill)."""
        policy = BypassDGIPPRPolicy(4, 16)
        cache = SetAssociativeCache(4, 16, policy, block_size=1)
        sig = policy._signature(0xDEAD)
        policy._shct[sig] = 0
        cache.access(123, pc=0xDEAD)
        assert cache.contains(123)

    def test_state_accounting_includes_predictor(self):
        policy = BypassDGIPPRPolicy(64, 16)
        plain = DGIPPRPolicy(64, 16)
        assert policy.state_bits_per_set() > plain.state_bits_per_set()
        assert policy.global_state_bits() > plain.global_state_bits()

    def test_registry_name(self):
        from repro.policies import make_policy

        policy = make_policy("bypass-dgippr", 16, 16)
        assert policy.name == "bypass-4-dgippr"
