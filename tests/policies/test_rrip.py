"""Tests for SRRIP/BRRIP/DRRIP (Jaleel et al. semantics)."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import (
    BRRIPPolicy,
    DRRIPPolicy,
    SRRIPPolicy,
    TrueLRUPolicy,
)
from repro.policies.base import AccessContext
from repro.policies.rrip import BRRIP_LONG_INTERVAL


def run(policy, addresses, num_sets=1, assoc=4):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for a in addresses:
        cache.access(a)
    return cache


class TestSRRIP:
    def test_insert_rrpv_is_long(self):
        policy = SRRIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        cache.access(0)
        way = cache._way_of[0][0]
        assert policy.rrpv_of(0, way) == 2  # max(3) - 1

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        cache.access(0)
        cache.access(0)
        way = cache._way_of[0][0]
        assert policy.rrpv_of(0, way) == 0

    def test_victim_prefers_distant(self):
        policy = SRRIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        for a in range(4):
            cache.access(a)
        cache.access(0)  # 0 now has RRPV 0, others RRPV 2
        cache.access(4)  # aging makes 1,2,3 distant; victim among them
        assert cache.contains(0)

    def test_aging_terminates(self):
        policy = SRRIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        ctx = AccessContext()
        for a in range(4):
            cache.access(a)
            cache.access(a)  # all RRPVs 0
        victim = policy.victim(0, ctx)
        assert 0 <= victim < 4
        # Aging mutated the set: at least one block now has max RRPV.
        assert any(policy.rrpv_of(0, w) == 3 for w in range(4))

    def test_scan_resistance_vs_lru(self):
        """A one-shot scan should not flush SRRIP's hot set like LRU's."""
        rng = random.Random(2)
        hot = list(range(12))
        trace = []
        for burst in range(300):
            trace.extend(rng.choice(hot) for _ in range(40))
            trace.extend(range(1000 + burst * 8, 1008 + burst * 8))
        srrip = run(SRRIPPolicy(1, 16), trace, assoc=16)
        lru = run(TrueLRUPolicy(1, 16), trace, assoc=16)
        assert srrip.stats.hits > lru.stats.hits


class TestFrequencyPriority:
    def test_fp_steps_one_class_per_hit(self):
        policy = SRRIPPolicy(1, 4, hit_priority=False)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        cache.access(0)  # insert at 2
        way = cache._way_of[0][0]
        cache.access(0)
        assert policy.rrpv_of(0, way) == 1
        cache.access(0)
        assert policy.rrpv_of(0, way) == 0
        cache.access(0)
        assert policy.rrpv_of(0, way) == 0  # floors at 0

    def test_fp_resists_single_touch_pollution(self):
        """FP protects frequently-hit blocks better when single-reuse
        blocks would earn full protection under HP."""
        rng = random.Random(6)
        hot = list(range(8))
        trace = []
        addr = 1000
        for _ in range(1500):
            trace.extend(rng.choice(hot) for _ in range(6))
            # Polluters touched exactly twice: HP promotes them to 0.
            trace.extend([addr, addr])
            addr += 1
        fp = run(SRRIPPolicy(1, 16, hit_priority=False), trace, assoc=16)
        hp = run(SRRIPPolicy(1, 16, hit_priority=True), trace, assoc=16)
        assert fp.stats.hits >= hp.stats.hits


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        policy = BRRIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        distant = 0
        for a in range(BRRIP_LONG_INTERVAL):
            cache.access(1000 + a)
            way = cache._way_of[0].get(1000 + a)
            if way is not None and policy.rrpv_of(0, way) == 3:
                distant += 1
        assert distant == BRRIP_LONG_INTERVAL - 1  # one long insertion per 32

    def test_thrash_resistance(self):
        loop = list(range(6)) * 400  # 6 blocks in a 4-way set
        brrip = run(BRRIPPolicy(1, 4), loop)
        lru = run(TrueLRUPolicy(1, 4), loop)
        assert lru.stats.hits == 0
        assert brrip.stats.hits > len(loop) // 3


class TestDRRIP:
    def test_duels_toward_brrip_on_thrash(self):
        policy = DRRIPPolicy(64, 16)
        loop = [(i * 3) % 1400 for i in range(50_000)]
        run(policy, loop, num_sets=64, assoc=16)
        assert policy.selector.selected() == 1  # BRRIP

    def test_duels_toward_srrip_on_friendly(self):
        """LRU-friendly reuse band (stack distances below capacity): BRRIP's
        distant insertion evicts blocks before their reuse, so the duel must
        pick SRRIP."""
        from repro.trace import stack_distance

        trace = stack_distance(
            list(range(200, 700, 50)), [1.0] * 10, 30_000,
            cold_fraction=0.3, seed=5,
        ).address_list()
        policy = DRRIPPolicy(64, 16)
        run(policy, trace, num_sets=64, assoc=16)
        assert policy.selector.selected() == 0  # SRRIP

    def test_beats_lru_on_thrash(self):
        loop = [(i * 3) % 1400 for i in range(50_000)]
        drrip = run(DRRIPPolicy(64, 16), loop, num_sets=64, assoc=16)
        lru = run(TrueLRUPolicy(64, 16), loop, num_sets=64, assoc=16)
        assert drrip.stats.misses < lru.stats.misses

    def test_state_bits_match_paper(self):
        # 2 bits per block -> 32 bits per 16-way set (twice DGIPPR's 15).
        policy = DRRIPPolicy(4096, 16)
        assert policy.state_bits_per_set() == 32
        assert policy.global_state_bits() == 10
