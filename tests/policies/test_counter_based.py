"""Tests for counter-based (AIP-style) replacement."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import CounterBasedPolicy, TreePLRUPolicy


def run(policy, accesses, num_sets=16, assoc=16):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for addr, pc in accesses:
        cache.access(addr, pc=pc)
    return cache


class TestCounterBased:
    def test_threshold_learned_from_lifetimes(self):
        """Blocks with short access intervals teach a small threshold."""
        policy = CounterBasedPolicy(4, 4)
        cache = SetAssociativeCache(4, 4, policy, block_size=1)
        # Block 0 re-touched every other access, then evicted repeatedly.
        for i in range(2000):
            cache.access(0, pc=9)
            cache.access(4 + 4 * (i % 10), pc=9)
        sig = policy._signature(9)
        assert policy._threshold[sig] < policy.counter_max

    def test_expired_blocks_preferred_victims(self):
        rng = random.Random(1)
        hot = list(range(100))
        accesses = []
        scan = 10_000
        for _ in range(2500):
            accesses.extend((rng.choice(hot), 3) for _ in range(6))
            for _ in range(4):
                accesses.append((scan, 0xD0A))
                scan += 1
        counter = run(CounterBasedPolicy(16, 16), accesses)
        plru = run(TreePLRUPolicy(16, 16), accesses)
        assert counter.stats.hits >= plru.stats.hits

    def test_contract_under_random_traffic(self):
        policy = CounterBasedPolicy(8, 8)
        cache = SetAssociativeCache(8, 8, policy, block_size=1)
        rng = random.Random(5)
        for _ in range(6000):
            cache.access(rng.randrange(400), pc=rng.randrange(64))
        assert cache.stats.hits + cache.stats.misses == 6000

    def test_counters_saturate(self):
        policy = CounterBasedPolicy(1, 4, counter_bits=3)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        for a in range(4):
            cache.access(a, pc=1)
        for i in range(100):
            cache.access(i % 4, pc=1)
        for way in range(4):
            assert policy._count[0][way] <= policy.counter_max

    def test_state_cost_reported(self):
        policy = CounterBasedPolicy(4096, 16)
        assert policy.state_bits_per_set() > 16  # well above DGIPPR's 15
        assert policy.global_state_bits() > 0
