"""Tests for true-LRU, IPV-LRU (GIPLR) and the simple baselines."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.vectors import GIPLR_VECTOR
from repro.policies import (
    FIFOPolicy,
    GIPLRPolicy,
    IPVLRUPolicy,
    RandomPolicy,
    TrueLRUPolicy,
)


def run(policy, addresses, num_sets=1, assoc=4):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    return [cache.access(a) for a in addresses], cache


class TestTrueLRU:
    def test_classic_eviction(self):
        hits, cache = run(TrueLRUPolicy(1, 4), [0, 1, 2, 3, 0, 4, 1])
        # 4 evicts LRU block 1 (0 was refreshed), so the final 1 misses.
        assert hits == [False] * 4 + [True, False, False]

    def test_stack_property_subset(self):
        """LRU's inclusion property: a bigger LRU cache hits a superset."""
        rng = random.Random(5)
        trace = [rng.randrange(64) for _ in range(2000)]
        small_hits, _ = run(TrueLRUPolicy(1, 8), trace, assoc=8)
        big_hits, _ = run(TrueLRUPolicy(1, 16), trace, assoc=16)
        for small, big in zip(small_hits, big_hits):
            if small:
                assert big

    def test_state_bits_match_paper(self):
        # Section 2.1.2: 4 bits per block, 64 bits per 16-way set.
        assert TrueLRUPolicy(4096, 16).state_bits_per_set() == 64


class TestIPVLRU:
    def test_lru_vector_is_classic_lru(self):
        rng = random.Random(6)
        trace = [rng.randrange(40) for _ in range(3000)]
        hits_a, _ = run(TrueLRUPolicy(2, 8), trace, num_sets=2, assoc=8)
        hits_b, _ = run(
            IPVLRUPolicy(2, 8, lru_ipv(8)), trace, num_sets=2, assoc=8
        )
        assert hits_a == hits_b

    def test_lip_vector_resists_streaming(self):
        """LIP keeps a resident working set under a thrashing loop."""
        loop = list(range(5)) * 200  # 5 blocks, 4-way set
        lru_hits, _ = run(TrueLRUPolicy(1, 4), loop)
        lip_hits, _ = run(IPVLRUPolicy(1, 4, lip_ipv(4)), loop)
        assert sum(lru_hits) == 0  # classic LRU thrashes to zero
        assert sum(lip_hits) > len(loop) // 2

    def test_position_of_introspection(self):
        policy = IPVLRUPolicy(1, 4, lru_ipv(4))
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        cache.access(0)
        cache.access(1)
        assert policy.position_of(0, cache._way_of[0][1]) == 0
        assert policy.position_of(0, cache._way_of[0][0]) == 1

    def test_rejects_mismatched_ipv(self):
        with pytest.raises(ValueError):
            IPVLRUPolicy(4, 8, lru_ipv(16))

    def test_giplr_defaults_to_paper_vector(self):
        policy = GIPLRPolicy(4, 16)
        assert policy.ipv == GIPLR_VECTOR

    def test_mid_stack_insertion_depth(self):
        """Insertion at V[k]=2 places incoming blocks at position 2."""
        policy = IPVLRUPolicy(1, 4, IPV([0, 0, 0, 0, 2]))
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        for a in range(4):
            cache.access(a)
        cache.access(4)
        way = cache._way_of[0][4]
        assert policy.position_of(0, way) == 2


class TestRandomAndFIFO:
    def test_random_deterministic_per_seed(self):
        rng = random.Random(7)
        trace = [rng.randrange(30) for _ in range(1000)]
        hits_a, _ = run(RandomPolicy(1, 4, seed=1), trace)
        hits_b, _ = run(RandomPolicy(1, 4, seed=1), trace)
        assert hits_a == hits_b

    def test_random_seeds_differ(self):
        rng = random.Random(8)
        trace = [rng.randrange(30) for _ in range(1000)]
        hits_a, _ = run(RandomPolicy(1, 4, seed=1), trace)
        hits_b, _ = run(RandomPolicy(1, 4, seed=2), trace)
        assert hits_a != hits_b

    def test_fifo_ignores_hits(self):
        # FIFO evicts the oldest fill even if it was just re-referenced.
        hits, cache = run(FIFOPolicy(1, 2), [0, 1, 0, 2, 0], assoc=2)
        # 2 evicts 0 (oldest fill) despite 0 being hit more recently.
        assert hits == [False, False, True, False, False]

    def test_fifo_cycles_ways(self):
        _, cache = run(FIFOPolicy(1, 2), [0, 1, 2, 3, 4], assoc=2)
        assert cache.stats.evictions == 3

    def test_random_zero_state(self):
        assert RandomPolicy(16, 4).state_bits_per_set() == 0.0
