"""Tests for sampling dead block prediction."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import SDBPPolicy, TreePLRUPolicy
from repro.policies.sdbp import _SkewedPredictor


class TestSkewedPredictor:
    def test_initially_predicts_live(self):
        predictor = _SkewedPredictor()
        assert not predictor.predict_dead(0x1234)

    def test_training_toward_dead(self):
        predictor = _SkewedPredictor(threshold=6)
        for _ in range(10):
            predictor.train(0x1234, dead=True)
        assert predictor.predict_dead(0x1234)

    def test_training_back_to_live(self):
        predictor = _SkewedPredictor(threshold=6)
        for _ in range(10):
            predictor.train(0x1234, dead=True)
        for _ in range(10):
            predictor.train(0x1234, dead=False)
        assert not predictor.predict_dead(0x1234)

    def test_distinct_pcs_mostly_independent(self):
        predictor = _SkewedPredictor(threshold=6)
        for _ in range(10):
            predictor.train(0xAAAA, dead=True)
        assert not predictor.predict_dead(0x5555)


def scan_plus_hot(n, seed=0):
    rng = random.Random(seed)
    hot = list(range(150))
    accesses = []
    scan = 50_000
    while len(accesses) < n:
        accesses.extend((rng.choice(hot), 11) for _ in range(6))
        for _ in range(4):
            accesses.append((scan, 0xDEAD))
            scan += 1
    return accesses[:n]


class TestSDBPPolicy:
    def test_learns_dead_pc_via_sampler(self):
        policy = SDBPPolicy(16, 16, sampler_stride=2)
        cache = SetAssociativeCache(16, 16, policy, block_size=1)
        for addr, pc in scan_plus_hot(40_000):
            cache.access(addr, pc=pc)
        assert policy.predictor.predict_dead(0xDEAD)
        assert not policy.predictor.predict_dead(11)

    def test_beats_plain_plru_on_scans(self):
        accesses = scan_plus_hot(60_000, seed=2)
        sdbp = SDBPPolicy(16, 16, sampler_stride=2)
        a = SetAssociativeCache(16, 16, sdbp, block_size=1)
        b = SetAssociativeCache(16, 16, TreePLRUPolicy(16, 16), block_size=1)
        for addr, pc in accesses:
            a.access(addr, pc=pc)
            b.access(addr, pc=pc)
        assert a.stats.hits > b.stats.hits

    def test_victim_prefers_predicted_dead(self):
        policy = SDBPPolicy(4, 4, sampler_stride=1)
        cache = SetAssociativeCache(4, 4, policy, block_size=1)
        # Train 0xDEAD dead through the sampler.
        for i in range(5000):
            cache.access(10_000 + i, pc=0xDEAD)
        # Refill a set: three live blocks, one dead.
        for addr in (0, 4, 8):
            cache.access(addr, pc=3)
            cache.access(addr, pc=3)
        cache.access(12, pc=0xDEAD)
        ctx = cache._ctx
        victim = policy.victim(0, ctx)
        assert cache._tags[0][victim] == cache.locate(12)[1]

    def test_state_cost_far_above_dgippr(self):
        """Section 6.3: dead-block replacement 'is costly in terms of
        state' — the comparison the paper uses to motivate DGIPPR."""
        from repro.policies import DGIPPRPolicy

        sdbp = SDBPPolicy(4096, 16)
        dgippr = DGIPPRPolicy(4096, 16)
        assert sdbp.total_state_bits() > 1.5 * dgippr.total_state_bits()

    def test_contract_under_random_traffic(self):
        policy = SDBPPolicy(8, 8)
        cache = SetAssociativeCache(8, 8, policy, block_size=1)
        rng = random.Random(9)
        for _ in range(5000):
            cache.access(rng.randrange(300), pc=rng.randrange(32))
        stats = cache.stats
        assert stats.hits + stats.misses == 5000
