"""Tests for the Protecting Distance Policy."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import PDPPolicy, TrueLRUPolicy
from repro.policies.base import AccessContext
from repro.policies.pdp import compute_protecting_distance


class TestProtectingDistanceComputation:
    def test_empty_histogram_returns_default(self):
        assert compute_protecting_distance([0] * 50, default_pd=17) == 17

    def test_single_spike(self):
        """All reuses at distance 10: protecting through 10 is optimal."""
        histogram = [0] * 64
        histogram[10] = 1000
        assert compute_protecting_distance(histogram, default_pd=17) == 10

    def test_ignores_unreachable_tail(self):
        """Reuses at 5 plus a tail at 60: the tail costs more occupancy
        than it earns, so the PD should stay at the spike."""
        histogram = [0] * 64
        histogram[5] = 1000
        histogram[60] = 40
        assert compute_protecting_distance(histogram, default_pd=17) == 5

    def test_covers_big_second_mode(self):
        """A second mode with substantial mass extends the PD."""
        histogram = [0] * 64
        histogram[5] = 500
        histogram[20] = 800
        assert compute_protecting_distance(histogram, default_pd=17) == 20

    def test_monotone_cost_of_protection(self):
        """With uniform reuses everywhere, some interior PD is chosen."""
        histogram = [10] * 32
        pd = compute_protecting_distance(histogram, default_pd=17)
        assert 1 <= pd <= 31


class TestPDPPolicy:
    def test_protected_line_survives_scan(self):
        """A hot block with short reuse distance survives one-shot scans."""
        policy = PDPPolicy(1, 4, recompute_interval=64)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        rng = random.Random(5)
        hits_hot = 0
        touches_hot = 0
        scan = 100
        for i in range(6000):
            if i % 3 == 0:
                touches_hot += 1
                if cache.access(0):
                    hits_hot += 1
            else:
                cache.access(scan)
                scan += 1
        assert hits_hot / touches_hot > 0.8

    def test_beats_lru_on_thrash_loop(self):
        policy = PDPPolicy(64, 16, recompute_interval=512)
        cache = SetAssociativeCache(64, 16, policy, block_size=1)
        lru_cache = SetAssociativeCache(
            64, 16, TrueLRUPolicy(64, 16), block_size=1
        )
        for i in range(60_000):
            addr = (i * 3) % 1408  # loop of 1408 blocks > 1024 capacity
            cache.access(addr)
            lru_cache.access(addr)
        assert cache.stats.misses < lru_cache.stats.misses

    def test_pd_recomputed(self):
        policy = PDPPolicy(4, 4, recompute_interval=128, sampled_set_stride=1)
        cache = SetAssociativeCache(4, 4, policy, block_size=1)
        rng = random.Random(7)
        for _ in range(5000):
            cache.access(rng.randrange(30))
        assert policy.recompute_count > 0

    def test_pd_tracks_reuse_distance(self):
        """A strict 8-block loop per set yields reuse distance 8; the PD
        should settle at or just above it."""
        policy = PDPPolicy(1, 16, recompute_interval=256, sampled_set_stride=1)
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        for i in range(8000):
            cache.access(i % 8)
        assert 7 <= policy.pd <= 12

    def test_victim_prefers_unprotected(self):
        policy = PDPPolicy(1, 4, default_pd=8)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        for a in range(4):
            cache.access(a)
        # Touch 0 repeatedly so it stays protected; let others decay.
        for _ in range(40):
            cache.access(0)
        ctx = AccessContext()
        victim = policy.victim(0, ctx)
        assert cache._tags[0][victim] != 0

    def test_state_accounting(self):
        policy = PDPPolicy(4096, 16)
        assert policy.state_bits_per_set() == 64  # 4 bits x 16 blocks
        assert policy.global_state_bits() > 0
