"""Tests for SHiP-PC."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import SHiPPolicy, SRRIPPolicy


def run(policy, accesses, num_sets=1, assoc=16):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for addr, pc in accesses:
        cache.access(addr, pc=pc)
    return cache


class TestSHiP:
    def test_learns_dead_signature(self):
        """Blocks from a never-reused PC end up inserted distant."""
        policy = SHiPPolicy(1, 16)
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        dead_pc = 0xDEAD
        for i in range(600):
            cache.access(10_000 + i, pc=dead_pc)
        sig = policy._signature(dead_pc)
        assert policy._shct[sig] == 0
        cache.access(99_999, pc=dead_pc)
        way = cache._way_of[0][99_999]
        assert policy.rrpv_of(0, way) == policy.max_rrpv

    def test_learns_live_signature(self):
        policy = SHiPPolicy(1, 16)
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        live_pc = 0xBEEF
        for _ in range(100):
            for a in range(8):
                cache.access(a, pc=live_pc)
        sig = policy._signature(live_pc)
        assert policy._shct[sig] > 0

    def test_protects_hot_set_from_dead_scans(self):
        """SHiP should beat plain SRRIP when scans come from one dead PC."""
        rng = random.Random(11)
        hot = list(range(10))
        accesses = []
        scan_addr = 10_000
        for _ in range(400):
            accesses.extend((rng.choice(hot), 7) for _ in range(30))
            for _ in range(12):
                accesses.append((scan_addr, 0xDEAD))
                scan_addr += 1
        ship = run(SHiPPolicy(1, 16), accesses)
        srrip = run(SRRIPPolicy(1, 16), accesses)
        assert ship.stats.hits >= srrip.stats.hits

    def test_outcome_bit_reset_on_fill(self):
        policy = SHiPPolicy(1, 16)
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        cache.access(1, pc=3)
        way = cache._way_of[0][1]
        assert policy._outcome[0][way] is False
        cache.access(1, pc=3)
        assert policy._outcome[0][way] is True

    def test_state_accounting_larger_than_drrip(self):
        """SHiP costs signature+outcome per block plus the SHCT (Section
        6.3 notes it uses 5 extra bits per block over the baseline)."""
        policy = SHiPPolicy(4096, 16)
        assert policy.state_bits_per_set() > 32
        assert policy.global_state_bits() == 2 * (1 << 14)
