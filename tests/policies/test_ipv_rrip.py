"""Tests for the IPV-on-RRIP extension (paper future work, item 5)."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.policies import (
    DRRIPPolicy,
    DynamicIPVRRIPPolicy,
    IPVRRIPPolicy,
    SRRIPPolicy,
    TrueLRUPolicy,
    rrv_distant,
    rrv_srrip,
)


def run(policy, addresses, num_sets=64, assoc=16):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for a in addresses:
        cache.access(a)
    return cache


class TestRRVConstruction:
    def test_srrip_rrv(self):
        assert rrv_srrip(2) == (0, 0, 0, 0, 2)

    def test_distant_rrv(self):
        assert rrv_distant(2) == (0, 0, 0, 0, 3)

    def test_validation_length(self):
        with pytest.raises(ValueError):
            IPVRRIPPolicy(4, 4, rrv=[0, 0, 2])

    def test_validation_range(self):
        with pytest.raises(ValueError):
            IPVRRIPPolicy(4, 4, rrv=[0, 0, 0, 0, 4])


class TestStaticIPVRRIP:
    def test_srrip_rrv_matches_srrip_exactly(self):
        rng = random.Random(1)
        trace = [rng.randrange(1500) for _ in range(30_000)]
        a = run(IPVRRIPPolicy(64, 16, rrv=rrv_srrip()), trace)
        b = run(SRRIPPolicy(64, 16), trace)
        assert a.stats.misses == b.stats.misses

    def test_partial_promotion_rrv(self):
        """A vector that promotes hits only one class (R[v] = v-1-ish)."""
        policy = IPVRRIPPolicy(1, 4, rrv=[0, 0, 1, 2, 2])
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        cache.access(0)  # insert at RRPV 2
        cache.access(0)  # hit: 2 -> 1
        way = cache._way_of[0][0]
        assert policy.rrpv_of(0, way) == 1
        cache.access(0)  # hit: 1 -> 0
        assert policy.rrpv_of(0, way) == 0

    def test_distant_insertion_resists_thrash(self):
        loop = [i % 1400 for i in range(50_000)]
        distant = run(IPVRRIPPolicy(64, 16, rrv=rrv_distant()), loop)
        lru = run(TrueLRUPolicy(64, 16), loop)
        assert distant.stats.misses < lru.stats.misses


class TestDynamicIPVRRIP:
    def test_defaults_to_two_vectors(self):
        policy = DynamicIPVRRIPPolicy(64, 16)
        assert policy.name == "2-dipv-rrip"
        assert policy.global_state_bits() == 11

    def test_adapts_to_thrash(self):
        policy = DynamicIPVRRIPPolicy(64, 16)
        loop = [i % 1400 for i in range(50_000)]
        run(policy, loop)
        assert policy.active_rrv() == rrv_distant()

    def test_comparable_to_drrip(self):
        """The default duel tracks DRRIP within a few percent of misses."""
        rng = random.Random(5)
        for make_trace in (
            lambda: [i % 1400 for i in range(40_000)],
            lambda: [rng.randrange(900) for _ in range(40_000)],
        ):
            trace = make_trace()
            ours = run(DynamicIPVRRIPPolicy(64, 16), trace)
            drrip = run(DRRIPPolicy(64, 16), trace)
            assert ours.stats.misses <= drrip.stats.misses * 1.10

    def test_four_vector_duel(self):
        rrvs = [
            rrv_srrip(),
            rrv_distant(),
            (0, 0, 1, 2, 2),  # slow promotion, long insertion
            (1, 1, 1, 3, 3),  # pessimistic promotion, distant insertion
        ]
        policy = DynamicIPVRRIPPolicy(64, 16, rrvs=rrvs)
        assert policy.name == "4-dipv-rrip"
        loop = [i % 1400 for i in range(30_000)]
        cache = run(policy, loop)
        assert cache.stats.misses < 30_000  # retains part of the loop
