"""Tests for LIP/BIP/DIP (Qureshi et al. semantics)."""

import random

from repro.cache import SetAssociativeCache
from repro.policies import BIPPolicy, DIPPolicy, LIPPolicy, TrueLRUPolicy
from repro.policies.dip import BIP_MRU_INTERVAL


def run(policy, addresses, num_sets=1, assoc=4):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for a in addresses:
        cache.access(a)
    return cache


class TestLIP:
    def test_retains_loop_larger_than_cache(self):
        loop = list(range(5)) * 400
        lip = run(LIPPolicy(1, 4), loop)
        lru = run(TrueLRUPolicy(1, 4), loop)
        assert lru.stats.hits == 0
        assert lip.stats.hits > len(loop) // 2

    def test_hurts_recency_friendly_pattern(self):
        """LIP loses to LRU when blocks are reused a few fills later.

        Each group touches three fresh blocks then re-touches them: under
        LRU every re-touch hits (stack distance 2), but under LIP each new
        fill lands on — and evicts — the previous one.
        """
        trace = []
        for group in range(500):
            fresh = [1000 + 3 * group + j for j in range(3)]
            trace.extend(fresh)
            trace.extend(fresh)
        lru = run(TrueLRUPolicy(1, 4), trace)
        lip = run(LIPPolicy(1, 4), trace)
        assert lru.stats.hits > lip.stats.hits * 2


class TestBIP:
    def test_occasional_mru_insertion(self):
        policy = BIPPolicy(1, 4)
        cache = SetAssociativeCache(1, 4, policy, block_size=1)
        mru_fills = 0
        total = 4 * BIP_MRU_INTERVAL
        for a in range(total):
            cache.access(a)
            way = cache._way_of[0][a]
            if policy._stacks[0].position_of(way) == 0:
                mru_fills += 1
        assert mru_fills == total // BIP_MRU_INTERVAL

    def test_thrash_resistance(self):
        loop = list(range(6)) * 400
        bip = run(BIPPolicy(1, 4), loop)
        lru = run(TrueLRUPolicy(1, 4), loop)
        assert bip.stats.hits > lru.stats.hits


class TestDIP:
    def test_picks_bip_on_thrash(self):
        policy = DIPPolicy(64, 16)
        loop = [(i * 5) % 1408 for i in range(50_000)]
        run(policy, loop, num_sets=64, assoc=16)
        assert policy.selector.selected() == 1  # BIP

    def test_picks_lru_on_friendly(self):
        policy = DIPPolicy(64, 16)
        rng = random.Random(3)
        trace = [rng.randrange(800) for _ in range(50_000)]
        run(policy, trace, num_sets=64, assoc=16)
        assert policy.selector.selected() == 0  # classic LRU insertion

    def test_never_much_worse_than_lru(self):
        """DIP's core guarantee: close to the better of LRU and BIP."""
        rng = random.Random(4)
        for trial in range(3):
            trace = [rng.randrange(900) for _ in range(30_000)]
            dip = run(DIPPolicy(64, 16), trace, num_sets=64, assoc=16)
            lru = run(TrueLRUPolicy(64, 16), trace, num_sets=64, assoc=16)
            assert dip.stats.misses <= lru.stats.misses * 1.08
