"""Tests for tree-PLRU, GIPPR and DGIPPR — the paper's contribution."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV, lru_ipv
from repro.core.vectors import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPPR_WI_VECTOR,
)
from repro.policies import (
    DGIPPRPolicy,
    GIPPRPolicy,
    TreePLRUPolicy,
    TrueLRUPolicy,
)


def run(policy, addresses, num_sets, assoc):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for a in addresses:
        cache.access(a)
    return cache


class TestTreePLRU:
    def test_never_evicts_most_recent(self):
        policy = TreePLRUPolicy(1, 8)
        cache = SetAssociativeCache(1, 8, policy, block_size=1)
        rng = random.Random(3)
        resident = list(range(8))
        for a in resident:
            cache.access(a)
        last = resident[-1]
        for i in range(500):
            addr = rng.choice(resident) if rng.random() < 0.7 else 100 + i
            before = set(cache.resident_tags(0))
            cache.access(addr)
            after = set(cache.resident_tags(0))
            evicted = before - after
            if evicted:
                assert last not in evicted  # PLRU never evicts the MRU block
            last = addr
            resident = list(after)

    def test_miss_rate_close_to_lru(self):
        """Section 3.1: PLRU performs almost equivalently to full LRU."""
        rng = random.Random(9)
        trace = [rng.randrange(3000) for _ in range(40_000)]
        lru = run(TrueLRUPolicy(16, 16), trace, 16, 16)
        plru = run(TreePLRUPolicy(16, 16), trace, 16, 16)
        lru_rate = lru.stats.miss_rate
        plru_rate = plru.stats.miss_rate
        assert abs(lru_rate - plru_rate) < 0.03

    def test_state_bits_match_paper(self):
        # Section 3.1: 15 bits per 16-way set, a 77% saving over LRU's 64.
        assert TreePLRUPolicy(4096, 16).state_bits_per_set() == 15


class TestGIPPR:
    def test_defaults_to_paper_wi_vector(self):
        assert GIPPRPolicy(4, 16).ipv == GIPPR_WI_VECTOR

    def test_lru_vector_behaves_like_plru(self):
        """GIPPR with V=[0]*17 is exactly classic tree PLRU."""
        rng = random.Random(11)
        trace = [rng.randrange(500) for _ in range(20_000)]
        a = run(GIPPRPolicy(4, 16, ipv=lru_ipv(16)), trace, 4, 16)
        b = run(TreePLRUPolicy(4, 16), trace, 4, 16)
        assert a.stats.misses == b.stats.misses

    def test_plru_insertion_vector_resists_thrash(self):
        """Inserting at the PLRU position retains a thrashing loop."""
        loop = list(range(20)) * 300  # 20 blocks in a 16-way set
        thrash_resistant = IPV([0] * 16 + [15])
        a = run(GIPPRPolicy(1, 16, ipv=thrash_resistant), loop, 1, 16)
        b = run(TreePLRUPolicy(1, 16), loop, 1, 16)
        assert a.stats.hits > b.stats.hits * 2

    def test_insertion_position_respected(self):
        policy = GIPPRPolicy(1, 16, ipv=IPV([0] * 16 + [13]))
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        cache.access(0)
        way = cache._way_of[0][0]
        assert policy.position_of(0, way) == 13

    def test_promotion_position_respected(self):
        # Hit at position 13 promotes to V[13]=2.
        entries = [0] * 16
        entries[13] = 2
        policy = GIPPRPolicy(1, 16, ipv=IPV(entries + [13]))
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        cache.access(0)
        cache.access(0)
        way = cache._way_of[0][0]
        assert policy.position_of(0, way) == 2

    def test_rejects_mismatched_ipv(self):
        with pytest.raises(ValueError):
            GIPPRPolicy(4, 8, ipv=lru_ipv(16))

    def test_victim_is_position_fifteen(self):
        policy = GIPPRPolicy(1, 16)
        cache = SetAssociativeCache(1, 16, policy, block_size=1)
        rng = random.Random(13)
        for _ in range(200):
            cache.access(rng.randrange(40))
        ctx = cache._ctx
        victim = policy.victim(0, ctx)
        assert policy.position_of(0, victim) == 15


class TestDGIPPR:
    def test_default_vectors_are_wi4(self):
        policy = DGIPPRPolicy(256, 16)
        assert policy.ipvs == DGIPPR4_WI_VECTORS
        assert policy.name == "4-dgippr"

    def test_two_vector_name_and_counters(self):
        policy = DGIPPRPolicy(256, 16, ipvs=DGIPPR2_WI_VECTORS)
        assert policy.name == "2-dgippr"
        assert policy.global_state_bits() == 11

    def test_four_vector_counter_bits(self):
        # Section 3.6: three 11-bit counters, 33 bits per cache.
        assert DGIPPRPolicy(256, 16).global_state_bits() == 33

    def test_adapts_to_thrash(self):
        """On a thrashing loop the duel must pick a PLRU-insertion vector
        and beat classic PLRU clearly."""
        mru_insert = IPV([0] * 17, name="pmru")
        plru_insert = IPV([0] * 16 + [15], name="plru-ins")
        policy = DGIPPRPolicy(64, 16, ipvs=[mru_insert, plru_insert])
        loop = [(i * 17) % 1400 for i in range(60_000)]  # > 1024-block cache
        cache = SetAssociativeCache(64, 16, policy, block_size=1)
        for a in loop:
            cache.access(a)
        assert policy.active_ipv().name == "plru-ins"
        baseline = run(TreePLRUPolicy(64, 16), loop, 64, 16)
        assert cache.stats.hits > baseline.stats.hits

    def test_adapts_to_friendly(self):
        """On a recency-friendly stream the duel must pick MRU insertion."""
        mru_insert = IPV([0] * 17, name="pmru")
        plru_insert = IPV([0] * 16 + [15], name="plru-ins")
        policy = DGIPPRPolicy(64, 16, ipvs=[mru_insert, plru_insert])
        rng = random.Random(17)
        cache = SetAssociativeCache(64, 16, policy, block_size=1)
        hot = list(range(600))
        for i in range(60_000):
            # Zipf-ish hot set within capacity plus occasional cold blocks
            # whose single reuse happens quickly.
            if rng.random() < 0.9:
                cache.access(rng.choice(hot))
            else:
                addr = 10_000 + i
                cache.access(addr)
                cache.access(addr)
        assert policy.active_ipv().name == "pmru"

    def test_shared_plru_bits_across_vectors(self):
        """Only one plru-bit array exists no matter how many vectors duel."""
        policy = DGIPPRPolicy(64, 16)
        assert policy.state_bits_per_set() == 15
        assert len(policy._state) == 64

    def test_rejects_mismatched_vector(self):
        with pytest.raises(ValueError):
            DGIPPRPolicy(64, 8, ipvs=DGIPPR4_WI_VECTORS)

    def test_leader_sets_keep_their_vector(self):
        policy = DGIPPRPolicy(256, 16)
        selector = policy.selector
        for s in range(256):
            leader = selector.leader_policy(s)
            if leader >= 0:
                assert selector.policy_for_set(s) == leader
