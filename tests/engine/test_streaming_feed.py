"""Streaming ``feed`` conformance: chunked == one cold ``run``.

The serving front-end pushes bounded batches through persistent-state
simulators.  These cells pin the contract that chunking is invisible:
any partition of a trace fed through ``BatchSimulator.feed`` or
``ScalarStreamSimulator.feed`` produces measured miss counts (and final
recency state) bit-identical to a single cold pass over the whole trace.
"""

import random

import pytest

from repro.core.ipv import lip_ipv, lru_ipv
from repro.core.vectors import GIPPR_WI_VECTOR
from repro.engine import ScalarStreamSimulator
from repro.engine.columnar import columnar_supported
from repro.ga.fitness import simulate_misses_plru_ipv
from repro.kernels import tables as ktables

NUM_SETS = 16
ASSOC = 4
IPVS = {
    "lru": tuple(lru_ipv(ASSOC).entries),
    "lip": tuple(lip_ipv(ASSOC).entries),
    "skew": (1, 0, 1, 2, 2),
}

needs_columnar = pytest.mark.skipif(
    not columnar_supported(ASSOC), reason="columnar engine unavailable"
)


def make_stream(n, num_sets=NUM_SETS, assoc=ASSOC, seed=7):
    rng = random.Random(seed)
    footprint = 3 * num_sets * assoc
    return [rng.randrange(footprint) for _ in range(n)]


def _partitions(n):
    """A few representative chunkings of [0, n): uneven, tiny, one-shot."""
    return [
        [n],
        [1, n - 1],
        [n // 3, n // 3, n - 2 * (n // 3)],
        [17] * (n // 17) + ([n % 17] if n % 17 else []),
    ]


@pytest.mark.parametrize("name", sorted(IPVS))
@pytest.mark.parametrize("warmup", [0, 1000])
def test_scalar_feed_matches_one_shot(name, warmup):
    trace = make_stream(4000)
    entries = IPVS[name]
    expected = simulate_misses_plru_ipv(
        trace, NUM_SETS, ASSOC, entries, warmup, kernel="walk"
    )
    for parts in _partitions(len(trace)):
        sim = ScalarStreamSimulator(NUM_SETS, ASSOC, entries, warmup)
        total = 0
        base = 0
        for size in parts:
            total += sim.feed(trace[base:base + size])
            base += size
        assert total == expected
        assert sim.measured_misses == expected
        assert sim.accesses == len(trace)
        assert sim.hits + sim.misses == sim.accesses
        assert sim.cold_fills <= min(sim.misses, NUM_SETS * ASSOC)


def test_scalar_walk_and_lut_paths_agree():
    trace = make_stream(3000, seed=11)
    entries = IPVS["skew"]
    lut = ScalarStreamSimulator(NUM_SETS, ASSOC, entries, warmup=100)
    assert lut._lut is not None
    walk = ScalarStreamSimulator(NUM_SETS, ASSOC, entries, warmup=100)
    walk._lut = None  # force the Figure 5/7/9 bit-walk path
    for base in range(0, len(trace), 333):
        chunk = trace[base:base + 333]
        assert lut.feed(chunk) == walk.feed(chunk)
    assert lut.totals() == walk.totals()


def test_scalar_feed_k16_walk_fallback_without_numpy(monkeypatch):
    # k=16 tables need numpy; with numpy masked the walk path must serve.
    monkeypatch.setattr(ktables, "_np", None)
    trace = make_stream(1500, num_sets=64, assoc=16, seed=3)
    entries = tuple(GIPPR_WI_VECTOR.entries)
    sim = ScalarStreamSimulator(64, 16, entries, warmup=0)
    assert sim._lut is None
    total = sum(
        sim.feed(trace[base:base + 500])
        for base in range(0, len(trace), 500)
    )
    expected = simulate_misses_plru_ipv(
        trace, 64, 16, entries, 0, kernel="walk"
    )
    assert total == expected


def test_scalar_reset_returns_to_cold():
    trace = make_stream(1200, seed=5)
    entries = IPVS["lru"]
    sim = ScalarStreamSimulator(NUM_SETS, ASSOC, entries)
    first = sim.feed(trace)
    sim.reset()
    assert (sim.pos, sim.accesses, sim.misses) == (0, 0, 0)
    assert sim.feed(trace) == first


def test_scalar_validation():
    with pytest.raises(ValueError):
        ScalarStreamSimulator(15, 4, IPVS["lru"])
    with pytest.raises(ValueError):
        ScalarStreamSimulator(16, 4, (0, 0, 0, 0))  # too short
    with pytest.raises(ValueError):
        ScalarStreamSimulator(16, 4, (0, 0, 0, 0, 4))  # out of range
    with pytest.raises(ValueError):
        ScalarStreamSimulator(16, 4, IPVS["lru"], warmup=-1)


@needs_columnar
@pytest.mark.parametrize("warmup", [0, 1000])
def test_columnar_feed_matches_cold_run(warmup):
    from repro.engine.columnar import BatchSimulator

    trace = make_stream(4000)
    lanes = list(IPVS.values())
    ref = BatchSimulator(NUM_SETS, ASSOC, lanes, warmup)
    expected = ref.run(trace)
    ref_positions = [ref.positions(i).tolist() for i in range(len(lanes))]
    for parts in _partitions(len(trace)):
        sim = BatchSimulator(NUM_SETS, ASSOC, lanes, warmup)
        total = None
        base = 0
        for size in parts:
            got = sim.feed(trace[base:base + size])
            total = got if total is None else total + got
            base += size
        assert total.tolist() == expected.tolist()
        assert sim.stream_misses().tolist() == expected.tolist()
        assert sim.stream_pos == len(trace)
        for i in range(len(lanes)):
            assert sim.positions(i).tolist() == ref_positions[i]
        assert sim.end_stream().tolist() == expected.tolist()


@needs_columnar
def test_columnar_feed_matches_scalar_stream():
    from repro.engine.columnar import BatchSimulator

    trace = make_stream(3000, seed=19)
    entries = IPVS["lip"]
    col = BatchSimulator(NUM_SETS, ASSOC, [entries], warmup=500)
    sca = ScalarStreamSimulator(NUM_SETS, ASSOC, entries, warmup=500)
    for base in range(0, len(trace), 700):
        chunk = trace[base:base + 700]
        assert int(col.feed(chunk)[0]) == sca.feed(chunk)
    assert int(col.stream_misses()[0]) == sca.measured_misses


@needs_columnar
def test_columnar_begin_stream_resets():
    from repro.engine.columnar import BatchSimulator

    trace = make_stream(900, seed=23)
    sim = BatchSimulator(NUM_SETS, ASSOC, [IPVS["lru"]])
    first = sim.feed(trace)
    sim.begin_stream()
    assert sim.stream_pos == 0
    assert sim.feed(trace).tolist() == first.tolist()


@needs_columnar
def test_columnar_run_unaffected_by_open_stream():
    # run() must stay cold-start even while a stream is open.
    from repro.engine.columnar import BatchSimulator

    trace = make_stream(1100, seed=29)
    sim = BatchSimulator(NUM_SETS, ASSOC, [IPVS["skew"]], warmup=100)
    cold = sim.run(trace)
    sim.feed(trace[:400])
    assert sim.run(trace).tolist() == cold.tolist()
    # ...and the stream position survives the interleaved run.
    assert sim.stream_pos == 400


@needs_columnar
def test_columnar_stream_misses_requires_open_stream():
    from repro.engine.columnar import BatchSimulator

    sim = BatchSimulator(NUM_SETS, ASSOC, [IPVS["lru"]])
    with pytest.raises(RuntimeError):
        sim.stream_misses()
