"""Run-collapsed columnar traces are bit-identical to per-access ones.

``ColumnarTrace(collapse_runs=True)`` folds consecutive duplicate
addresses per set into ``(address, repeat)`` pairs and the kernel applies
each run as one transition via the promotion-orbit tables
(:func:`repro.kernels.tables.promotion_orbit`).  Everything observable —
miss counts, miss indices, final recency positions, streaming feeds —
must match the uncollapsed engine exactly, on every IPV shape including
cyclic promotion chains.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.ipv import lip_ipv, lru_ipv
from repro.core.plru import position, set_position
from repro.engine.columnar import BatchSimulator, ColumnarTrace
from repro.kernels.tables import path_write_tables, promotion_orbit

# IPV zoo: recency extremes, a pure promotion 4-cycle, a 2-cycle with a
# tail, and fixed-point-free shapes — the orbit table's hard cases.
IPVS4 = [
    tuple(lru_ipv(4).entries),
    tuple(lip_ipv(4).entries),
    (1, 2, 3, 0, 2),
    (1, 0, 1, 2, 2),
    (3, 3, 3, 3, 3),
    (0, 0, 2, 2, 1),
    (2, 3, 1, 1, 0),
]


def skewed_stream(n, num_sets=16, hot_share=0.4, seed=11):
    """A run-heavy stream: one hot key plus a modest random tail."""
    rng = random.Random(seed)
    tail = [rng.randrange(20 * num_sets) for _ in range(50)]
    out = []
    for _ in range(n):
        key = 7 if rng.random() < hot_share else rng.choice(tail)
        out.append((key * 2654435761) % (1 << 20))
    return out


# ----------------------------------------------------------------------
# The algebra the collapse rests on.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 4, 8])
def test_path_write_identity(k):
    """set_position(s, w, x) == (s & ~mask[w]) | bits[w][x] for all s."""
    mask, bits = path_write_tables(k)
    for s in range(1 << (k - 1)):
        for w in range(k):
            for x in range(k):
                assert set_position(s, w, x, k) == (
                    (s & ~mask[w]) | bits[w][x]
                )


@pytest.mark.parametrize("entries", IPVS4)
def test_promotion_orbit_matches_iteration(entries):
    k = 4
    orbit, entry, cycle = promotion_orbit(k, entries)
    promo = entries[:k]
    for p in range(k):
        cur = p
        for n in range(50):  # well past every cycle closure
            if n < 2 * k:
                expect = orbit[p][n]
            else:
                expect = orbit[p][entry[p] + (n - entry[p]) % cycle[p]]
            assert expect == cur, (entries, p, n)
            cur = promo[cur]


def test_repeated_hits_walk_the_orbit():
    """n same-way hits leave the way at position promo^n(p0)."""
    k, entries = 4, (1, 2, 3, 0, 2)
    orbit, entry, cycle = promotion_orbit(k, entries)
    promo = entries[:k]
    state, way = 0b101, 2
    p0 = position(state, way, k)
    for n in range(1, 12):
        state = set_position(state, way, promo[position(state, way, k)], k)
        if n < 2 * k:
            expect = orbit[p0][n]
        else:
            expect = orbit[p0][entry[p0] + (n - entry[p0]) % cycle[p0]]
        assert position(state, way, k) == expect


# ----------------------------------------------------------------------
# Engine equivalence.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("entries", IPVS4)
def test_collapsed_run_bit_identical(entries):
    stream = skewed_stream(20000)
    sim = BatchSimulator(16, 4, [entries], warmup=0)
    plain = sim.run(ColumnarTrace(stream, 16))
    pos_plain = sim.positions(0).copy()
    coll = sim.run(ColumnarTrace(stream, 16, collapse_runs=True))
    pos_coll = sim.positions(0)
    assert int(plain[0]) == int(coll[0])
    assert (pos_plain == pos_coll).all()


def test_collapsed_miss_indices_match():
    stream = skewed_stream(8000)
    sim = BatchSimulator(16, 4, [IPVS4[2]], warmup=1000)
    _, plain_idx = sim.run(
        ColumnarTrace(stream, 16), collect_miss_indices=True
    )
    _, coll_idx = sim.run(
        ColumnarTrace(stream, 16, collapse_runs=True),
        collect_miss_indices=True,
    )
    assert plain_idx[0] == coll_idx[0]


def test_collapsed_feed_stream_matches_cold_run():
    """Runs split across feed chunks still reconcile exactly."""
    stream = skewed_stream(30000)
    sim = BatchSimulator(16, 4, [IPVS4[2]], warmup=1234)
    one = int(sim.run(ColumnarTrace(stream, 16))[0])
    sim.begin_stream()
    total = 0
    for base in range(0, len(stream), 777):
        total += int(
            sim.feed(stream[base:base + 777], collapse_runs=True)[0]
        )
    assert total == one
    assert int(sim.end_stream()[0]) == one


def test_collapsed_multi_lane_with_duplicate_ipvs():
    stream = skewed_stream(15000)
    lanes = [IPVS4[0], IPVS4[2], IPVS4[0], IPVS4[4]]
    sim = BatchSimulator(16, 4, lanes, warmup=0)
    plain = sim.run(ColumnarTrace(stream, 16))
    coll = sim.run(ColumnarTrace(stream, 16, collapse_runs=True))
    assert (plain == coll).all()


def test_collapsed_k16_lane():
    stream = skewed_stream(20000, hot_share=0.5)
    entries = tuple(lru_ipv(16).entries)
    sim = BatchSimulator(64, 16, [entries], warmup=0)
    plain = sim.run(ColumnarTrace(stream, 64))
    coll = sim.run(ColumnarTrace(stream, 64, collapse_runs=True))
    assert int(plain[0]) == int(coll[0])


def test_collapse_shrinks_depth_on_skew():
    """The point of the feature: hot-key columns stop dominating depth."""
    stream = skewed_stream(60000, hot_share=0.6)
    plain = ColumnarTrace(stream, 16)
    coll = ColumnarTrace(stream, 16, collapse_runs=True)
    assert coll.n == plain.n  # n stays the *access* count
    plain_depth = max(c.max_depth for c in plain.chunks)
    coll_depth = max(c.max_depth for c in coll.chunks)
    assert coll_depth < plain_depth / 4


def test_counters_reject_collapsed_trace():
    stream = skewed_stream(2000)
    sim = BatchSimulator(16, 4, [IPVS4[0]], warmup=0)
    trace = ColumnarTrace(stream, 16, collapse_runs=True)
    with pytest.raises(ValueError, match="collapse_runs"):
        sim.run(trace, counters=True)


def test_empty_and_single_access_collapse():
    sim = BatchSimulator(16, 4, [IPVS4[0]], warmup=0)
    assert int(sim.run(ColumnarTrace([], 16, collapse_runs=True))[0]) == 0
    assert int(sim.run(ColumnarTrace([5], 16, collapse_runs=True))[0]) == 1


# ----------------------------------------------------------------------
# The scalar spill for interleaved hot keys.
# ----------------------------------------------------------------------
def interleaved_hot_stream(n, num_sets=64, seed=23):
    """Two hot keys in ONE set, strictly alternating, plus random noise.

    A,B,A,B interleaving is the collapse algebra's worst case: period-2
    repetition produces no runs at all, so that set's column stays
    thousands of entries deep after collapsing and exercises the scalar
    spill tail.
    """
    rng = random.Random(seed)
    hot_a = num_sets * 3 + 5  # same set index (5), distinct tags
    hot_b = num_sets * 9 + 5
    out = []
    flip = False
    for _ in range(n):
        if rng.random() < 0.7:
            out.append(hot_a if flip else hot_b)
            flip = not flip
        else:
            out.append(rng.randrange(40 * num_sets))
    return out


@pytest.mark.parametrize("entries", IPVS4)
def test_spill_tail_bit_identical(entries):
    """Deep interleaved columns spill scalar and still match exactly."""
    stream = interleaved_hot_stream(30000)
    sim = BatchSimulator(64, 4, [entries], warmup=500)
    plain, plain_idx = sim.run(
        ColumnarTrace(stream, 64), collect_miss_indices=True
    )
    pos_plain = sim.positions(0).copy()
    coll, coll_idx = sim.run(
        ColumnarTrace(stream, 64, collapse_runs=True),
        collect_miss_indices=True,
    )
    assert int(plain[0]) == int(coll[0])
    assert plain_idx[0] == coll_idx[0]
    assert (pos_plain == sim.positions(0)).all()


def test_spill_tail_multi_lane_k16():
    stream = interleaved_hot_stream(40000, num_sets=64)
    lanes = [tuple(lru_ipv(16).entries), tuple(lip_ipv(16).entries)]
    sim = BatchSimulator(64, 16, lanes, warmup=0)
    plain = sim.run(ColumnarTrace(stream, 64))
    coll = sim.run(ColumnarTrace(stream, 64, collapse_runs=True))
    assert (plain == coll).all()


def test_spill_triggers_on_interleaved_hot_keys():
    """The guard itself: this workload must actually take the spill."""
    import repro.engine.columnar as columnar

    stream = interleaved_hot_stream(30000)
    trace = ColumnarTrace(stream, 64, collapse_runs=True)
    depth = max(c.max_depth for c in trace.chunks)
    assert depth > columnar._SPILL_MIN_CAP + columnar._SPILL_MIN_STEPS
    sim = BatchSimulator(64, 4, [IPVS4[0]], warmup=0)
    calls = []
    original = sim._spill_tail

    def spy(*args, **kwargs):
        result = original(*args, **kwargs)
        calls.append(sum(result[0]))
        return result

    sim._spill_tail = spy
    sim.run(trace)
    assert calls, "interleaved hot keys must route through the spill"
