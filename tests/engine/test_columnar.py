"""Bit-identity and behaviour tests for :mod:`repro.engine.columnar`.

The columnar engine's contract is *exactness*, not approximation: every
miss count, miss index, final recency position and PSEL value must match
the scalar walk reference bit for bit — across associativities, ragged
chunk tails, warmup windows, duplicate lanes and set-dueling.  These
tests are therefore equality proofs over randomized and adversarial
streams, plus the no-numpy / bad-input error contract.
"""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.engine.columnar import (
    DEFAULT_AUTO_MIN_LANES,
    DEFAULT_BATCH_ACCESSES,
    BatchSimulator,
    ColumnarTrace,
    ColumnarUnavailable,
    DuelBatchSimulator,
    columnar_config,
    columnar_supported,
    require_numpy,
    resolve_batch_accesses,
    resolve_min_lanes,
    simulate_misses_plru_columnar,
)
from repro.ga.fitness import simulate_misses_plru_ipv
from repro.kernels import tables as ktables
from repro.policies import DGIPPRPolicy, GIPPRPolicy

numpy_missing = ktables.numpy_or_none() is None
needs_numpy = pytest.mark.skipif(
    numpy_missing, reason="columnar engine requires numpy"
)

GEOMETRIES = [(16, 2), (8, 4), (8, 8), (4, 16)]


def stress_ipv(k, salt=7):
    rng = random.Random(salt + k)
    return tuple(rng.randrange(k) for _ in range(k + 1))


def make_stream(n, num_sets, assoc, seed, skew=False):
    rng = random.Random(seed)
    footprint = 3 * num_sets * assoc
    if skew:
        # Hammer one set: the deepest column dwarfs the rest, the worst
        # case for the prefix-width scheduling.
        return [
            (rng.randrange(footprint) & ~(num_sets - 1))
            if rng.random() < 0.8 else rng.randrange(footprint)
            for _ in range(n)
        ]
    return [rng.randrange(footprint) for _ in range(n)]


@needs_numpy
class TestSingleLaneIdentity:
    @pytest.mark.parametrize("num_sets,assoc", GEOMETRIES)
    @pytest.mark.parametrize("skew", [False, True])
    def test_misses_match_walk_and_lut(self, num_sets, assoc, skew):
        stream = make_stream(4000, num_sets, assoc, seed=assoc, skew=skew)
        for entries in (
            tuple(lru_ipv(assoc).entries),
            tuple(lip_ipv(assoc).entries),
            stress_ipv(assoc),
        ):
            walk = simulate_misses_plru_ipv(
                stream, num_sets, assoc, entries, 400, kernel="walk"
            )
            lut = simulate_misses_plru_ipv(
                stream, num_sets, assoc, entries, 400, kernel="lut"
            )
            col = simulate_misses_plru_columnar(
                stream, num_sets, assoc, entries, 400
            )
            assert col == walk == lut

    @pytest.mark.parametrize("batch", [1, 37, 256, 1 << 16])
    def test_ragged_chunk_tails(self, batch):
        """Chunk size must never affect results (incl. batch=1)."""
        num_sets, assoc = 8, 8
        stream = make_stream(1500, num_sets, assoc, seed=5)
        entries = stress_ipv(assoc)
        walk = simulate_misses_plru_ipv(
            stream, num_sets, assoc, entries, 100, kernel="walk"
        )
        col = simulate_misses_plru_columnar(
            stream, num_sets, assoc, entries, 100, batch_accesses=batch
        )
        assert col == walk

    @pytest.mark.parametrize("warmup", [0, 1, 999, 2999])
    def test_warmup_windows(self, warmup):
        num_sets, assoc = 8, 4
        stream = make_stream(3000, num_sets, assoc, seed=11)
        entries = stress_ipv(assoc)
        walk = simulate_misses_plru_ipv(
            stream, num_sets, assoc, entries, warmup, kernel="walk"
        )
        col = simulate_misses_plru_columnar(
            stream, num_sets, assoc, entries, warmup
        )
        assert col == walk

    def test_miss_indices_match_walk(self):
        num_sets, assoc = 8, 8
        stream = make_stream(2500, num_sets, assoc, seed=3)
        entries = stress_ipv(assoc)
        walk_idx, col_idx = [], []
        walk = simulate_misses_plru_ipv(
            stream, num_sets, assoc, entries, 200,
            kernel="walk", miss_indices=walk_idx,
        )
        col = simulate_misses_plru_columnar(
            stream, num_sets, assoc, entries, 200,
            miss_indices=col_idx, batch_accesses=193,
        )
        assert col == walk
        assert col_idx == walk_idx
        assert len(col_idx) == col

    def test_positions_match_policy(self):
        """Final recency state decodes to the scalar policy's positions."""
        num_sets, assoc = 8, 8
        stream = make_stream(2000, num_sets, assoc, seed=21)
        entries = stress_ipv(assoc)
        simulator = BatchSimulator(num_sets, assoc, [entries])
        simulator.run(stream)
        policy = GIPPRPolicy(
            num_sets, assoc, ipv=IPV(list(entries), name="t"), kernel="walk"
        )
        cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
        for a in stream:
            cache.access(a)
        pos = simulator.positions(0)
        for s in range(num_sets):
            for w in range(assoc):
                assert int(pos[s, w]) == policy.position_of(s, w)


@needs_numpy
class TestMultiLane:
    def test_lanes_match_scalar_including_duplicates(self):
        num_sets, assoc = 8, 8
        stream = make_stream(3000, num_sets, assoc, seed=8)
        lanes = [
            tuple(lru_ipv(assoc).entries),
            stress_ipv(assoc),
            tuple(lru_ipv(assoc).entries),  # duplicate: shares tables
            tuple(lip_ipv(assoc).entries),
        ]
        simulator = BatchSimulator(num_sets, assoc, lanes, warmup=300)
        assert simulator._tables.unique == 3  # duplicate lane deduped
        trace = ColumnarTrace(stream, num_sets, batch_accesses=193)
        misses = simulator.run(trace)
        for i, entries in enumerate(lanes):
            walk = simulate_misses_plru_ipv(
                stream, num_sets, assoc, entries, 300, kernel="walk"
            )
            assert int(misses[i]) == walk

    def test_trace_reuse_across_populations(self):
        num_sets, assoc = 8, 4
        stream = make_stream(1200, num_sets, assoc, seed=13)
        trace = ColumnarTrace(stream, num_sets)
        first = BatchSimulator(num_sets, assoc, [stress_ipv(assoc)])
        second = BatchSimulator(num_sets, assoc, [stress_ipv(assoc, salt=9)])
        m1 = int(first.run(trace)[0])
        m2 = int(second.run(trace)[0])
        assert m1 == simulate_misses_plru_ipv(
            stream, num_sets, assoc, stress_ipv(assoc), 0, kernel="walk"
        )
        assert m2 == simulate_misses_plru_ipv(
            stream, num_sets, assoc, stress_ipv(assoc, salt=9), 0,
            kernel="walk",
        )

    def test_multi_lane_miss_indices(self):
        num_sets, assoc = 8, 4
        stream = make_stream(1500, num_sets, assoc, seed=17)
        lanes = [stress_ipv(assoc), tuple(lru_ipv(assoc).entries)]
        simulator = BatchSimulator(num_sets, assoc, lanes, warmup=100)
        misses, indices = simulator.run(
            ColumnarTrace(stream, num_sets, batch_accesses=101),
            collect_miss_indices=True,
        )
        for i, entries in enumerate(lanes):
            walk_idx = []
            walk = simulate_misses_plru_ipv(
                stream, num_sets, assoc, entries, 100,
                kernel="walk", miss_indices=walk_idx,
            )
            assert int(misses[i]) == walk
            assert indices[i] == walk_idx


@needs_numpy
class TestDuelBatch:
    @pytest.mark.parametrize("num_sets,assoc", [(16, 4), (16, 16)])
    def test_matches_dgippr_policy(self, num_sets, assoc):
        stream = make_stream(3000, num_sets, assoc, seed=assoc + 1)
        pairs = [
            (tuple(lru_ipv(assoc).entries), tuple(lip_ipv(assoc).entries)),
            (tuple(lip_ipv(assoc).entries), stress_ipv(assoc, salt=9)),
        ]
        simulator = DuelBatchSimulator(num_sets, assoc, pairs)
        misses = simulator.run(stream, warmup=300)
        for lane, (a, b) in enumerate(pairs):
            policy = DGIPPRPolicy(
                num_sets, assoc,
                ipvs=[IPV(list(a), name="a"), IPV(list(b), name="b")],
                kernel="walk",
            )
            cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
            for addr in stream[:300]:
                cache.access(addr)
            cache.reset_stats()
            for addr in stream[300:]:
                cache.access(addr)
            assert int(misses[lane]) == cache.stats.misses
            # PSEL is global-order state: its final value must agree too.
            assert int(simulator.psel[lane]) == policy.selector.psel.value

    def test_each_lane_needs_two_ipvs(self):
        with pytest.raises(ValueError):
            DuelBatchSimulator(16, 4, [])


@needs_numpy
class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError, match="power of two"):
            BatchSimulator(12, 4, [stress_ipv(4)])
        with pytest.raises(ValueError, match="unsupported"):
            BatchSimulator(16, 32, [stress_ipv(32)])

    def test_empty_lanes(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchSimulator(16, 4, [])

    def test_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            BatchSimulator(16, 4, [stress_ipv(4)], warmup=-1)

    def test_trace_set_mismatch(self):
        trace = ColumnarTrace([1, 2, 3], 16)
        simulator = BatchSimulator(8, 4, [stress_ipv(4)])
        with pytest.raises(ValueError, match="binned for 16 sets"):
            simulator.run(trace)

    def test_trace_rejects_bad_input(self):
        with pytest.raises(ValueError, match="power of two"):
            ColumnarTrace([1], 12)
        with pytest.raises(ValueError, match="non-negative"):
            ColumnarTrace([-1], 16)
        with pytest.raises(ValueError, match="batch_accesses"):
            ColumnarTrace([1], 16, batch_accesses=0)

    def test_empty_trace(self):
        simulator = BatchSimulator(16, 4, [stress_ipv(4)])
        misses = simulator.run(ColumnarTrace([], 16))
        assert int(misses[0]) == 0


class TestConfigResolution:
    """Chunk-size / auto-batch knobs: kwarg > environment > default."""

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR_BATCH_ACCESSES", raising=False)
        monkeypatch.delenv("REPRO_COLUMNAR_MIN_LANES", raising=False)
        assert resolve_batch_accesses() == DEFAULT_BATCH_ACCESSES
        assert resolve_min_lanes() == DEFAULT_AUTO_MIN_LANES
        assert columnar_config() == {
            "batch_accesses": DEFAULT_BATCH_ACCESSES,
            "min_lanes": DEFAULT_AUTO_MIN_LANES,
        }

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", "2048")
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", "9")
        assert resolve_batch_accesses() == 2048
        assert resolve_min_lanes() == 9
        assert columnar_config() == {"batch_accesses": 2048, "min_lanes": 9}

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", "2048")
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", "9")
        assert resolve_batch_accesses(512) == 512
        assert resolve_min_lanes(2) == 2

    @pytest.mark.parametrize("raw", ["", "  ", "abc", "0", "-5", "1.5"])
    def test_invalid_env_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", raw)
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", raw)
        assert resolve_batch_accesses() == DEFAULT_BATCH_ACCESSES
        assert resolve_min_lanes() == DEFAULT_AUTO_MIN_LANES

    def test_invalid_kwarg_raises(self):
        with pytest.raises(ValueError, match="batch_accesses"):
            resolve_batch_accesses(0)
        with pytest.raises(ValueError, match="min_lanes"):
            resolve_min_lanes(-1)

    def test_caller_default_for_min_lanes(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR_MIN_LANES", raising=False)
        assert resolve_min_lanes(default=7) == 7
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", "3")
        assert resolve_min_lanes(default=7) == 3

    @pytest.mark.skipif(numpy_missing, reason="columnar engine needs numpy")
    def test_trace_resolves_chunk_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", "8")
        trace = ColumnarTrace(list(range(20)), 16)
        assert trace.batch_accesses == 8
        assert len(trace.chunks) == 3  # 8 + 8 + ragged 4
        explicit = ColumnarTrace(list(range(20)), 16, batch_accesses=16)
        assert explicit.batch_accesses == 16
        assert len(explicit.chunks) == 2

    @pytest.mark.skipif(numpy_missing, reason="columnar engine needs numpy")
    def test_chunking_is_bit_identical(self, monkeypatch):
        """The chunk size is a memory/throughput knob, never a result knob."""
        addresses = make_stream(600, 16, 4, seed=3)
        lanes = [stress_ipv(4), lru_ipv(4)]
        simulator = BatchSimulator(16, 4, lanes, warmup=50)
        baseline = list(simulator.run(ColumnarTrace(addresses, 16)))
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", "64")
        assert list(simulator.run(ColumnarTrace(addresses, 16))) == baseline


class TestNoNumpy:
    """Without numpy the engine must refuse loudly, never degrade."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(ktables, "_np", None)

    def test_require_numpy_raises(self, no_numpy):
        with pytest.raises(ColumnarUnavailable, match="requires numpy"):
            require_numpy()

    def test_supported_is_false(self, no_numpy):
        assert not columnar_supported(4)

    def test_simulator_raises_clearly(self, no_numpy):
        with pytest.raises(ColumnarUnavailable, match="REPRO_FORCE_NO_NUMPY"):
            BatchSimulator(16, 4, [stress_ipv(4)])
        with pytest.raises(ColumnarUnavailable):
            ColumnarTrace([1, 2], 16)
        with pytest.raises(ColumnarUnavailable):
            DuelBatchSimulator(16, 4, [(stress_ipv(4), stress_ipv(4, 9))])

    def test_fitness_kernel_columnar_raises(self, no_numpy):
        with pytest.raises(ColumnarUnavailable):
            simulate_misses_plru_ipv(
                [1, 2, 3], 16, 4, (0,) * 5, 0, kernel="columnar"
            )
