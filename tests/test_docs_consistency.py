"""Consistency between the documentation and the code.

DESIGN.md promises a bench per experiment and EXPERIMENTS.md reports them;
these tests keep those promises honest as the code evolves.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(name):
    with open(os.path.join(REPO, name)) as handle:
        return handle.read()


class TestDesignIndex:
    def test_every_indexed_bench_exists(self):
        design = _read("DESIGN.md")
        referenced = set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", design))
        assert referenced, "DESIGN.md no longer references any bench"
        for bench in referenced:
            assert os.path.exists(
                os.path.join(REPO, "benchmarks", bench)
            ), f"DESIGN.md references missing {bench}"

    def test_every_bench_is_indexed(self):
        design = _read("DESIGN.md")
        on_disk = {
            name
            for name in os.listdir(os.path.join(REPO, "benchmarks"))
            if name.startswith("bench_") and name.endswith(".py")
        }
        indexed = set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", design))
        undocumented = on_disk - indexed
        assert not undocumented, f"benches missing from DESIGN.md: {undocumented}"

    def test_indexed_modules_exist(self):
        design = _read("DESIGN.md")
        for module in re.findall(r"`repro/([a-z_/]+\.py)`", design):
            assert os.path.exists(
                os.path.join(REPO, "src", "repro", module)
            ), f"DESIGN.md references missing module {module}"


class TestExperimentsReport:
    def test_every_figure_covered(self):
        experiments = _read("EXPERIMENTS.md")
        for figure in ("Figure 1", "Figure 4", "Figure 10", "Figure 11",
                       "Figure 12", "Figure 13", "Section 3.6", "Section 2.6"):
            assert figure in experiments, f"{figure} missing from EXPERIMENTS.md"

    def test_benches_named_in_report_exist(self):
        experiments = _read("EXPERIMENTS.md")
        for bench in set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", experiments)):
            assert os.path.exists(os.path.join(REPO, "benchmarks", bench)), bench


class TestReadme:
    def test_example_scripts_exist(self):
        readme = _read("README.md")
        for script in set(re.findall(r"`([a-z_0-9]+\.py)`", readme)):
            in_examples = os.path.exists(os.path.join(REPO, "examples", script))
            in_benchmarks = os.path.exists(
                os.path.join(REPO, "benchmarks", script)
            )
            assert in_examples or in_benchmarks, (
                f"README references missing {script}"
            )

    def test_quickstart_code_runs(self):
        """The README quickstart snippet must stay executable."""
        readme = _read("README.md")
        match = re.search(r"```python\n(.*?)```", readme, re.S)
        assert match, "no python quickstart block in README"
        code = match.group(1)
        # Shrink the workload so this stays a unit test.
        code = code.replace("n=100_000", "n=5_000")
        namespace: dict = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)


class TestPaperVectorsDocumented:
    def test_design_mentions_substitutions(self):
        design = _read("DESIGN.md")
        assert "Substitutions" in design
        assert "SPEC CPU 2006" in design

    def test_citation_file_has_doi(self):
        citation = _read("CITATION.cff")
        assert "10.1145/2540708.2540733" in citation
