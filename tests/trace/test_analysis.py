"""Tests for reuse/stack-distance analysis."""

import pytest

from repro.trace import (
    Trace,
    cold_miss_count,
    per_set_reuse_histogram,
    stack_distance_histogram,
)


class TestStackDistanceHistogram:
    def test_repeating_single_block(self):
        histogram = stack_distance_histogram(Trace([1, 1, 1, 1]))
        assert histogram[-1] == 1  # one cold access
        assert histogram[0] == 3  # three immediate reuses

    def test_two_block_alternation(self):
        histogram = stack_distance_histogram(Trace([1, 2, 1, 2, 1]))
        assert histogram[-1] == 2
        assert histogram[1] == 3  # each reuse skips one other block

    def test_streaming_all_cold(self):
        histogram = stack_distance_histogram(Trace(list(range(50))))
        assert histogram == {-1: 50}

    def test_loop_distance_equals_ws_minus_one(self):
        ws = 8
        trace = Trace(list(range(ws)) * 5)
        histogram = stack_distance_histogram(trace)
        assert histogram[ws - 1] == 4 * ws
        assert histogram[-1] == ws

    def test_cap(self):
        trace = Trace(list(range(100)) * 2)
        histogram = stack_distance_histogram(trace, max_distance=10)
        assert histogram[10] == 100  # all reuses capped


class TestPerSetReuseHistogram:
    def test_single_set_loop(self):
        # 4 blocks mapping to the same set of a 2-set cache: 0,2,4,6.
        trace = Trace([0, 2, 4, 6] * 10)
        histogram = per_set_reuse_histogram(trace, num_sets=2, max_distance=16)
        assert histogram[4] == 4 * 9  # reuse every 4 set accesses

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            per_set_reuse_histogram(Trace([1]), num_sets=3)

    def test_cold_accesses_not_counted(self):
        trace = Trace(list(range(32)))
        histogram = per_set_reuse_histogram(trace, num_sets=4)
        assert sum(histogram) == 0


class TestColdMisses:
    def test_matches_footprint(self):
        trace = Trace([1, 1, 2, 3])
        assert cold_miss_count(trace) == 3


class TestEdgeCases:
    def test_empty_trace(self):
        assert stack_distance_histogram(Trace([])) == {}
        assert per_set_reuse_histogram(Trace([]), num_sets=4) == [0] * 257

    def test_single_address(self):
        assert stack_distance_histogram(Trace([7])) == {-1: 1}
        histogram = per_set_reuse_histogram(Trace([7]), num_sets=1)
        assert sum(histogram) == 0

    def test_num_sets_one_reuse_is_global(self):
        trace = Trace([1, 2, 1, 2])
        histogram = per_set_reuse_histogram(trace, num_sets=1)
        assert histogram[2] == 2  # every reuse is two global accesses back

    def test_max_distance_one_clamps_everything(self):
        trace = Trace([1, 2, 3, 1, 2, 3])
        histogram = stack_distance_histogram(trace, max_distance=1)
        assert histogram == {-1: 3, 1: 3}
        reuse = per_set_reuse_histogram(trace, num_sets=1, max_distance=1)
        assert reuse == [0, 3]

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_max_distance(self, bad):
        with pytest.raises(ValueError, match="max_distance"):
            stack_distance_histogram(Trace([1]), max_distance=bad)
        with pytest.raises(ValueError, match="max_distance"):
            per_set_reuse_histogram(Trace([1]), num_sets=2, max_distance=bad)


class TestVectorizedTwinAgreement:
    """The obs.analytics profiler is pinned bit-identical to these walks."""

    def _assert_match(self, addresses, num_sets, max_distance=32):
        from repro.obs.analytics import profile_trace

        trace = Trace(list(addresses))
        profile = profile_trace(
            addresses, num_sets=num_sets, max_distance=max_distance
        )
        assert profile.stack_distance_histogram() == (
            stack_distance_histogram(trace, max_distance=max_distance)
        )
        assert profile.per_set_reuse_histogram() == (
            per_set_reuse_histogram(trace, num_sets)
        )

    def test_random_stream(self):
        import random

        rng = random.Random(99)
        addresses = [rng.randrange(300) for _ in range(4_000)]
        self._assert_match(addresses, num_sets=8)

    def test_spec_archetype_stream(self):
        from repro.workloads import get_benchmark

        trace = get_benchmark("429.mcf").trace(0, 4_000, 256, seed=1)
        self._assert_match(trace.address_list(), num_sets=16)
