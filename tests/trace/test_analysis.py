"""Tests for reuse/stack-distance analysis."""

import pytest

from repro.trace import (
    Trace,
    cold_miss_count,
    per_set_reuse_histogram,
    stack_distance_histogram,
)


class TestStackDistanceHistogram:
    def test_repeating_single_block(self):
        histogram = stack_distance_histogram(Trace([1, 1, 1, 1]))
        assert histogram[-1] == 1  # one cold access
        assert histogram[0] == 3  # three immediate reuses

    def test_two_block_alternation(self):
        histogram = stack_distance_histogram(Trace([1, 2, 1, 2, 1]))
        assert histogram[-1] == 2
        assert histogram[1] == 3  # each reuse skips one other block

    def test_streaming_all_cold(self):
        histogram = stack_distance_histogram(Trace(list(range(50))))
        assert histogram == {-1: 50}

    def test_loop_distance_equals_ws_minus_one(self):
        ws = 8
        trace = Trace(list(range(ws)) * 5)
        histogram = stack_distance_histogram(trace)
        assert histogram[ws - 1] == 4 * ws
        assert histogram[-1] == ws

    def test_cap(self):
        trace = Trace(list(range(100)) * 2)
        histogram = stack_distance_histogram(trace, max_distance=10)
        assert histogram[10] == 100  # all reuses capped


class TestPerSetReuseHistogram:
    def test_single_set_loop(self):
        # 4 blocks mapping to the same set of a 2-set cache: 0,2,4,6.
        trace = Trace([0, 2, 4, 6] * 10)
        histogram = per_set_reuse_histogram(trace, num_sets=2, max_distance=16)
        assert histogram[4] == 4 * 9  # reuse every 4 set accesses

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            per_set_reuse_histogram(Trace([1]), num_sets=3)

    def test_cold_accesses_not_counted(self):
        trace = Trace(list(range(32)))
        histogram = per_set_reuse_histogram(trace, num_sets=4)
        assert sum(histogram) == 0


class TestColdMisses:
    def test_matches_footprint(self):
        trace = Trace([1, 1, 2, 3])
        assert cold_miss_count(trace) == 3
