"""Tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.trace import (
    REGION,
    looping,
    mix,
    noisy_loop,
    pointer_chase,
    scan_interleaved,
    stack_distance,
    streaming,
    uniform_random,
    zipf,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: streaming(1000, seed=s),
            lambda s: looping(50, 1000, seed=s),
            lambda s: uniform_random(100, 1000, seed=s),
            lambda s: zipf(200, 1000, seed=s),
            lambda s: pointer_chase(300, 1000, seed=s, locality=0.3),
            lambda s: stack_distance([5, 10], [1, 1], 1000, seed=s),
            lambda s: scan_interleaved(50, 20, 100, 1000, seed=s),
        ],
    )
    def test_same_seed_same_trace(self, factory):
        a, b = factory(7), factory(7)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.pcs, b.pcs)

    def test_different_seed_differs(self):
        a = uniform_random(100, 1000, seed=1)
        b = uniform_random(100, 1000, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)


class TestStreaming:
    def test_zero_reuse(self):
        t = streaming(5000)
        assert t.footprint() == 5000  # every block unique

    def test_region_offsets_disjoint(self):
        a = streaming(100, region=0)
        b = streaming(100, region=1)
        assert set(a.addresses.tolist()).isdisjoint(b.addresses.tolist())
        assert b.addresses.min() >= REGION


class TestLooping:
    def test_footprint_is_working_set(self):
        t = looping(64, 1000)
        assert t.footprint() == 64

    def test_cyclic_order(self):
        t = looping(4, 10, seed=0)
        base = t.addresses[0]
        assert list(t.addresses[:8] - base) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            looping(0, 100)


class TestNoisyLoop:
    def test_zero_noise_is_plain_loop(self):
        t = noisy_loop(50, 500, noise=0.0, seed=1)
        assert t.footprint() == 50

    def test_noise_fraction_roughly_respected(self):
        t = noisy_loop(100, 10_000, noise=0.4, seed=2)
        noise_accesses = int((t.addresses - t.addresses.min() >= 100).sum())
        assert 0.35 < noise_accesses / len(t) < 0.45

    def test_noise_addresses_outside_loop(self):
        t = noisy_loop(100, 5000, noise=0.3, noise_working_set=1000, seed=3)
        base = int(t.addresses.min())
        offsets = t.addresses - base
        assert offsets.max() < 100 + 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            noisy_loop(0, 100)
        with pytest.raises(ValueError):
            noisy_loop(10, 100, noise=1.0)
        with pytest.raises(ValueError):
            noisy_loop(10, 100, noise=-0.1)

    def test_deterministic(self):
        a = noisy_loop(64, 1000, noise=0.25, seed=9)
        b = noisy_loop(64, 1000, noise=0.25, seed=9)
        assert np.array_equal(a.addresses, b.addresses)

    def test_loop_component_cyclic(self):
        t = noisy_loop(8, 2000, noise=0.5, seed=4)
        base = int(t.addresses.min())
        loop_part = [a - base for a in t.addresses.tolist() if a - base < 8]
        # The loop subsequence increments mod the working set.
        for previous, current in zip(loop_part, loop_part[1:]):
            assert current == (previous + 1) % 8


class TestZipf:
    def test_footprint_bounded(self):
        t = zipf(500, 5000, alpha=1.3)
        assert t.footprint() <= 500

    def test_skew(self):
        """Hot blocks dominate: top 10% of blocks get most accesses."""
        t = zipf(1000, 20_000, alpha=1.5, seed=2)
        values, counts = np.unique(t.addresses, return_counts=True)
        counts.sort()
        top = counts[-len(counts) // 10 :].sum()
        assert top > 0.5 * counts.sum()

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            zipf(100, 100, alpha=1.0)


class TestStackDistance:
    def test_controls_reuse_distance(self):
        """All reuses at stack distance 3 (plus colds)."""
        from repro.trace import stack_distance_histogram

        t = stack_distance([3], [1.0], 3000, cold_fraction=0.1, seed=4)
        histogram = stack_distance_histogram(t)
        reuses = {d: c for d, c in histogram.items() if d >= 0}
        assert max(reuses, key=reuses.get) == 3

    def test_cold_fraction_one_is_streaming(self):
        t = stack_distance([3], [1.0], 500, cold_fraction=1.0, seed=1)
        assert t.footprint() == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            stack_distance([1, 2], [1.0], 100)
        with pytest.raises(ValueError):
            stack_distance([1], [0.0], 100)


class TestScanInterleaved:
    def test_contains_hot_and_scan_phases(self):
        t = scan_interleaved(32, 16, 64, 2000, seed=3)
        addresses = t.addresses.tolist()
        hot = [a for a in addresses if a < 32]
        scans = [a for a in addresses if a >= 32]
        assert hot and scans
        # Scan blocks never repeat.
        assert len(scans) == len(set(scans))


class TestMix:
    def test_preserves_all_accesses(self):
        a = looping(10, 300, region=0)
        b = streaming(200, region=1)
        m = mix([a, b], chunk=32, seed=0)
        assert len(m) == 500
        assert m.instructions == a.instructions + b.instructions

    def test_interleaves(self):
        a = looping(10, 300, region=0)
        b = streaming(300, region=1)
        m = mix([a, b], chunk=32, seed=0)
        first_half = m.addresses[:250]
        assert (first_half < REGION).any() and (first_half >= REGION).any()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mix([])
