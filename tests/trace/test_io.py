"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.trace import (
    Trace,
    load_text_trace,
    load_trace,
    save_trace,
    uniform_random,
)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        t = uniform_random(100, 500, seed=1)
        path = tmp_path / "trace.npz"
        save_trace(t, path)
        back = load_trace(path)
        assert np.array_equal(back.addresses, t.addresses)
        assert np.array_equal(back.pcs, t.pcs)
        assert back.instructions == t.instructions
        assert back.name == t.name

    def test_metadata_survives(self, tmp_path):
        t = Trace([1, 2, 3], pcs=[4, 5, 6], instructions=99, name="x.sp0")
        path = tmp_path / "t.npz"
        save_trace(t, path)
        back = load_trace(path)
        assert back.name == "x.sp0"
        assert back.instructions == 99


class TestTextImport:
    def _write(self, tmp_path, content):
        path = tmp_path / "trace.txt"
        path.write_text(content)
        return path

    def test_address_only(self, tmp_path):
        path = self._write(tmp_path, "1\n2\n3\n")
        trace = load_text_trace(path)
        assert list(trace.addresses) == [1, 2, 3]
        assert list(trace.pcs) == [0, 0, 0]

    def test_address_pc_hex(self, tmp_path):
        path = self._write(tmp_path, "0x10, 0x400\n0x20, 0x404\n")
        trace = load_text_trace(path)
        assert list(trace.addresses) == [16, 32]
        assert list(trace.pcs) == [0x400, 0x404]

    def test_full_rows_with_positions(self, tmp_path):
        path = self._write(tmp_path, "1,7,0\n2,7,12\n1,8,30\n")
        trace = load_text_trace(path)
        assert list(trace.positions) == [0, 12, 30]
        assert trace.instructions == 31

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = self._write(tmp_path, "# header\n\n5\n# mid\n6\n")
        trace = load_text_trace(path)
        assert len(trace) == 2

    def test_tab_separated(self, tmp_path):
        path = self._write(tmp_path, "1\t9\n2\t9\n")
        trace = load_text_trace(path)
        assert list(trace.pcs) == [9, 9]

    def test_inconsistent_fields_rejected(self, tmp_path):
        path = self._write(tmp_path, "1,2,3\n4,5\n")
        with pytest.raises(ValueError, match="inconsistent"):
            load_text_trace(path)

    def test_empty_rejected(self, tmp_path):
        path = self._write(tmp_path, "# nothing\n")
        with pytest.raises(ValueError, match="no accesses"):
            load_text_trace(path)

    def test_too_many_fields_rejected(self, tmp_path):
        path = self._write(tmp_path, "1,2,3,4\n")
        with pytest.raises(ValueError, match="expected 1-3"):
            load_text_trace(path)
