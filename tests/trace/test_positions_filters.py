"""Tests for instruction positions and hierarchy trace filtering."""

import numpy as np
import pytest

from repro.trace import (
    Trace,
    assign_instruction_positions,
    concatenate,
    filter_through_caches,
    load_trace,
    looping,
    paper_l1_l2_filter,
    save_trace,
    streaming,
    uniform_random,
    zipf,
)


class TestPositions:
    def test_validation_alignment(self):
        with pytest.raises(ValueError):
            Trace([1, 2, 3], positions=[0, 5])

    def test_validation_monotone(self):
        with pytest.raises(ValueError):
            Trace([1, 2], positions=[5, 3], instructions=10)

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            Trace([1, 2], positions=[0, 99], instructions=10)

    def test_assign_positions_monotone_and_bounded(self):
        trace = uniform_random(100, 2000, seed=1)
        annotated = assign_instruction_positions(trace, seed=2)
        positions = annotated.positions
        assert positions is not None
        assert (np.diff(positions) >= 0).all()
        assert positions[-1] < annotated.instructions
        assert positions[0] >= 0

    def test_burstiness_creates_gap_variance(self):
        trace = uniform_random(100, 5000, seed=3)
        smooth = assign_instruction_positions(trace, seed=4, burstiness=0.0)
        bursty = assign_instruction_positions(trace, seed=4, burstiness=0.8)
        smooth_gaps = np.diff(smooth.positions)
        bursty_gaps = np.diff(bursty.positions)
        assert bursty_gaps.std() > 1.5 * smooth_gaps.std()

    def test_burstiness_validated(self):
        trace = uniform_random(10, 100, seed=1)
        with pytest.raises(ValueError):
            assign_instruction_positions(trace, burstiness=1.0)

    def test_slice_rebases_positions(self):
        trace = assign_instruction_positions(
            uniform_random(50, 1000, seed=5), seed=6
        )
        part = trace.slice(100, 200)
        assert part.positions is not None
        assert part.positions[0] == 0
        assert (np.diff(part.positions) >= 0).all()

    def test_concatenate_offsets_positions(self):
        a = assign_instruction_positions(uniform_random(10, 100, seed=1), seed=1)
        b = assign_instruction_positions(uniform_random(10, 100, seed=2), seed=2)
        joined = concatenate([a, b])
        assert joined.positions is not None
        # Second part's positions start after the first part's instructions.
        assert joined.positions[100] >= a.instructions

    def test_io_roundtrip_with_positions(self, tmp_path):
        trace = assign_instruction_positions(
            uniform_random(20, 300, seed=7), seed=8
        )
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert np.array_equal(back.positions, trace.positions)

    def test_io_roundtrip_without_positions(self, tmp_path):
        trace = uniform_random(20, 300, seed=9)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        assert load_trace(path).positions is None

    def test_runner_uses_real_positions(self):
        from repro.eval import default_config
        from repro.eval.runner import run_trace
        from repro.policies import TrueLRUPolicy

        config = default_config(trace_length=2000, warmup_fraction=0.0)
        trace = assign_instruction_positions(
            streaming(2000, seed=1), seed=3, burstiness=0.7
        )
        result = run_trace(
            TrueLRUPolicy(64, 16), trace, config, collect_miss_positions=True
        )
        assert result.miss_positions == sorted(result.miss_positions)
        assert result.miss_positions == trace.position_list()


class TestHierarchyFilter:
    def test_hot_block_absorbed(self):
        """A block re-touched constantly never reaches the LLC stream."""
        trace = Trace([7] * 100 + [7])
        filtered = filter_through_caches(trace, [(4, 2)])
        assert len(filtered) == 1  # only the compulsory miss passes

    def test_streaming_passes_through(self):
        trace = streaming(1000, seed=1)
        filtered = filter_through_caches(trace, [(4, 2), (16, 2)])
        assert len(filtered) == 1000

    def test_instruction_count_preserved(self):
        trace = zipf(500, 5000, seed=2)
        filtered = filter_through_caches(trace, [(8, 4)])
        assert filtered.instructions == trace.instructions
        assert len(filtered) < len(trace)

    def test_positions_carried_through(self):
        trace = assign_instruction_positions(zipf(500, 3000, seed=3), seed=4)
        filtered = filter_through_caches(trace, [(8, 4)])
        assert filtered.positions is not None
        assert len(filtered.positions) == len(filtered)

    def test_paper_filter_geometry(self):
        trace = looping(6000, 14_000, seed=5)
        filtered = paper_l1_l2_filter(trace)
        # A 6,000-block loop exceeds the 4,096-block L2, so the loop
        # thrashes straight through to the LLC.
        assert len(filtered) > 0.5 * len(trace)

    def test_filter_reduces_friendly_traffic(self):
        trace = zipf(400, 8000, seed=6)
        filtered = paper_l1_l2_filter(trace)
        assert len(filtered) < 0.5 * len(trace)
