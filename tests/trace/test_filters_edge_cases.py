"""Edge cases for the L1/L2 trace filter (repro.trace.filters).

The mainline behaviour is covered in test_positions_filters.py; these pin
the boundary geometries: empty traces, fully-absorbed traces, the k=2
minimum associativity, single-level hierarchies and name defaulting.
"""

import numpy as np

from repro.trace.filters import filter_through_caches, paper_l1_l2_filter
from repro.trace.record import Trace


class TestEmptyTrace:
    def test_empty_trace_filters_to_empty(self):
        trace = Trace(np.asarray([], dtype=np.int64), name="empty")
        out = filter_through_caches(trace, [(4, 2)])
        assert len(out) == 0
        assert out.instructions == trace.instructions

    def test_empty_trace_through_paper_filter(self):
        trace = Trace(np.asarray([], dtype=np.int64))
        out = paper_l1_l2_filter(trace)
        assert len(out) == 0

    def test_empty_trace_with_positions(self):
        trace = Trace(
            np.asarray([], dtype=np.int64),
            positions=np.asarray([], dtype=np.int64),
        )
        out = filter_through_caches(trace, [(4, 2)])
        assert len(out) == 0
        assert out.positions is not None and len(out.positions) == 0


class TestFullAbsorption:
    def test_hot_loop_fully_absorbed_after_cold_misses(self):
        # Two blocks looping inside a 2-way set: only the two cold misses
        # escape the upper level; every revisit hits and is absorbed.
        addresses = [0, 1] * 50
        trace = Trace(addresses)
        out = filter_through_caches(trace, [(1, 2)])
        assert out.address_list() == [0, 1]

    def test_instructions_preserved_even_when_all_absorbed(self):
        trace = Trace([7] * 100, instructions=5000)
        out = filter_through_caches(trace, [(1, 2)])
        assert out.address_list() == [7]
        assert out.instructions == 5000


class TestMinimumGeometry:
    def test_k2_single_set_level(self):
        # 1 set x 2 ways: three distinct blocks thrash; nothing but the
        # first two can ever both be resident, so LRU absorbs no revisit
        # of the cyclic a-b-c pattern.
        addresses = [0, 1, 2] * 10
        trace = Trace(addresses)
        out = filter_through_caches(trace, [(1, 2)])
        assert out.address_list() == addresses  # classic LRU thrash

    def test_multi_level_absorbs_what_first_level_misses(self):
        # Level 1 (1x2) thrashes on 3 blocks, but level 2 (4x2) holds all
        # three, so only the cold misses reach the output.
        addresses = [0, 1, 2] * 10
        trace = Trace(addresses)
        out = filter_through_caches(trace, [(1, 2), (4, 2)])
        assert out.address_list() == [0, 1, 2]


class TestNaming:
    def test_default_name_appends_llc(self):
        trace = Trace([1, 2, 3], name="prog")
        out = filter_through_caches(trace, [(2, 2)])
        assert out.name == "prog>llc"

    def test_explicit_name_wins(self):
        trace = Trace([1, 2, 3], name="prog")
        out = filter_through_caches(trace, [(2, 2)], name="custom")
        assert out.name == "custom"


class TestPositionsThreading:
    def test_positions_of_surviving_accesses_kept(self):
        addresses = [0, 0, 1]
        positions = [0, 5, 9]
        trace = Trace(addresses, positions=positions, instructions=30)
        out = filter_through_caches(trace, [(1, 2)])
        assert out.address_list() == [0, 1]
        assert out.position_list() == [0, 9]
