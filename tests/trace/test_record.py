"""Tests for the Trace record type."""

import numpy as np
import pytest

from repro.trace import Trace, annotate_next_use, concatenate


class TestTrace:
    def test_defaults(self):
        t = Trace([1, 2, 3])
        assert len(t) == 3
        assert t.instructions == 30
        assert list(t.pcs) == [0, 0, 0]

    def test_iteration_yields_address_pc_pairs(self):
        t = Trace([1, 2], pcs=[10, 20])
        assert list(t) == [(1, 10), (2, 20)]

    def test_mismatched_pcs_rejected(self):
        with pytest.raises(ValueError):
            Trace([1, 2], pcs=[1])

    def test_instructions_must_cover_accesses(self):
        with pytest.raises(ValueError):
            Trace([1, 2, 3], instructions=2)

    def test_access_intensity(self):
        t = Trace([1] * 100, instructions=10_000)
        assert t.accesses_per_kilo_instruction == 10.0

    def test_slice_scales_instructions(self):
        t = Trace(list(range(100)), instructions=1000)
        half = t.slice(0, 50)
        assert len(half) == 50
        assert half.instructions == 500

    def test_footprint(self):
        t = Trace([1, 1, 2, 3, 3, 3])
        assert t.footprint() == 3

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2)))


class TestAnnotateNextUse:
    def test_simple(self):
        t = Trace([5, 6, 5, 6, 7])
        assert annotate_next_use(t) == [2, 3, -1, -1, -1]

    def test_never_reused(self):
        t = Trace([1, 2, 3])
        assert annotate_next_use(t) == [-1, -1, -1]

    def test_immediate_reuse(self):
        t = Trace([9, 9, 9])
        assert annotate_next_use(t) == [1, 2, -1]


class TestConcatenate:
    def test_joins_addresses_and_instructions(self):
        a = Trace([1, 2], instructions=100)
        b = Trace([3], instructions=50)
        joined = concatenate([a, b])
        assert list(joined.addresses) == [1, 2, 3]
        assert joined.instructions == 150

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])
