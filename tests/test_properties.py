"""Cross-module property-based tests (hypothesis).

These pin down the invariants the whole reproduction rests on:

* the PLRU position algebra is a bijection that every IPV operation
  preserves,
* IPV-on-PLRU and IPV-on-LRU policies never corrupt cache state for *any*
  vector and *any* access pattern,
* the fast GA simulators agree with the policy-based cache for arbitrary
  vectors,
* Belady's MIN dominates arbitrary policies on arbitrary traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV
from repro.core.plru import all_positions, find_plru, set_position
from repro.ga.fitness import simulate_misses_plru_ipv
from repro.policies import (
    BeladyPolicy,
    GIPPRPolicy,
    IPVLRUPolicy,
    TrueLRUPolicy,
)
from repro.trace import Trace, annotate_next_use

ipv16 = st.lists(st.integers(0, 15), min_size=17, max_size=17)
ipv8 = st.lists(st.integers(0, 7), min_size=9, max_size=9)
addresses8 = st.lists(st.integers(0, 63), min_size=1, max_size=300)


@given(state=st.integers(0, (1 << 15) - 1), ops=st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=64))
@settings(max_examples=200)
def test_plru_positions_remain_bijective_under_any_ops(state, ops):
    for way, pos in ops:
        state = set_position(state, way, pos, 16)
    positions = all_positions(state, 16)
    assert sorted(positions) == list(range(16))
    assert positions[find_plru(state, 16)] == 15


@given(entries=ipv8, addresses=addresses8)
@settings(max_examples=150, deadline=None)
def test_gippr_never_corrupts_cache_for_any_vector(entries, addresses):
    policy = GIPPRPolicy(4, 8, ipv=IPV(entries))
    cache = SetAssociativeCache(4, 8, policy, block_size=1)
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == len(addresses)
    for s in range(4):
        tags = cache._tags[s]
        way_of = cache._way_of[s]
        assert len(way_of) == sum(t is not None for t in tags)
        for tag, way in way_of.items():
            assert tags[way] == tag
        # The policy's positions stay a permutation.
        positions = [policy.position_of(s, w) for w in range(8)]
        assert sorted(positions) == list(range(8))


@given(entries=ipv8, addresses=addresses8)
@settings(max_examples=150, deadline=None)
def test_ipv_lru_never_corrupts_cache_for_any_vector(entries, addresses):
    policy = IPVLRUPolicy(4, 8, IPV(entries))
    cache = SetAssociativeCache(4, 8, policy, block_size=1)
    for address in addresses:
        cache.access(address)
    for s in range(4):
        policy._stacks[s].check_invariants()


@given(entries=ipv16, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_fast_plru_sim_matches_policy_for_any_vector(entries, seed):
    import random

    rng = random.Random(seed)
    addresses = [rng.randrange(300) for _ in range(1500)]
    ipv = IPV(entries)
    fast = simulate_misses_plru_ipv(addresses, 4, 16, tuple(entries), warmup=0)
    policy = GIPPRPolicy(4, 16, ipv=ipv)
    cache = SetAssociativeCache(4, 16, policy, block_size=1)
    slow = sum(not cache.access(a) for a in addresses)
    assert fast == slow


@given(addresses=st.lists(st.integers(0, 30), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_belady_dominates_lru_on_any_trace(addresses):
    trace = Trace(addresses)
    next_use = annotate_next_use(trace)
    belady = SetAssociativeCache(2, 4, BeladyPolicy(2, 4), block_size=1)
    lru = SetAssociativeCache(2, 4, TrueLRUPolicy(2, 4), block_size=1)
    belady_misses = sum(
        not belady.access(a, next_use=next_use[i])
        for i, a in enumerate(addresses)
    )
    lru_misses = sum(not lru.access(a) for a in addresses)
    assert belady_misses <= lru_misses


@given(
    addresses=st.lists(st.integers(0, 500), min_size=1, max_size=400),
    depth=st.integers(1, 3),
)
@settings(max_examples=80, deadline=None)
def test_zcache_invariants_under_any_traffic(addresses, depth):
    """zCache: the location map and the way arrays never diverge, and
    occupancy never exceeds capacity."""
    from repro.cache.zcache import ZCache

    z = ZCache(16, 4, depth=depth)
    for address in addresses:
        z.access(address)
    assert z.occupancy() <= z.capacity_blocks
    found = 0
    for way in range(z.ways):
        for row in range(z.num_sets):
            block = z._rows[way][row]
            if block is not None:
                found += 1
                assert z._where[block] == (way, row)
                assert z.row_of(block, way) == row  # resident in a legal row
    assert found == z.occupancy()
    # A just-accessed block is resident (no bypass in a zCache).
    assert z.contains(addresses[-1])


@given(entries=ipv8)
@settings(max_examples=200)
def test_every_ipv_roundtrips_through_repr_fields(entries):
    ipv = IPV(entries, name="prop")
    clone = IPV(list(ipv.entries), name=ipv.name)
    assert clone == ipv
    assert clone.insertion == entries[8]
    for i in range(8):
        assert clone.promotion(i) == entries[i]
