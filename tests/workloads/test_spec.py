"""Tests for the synthetic SPEC CPU 2006 stand-in suite."""

import pytest

from repro.cache import SetAssociativeCache
from repro.policies import TrueLRUPolicy
from repro.workloads import SPEC_BENCHMARKS, benchmark_names, get_benchmark

CAPACITY = 1024  # 64 sets x 16 ways


class TestSuiteShape:
    def test_twenty_nine_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 29

    def test_names_match_spec2006(self):
        names = benchmark_names()
        for expected in [
            "400.perlbench", "429.mcf", "433.milc", "436.cactusADM",
            "447.dealII", "456.hmmer", "462.libquantum", "470.lbm",
            "471.omnetpp", "482.sphinx3", "483.xalancbmk",
        ]:
            assert expected in names

    def test_weights_sum_to_one(self):
        for bench in SPEC_BENCHMARKS.values():
            assert abs(sum(bench.weights()) - 1.0) < 1e-9

    def test_get_benchmark_unknown(self):
        with pytest.raises(ValueError):
            get_benchmark("999.nonesuch")

    def test_traces_generate_with_requested_length(self):
        bench = get_benchmark("429.mcf")
        traces = bench.traces(2000, CAPACITY, seed=1)
        assert len(traces) == len(bench.simpoints)
        for trace in traces:
            assert len(trace) == 2000
            assert trace.instructions == int(2000 * bench.instructions_per_access)

    def test_traces_deterministic(self):
        bench = get_benchmark("483.xalancbmk")
        a = bench.traces(1500, CAPACITY, seed=3)[0]
        b = bench.traces(1500, CAPACITY, seed=3)[0]
        assert (a.addresses == b.addresses).all()

    def test_seeds_differ(self):
        bench = get_benchmark("429.mcf")
        a = bench.traces(1500, CAPACITY, seed=1)[0]
        b = bench.traces(1500, CAPACITY, seed=2)[0]
        assert not (a.addresses == b.addresses).all()


def lru_miss_rate(trace, num_sets=64, assoc=16):
    cache = SetAssociativeCache(
        num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=1
    )
    for addr, pc in trace:
        cache.access(addr, pc=pc)
    return cache.stats.miss_rate


class TestArchetypeBehaviour:
    """The stand-ins must show the qualitative LLC behaviour their SPEC
    namesakes are known for (the basis of the substitution argument)."""

    def test_streaming_benchmarks_thrash_lru(self):
        for name in ["433.milc", "470.lbm"]:
            trace = get_benchmark(name).traces(20_000, CAPACITY, seed=0)[0]
            assert lru_miss_rate(trace) > 0.9, name

    def test_friendly_benchmarks_mostly_hit(self):
        for name in ["416.gamess", "453.povray", "444.namd"]:
            trace = get_benchmark(name).traces(20_000, CAPACITY, seed=0)[0]
            assert lru_miss_rate(trace) < 0.15, name

    def test_thrash_benchmarks_miss_heavily_under_lru(self):
        for name in ["436.cactusADM", "462.libquantum", "482.sphinx3"]:
            trace = get_benchmark(name).traces(30_000, CAPACITY, seed=0)[0]
            assert lru_miss_rate(trace) > 0.8, name

    def test_dealii_is_lru_friendly(self):
        trace = get_benchmark("447.dealII").traces(30_000, CAPACITY, seed=0)[0]
        rate = lru_miss_rate(trace)
        assert rate < 0.35  # LRU captures the reuse band

    def test_memory_intensities_ordered(self):
        """mcf-style benchmarks access the LLC far more often than povray."""
        mcf = get_benchmark("429.mcf").instructions_per_access
        povray = get_benchmark("453.povray").instructions_per_access
        assert mcf * 20 < povray

    def test_hmmer_has_phases(self):
        """The phase-alternating archetype mixes low and high miss phases."""
        trace = get_benchmark("456.hmmer").traces(40_000, CAPACITY, seed=0)[0]
        quarter = len(trace) // 4
        rates = [
            lru_miss_rate(trace.slice(i * quarter, (i + 1) * quarter))
            for i in range(4)
        ]
        assert max(rates) > 2 * min(rates) + 0.05
