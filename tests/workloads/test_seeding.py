"""The ``seed=None`` contract: derived, deterministic, and recorded.

Generators that accept ``seed=None`` never consult global random state —
the effective seed is a pure function of the spec digest, identical
across processes, distinct across specs, and written into the provenance
manifest so a rerun needs nothing but the manifest.
"""

import json

from repro.obs.provenance import build_manifest
from repro.serve.workload import ServingSpec, ServingStream
from repro.workloads.seeding import derive_seed, resolve_seed, spec_digest
from repro.workloads.spec import get_benchmark

CAPACITY = 256


class TestSeedingPrimitives:
    def test_spec_digest_is_canonical(self):
        a = spec_digest({"b": 2, "a": 1})
        b = spec_digest({"a": 1, "b": 2})
        assert a == b
        assert len(a) == 64

    def test_digest_sensitivity(self):
        assert spec_digest({"a": 1}) != spec_digest({"a": 2})

    def test_derive_seed_range_and_determinism(self):
        d = spec_digest({"kind": "x"})
        s = derive_seed(d)
        assert s == derive_seed(d)
        assert 0 <= s < 1 << 63

    def test_salt_separates_streams(self):
        d = spec_digest({"kind": "x"})
        assert derive_seed(d) != derive_seed(d, salt="warmup")

    def test_resolve_seed_prefers_explicit(self):
        assert resolve_seed(17, {"a": 1}) == 17
        assert resolve_seed(None, {"a": 1}) == derive_seed(
            spec_digest({"a": 1})
        )


class TestBenchmarkSeedNone:
    def test_seed_none_is_deterministic(self):
        bench = get_benchmark("429.mcf")
        a = bench.traces(1500, CAPACITY, seed=None)[0]
        b = bench.traces(1500, CAPACITY, seed=None)[0]
        assert list(a.addresses) == list(b.addresses)

    def test_seed_none_depends_on_spec(self):
        mcf = get_benchmark("429.mcf")
        libq = get_benchmark("462.libquantum")
        assert mcf.resolve_seed(None, 1500, CAPACITY) != libq.resolve_seed(
            None, 1500, CAPACITY
        )
        # ... and on the geometry (it is part of the digest payload).
        assert mcf.resolve_seed(None, 1500, CAPACITY) != mcf.resolve_seed(
            None, 1500, 2 * CAPACITY
        )

    def test_resolved_seed_matches_digest_derivation(self):
        bench = get_benchmark("429.mcf")
        assert bench.resolve_seed(None, 1500, CAPACITY) == derive_seed(
            bench.spec_digest(1500, CAPACITY)
        )

    def test_derived_seed_is_manifest_recordable(self):
        bench = get_benchmark("429.mcf")
        seed = bench.resolve_seed(None, 1500, CAPACITY)
        manifest = build_manifest(policy="lru", seed=seed)
        assert manifest["seed"] == seed
        json.dumps(manifest)  # must be JSON-serializable as written


class TestServingSeedNone:
    def test_seed_none_is_deterministic_and_spec_bound(self):
        a = ServingSpec(keys=64, alpha=1.0, accesses=512, seed=None)
        b = ServingSpec(keys=64, alpha=1.0, accesses=512, seed=None)
        c = ServingSpec(keys=64, alpha=1.1, accesses=512, seed=None)
        assert a.resolved_seed() == b.resolved_seed()
        assert a.resolved_seed() != c.resolved_seed()
        assert ServingStream(a).addresses() == ServingStream(b).addresses()

    def test_derivation_ignores_the_none_seed_field(self):
        # The derivation hashes the payload *without* its seed field, so
        # it is a pure function of the workload shape.
        spec = ServingSpec(keys=64, alpha=1.0, accesses=512, seed=None)
        payload = spec.digest_payload()
        del payload["seed"]
        assert spec.resolved_seed() == derive_seed(spec_digest(payload))

    def test_manifest_extra_records_derivation(self):
        derived = ServingSpec(keys=64, accesses=512, seed=None)
        explicit = ServingSpec(keys=64, accesses=512, seed=5)
        extra_d = derived.manifest_extra()
        extra_e = explicit.manifest_extra()
        assert extra_d["serving_seed_derived"] is True
        assert extra_d["serving_seed"] == derived.resolved_seed()
        assert extra_e["serving_seed_derived"] is False
        assert extra_e["serving_seed"] == 5
