"""Shared pytest configuration.

Registers hypothesis settings profiles so the property tests
(``tests/test_properties.py``) are reproducible where it matters:

``default``
    The stock profile for local development — random exploration finds
    new counterexamples.
``ci``
    Derandomized and database-free: every CI run executes the identical
    example sequence, so a red build is always reproducible locally with
    ``REPRO_HYPOTHESIS_PROFILE=ci`` and never depends on a shared example
    database.  Selected automatically when ``CI`` is set in the
    environment, or explicitly via ``REPRO_HYPOTHESIS_PROFILE``.

Hypothesis itself is optional (the ``test``/``dev`` extras provide it);
without it the property tests skip and this module does nothing.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - property tests skip anyway
    settings = None

if settings is not None:
    settings.register_profile("ci", derandomize=True, database=None,
                              max_examples=100, deadline=None)
    settings.register_profile("dev", max_examples=25)
    _profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE")
    if _profile is None and os.environ.get("CI"):
        _profile = "ci"
    if _profile is not None:
        settings.load_profile(_profile)
