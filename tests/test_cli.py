"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert "dgippr" in args.policies


class TestCommands:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("lru", "gippr", "dgippr", "drrip", "pdp", "belady"):
            assert name in out

    def test_vectors_shows_paper_ipvs(self, capsys):
        assert main(["vectors"]) == 0
        out = capsys.readouterr().out
        assert "GIPLR" in out
        assert "insertion at position 13" in out  # the GIPLR vector

    def test_overhead_table(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gippr" in out and "drrip" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare",
            "--policies", "lru", "dgippr",
            "--benchmarks", "462.libquantum", "453.povray",
            "--length", "4000",
            "--chart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out
        assert "462.libquantum" in out
        assert "baseline" in out  # the chart rendered

    def test_evolve_small(self, capsys):
        code = main([
            "evolve",
            "--benchmarks", "462.libquantum",
            "--generations", "1",
            "--population", "6",
            "--length", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fitness (mean speedup over LRU):" in out

    def test_trace_stats(self, capsys):
        assert main(["trace-stats", "429.mcf", "--length", "4000"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out
        assert "footprint" in out

    def test_trace_stats_unknown_benchmark(self):
        with pytest.raises(ValueError):
            main(["trace-stats", "999.bogus"])

    def test_simulate_roundtrip(self, tmp_path, capsys):
        from repro.trace import save_trace, uniform_random

        path = tmp_path / "t.npz"
        save_trace(uniform_random(500, 4000, seed=1), path)
        code = main(["simulate", str(path), "--policy", "lru", "--sets", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "misses" in out and "mpki" in out

    def test_simulate_with_filter(self, tmp_path, capsys):
        from repro.trace import save_trace, zipf

        path = tmp_path / "t.npz"
        save_trace(zipf(400, 5000, seed=2), path)
        code = main(["simulate", str(path), "--policy", "plru",
                     "--filter-l1l2"])
        assert code == 0
        assert "L1/L2 filter" in capsys.readouterr().out


class TestObservabilityCommands:
    def _traced(self, tmp_path, *extra):
        out = tmp_path / "events.jsonl"
        code = main([
            "trace", "462.libquantum",
            "--length", "3000", "--sets", "16",
            "--out", str(out), *extra,
        ])
        return code, out

    def test_trace_writes_and_verifies(self, tmp_path, capsys):
        code, out = self._traced(tmp_path)
        assert code == 0
        printed = capsys.readouterr().out
        assert "events ->" in printed
        assert "replay OK" in printed
        assert out.exists()
        # Provenance sidecar rides along by default.
        assert (tmp_path / "events.manifest.json").exists()

    def test_trace_sampled_skips_verification(self, tmp_path, capsys):
        code, out = self._traced(tmp_path, "--sample-every", "4")
        assert code == 0
        assert "replay OK" not in capsys.readouterr().out

    def test_trace_metrics_export(self, tmp_path):
        from repro.obs import parse_prometheus

        metrics = tmp_path / "metrics.prom"
        code, _ = self._traced(tmp_path, "--metrics-out", str(metrics))
        assert code == 0
        parsed = parse_prometheus(metrics.read_text())
        assert any(name == "repro_trace_events_total"
                   for name, _ in parsed)

    def test_obs_summary_validate_replay_metrics(self, tmp_path, capsys):
        _, out = self._traced(tmp_path)
        capsys.readouterr()

        assert main(["obs", "summary", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "miss" in summary and "insertion" in summary

        assert main(["obs", "validate", str(out)]) == 0
        assert "all valid" in capsys.readouterr().out

        assert main(["obs", "replay", str(out)]) == 0
        assert "evictions" in capsys.readouterr().out

        assert main(["obs", "metrics", str(out)]) == 0
        assert "# TYPE repro_trace_events_total counter" in (
            capsys.readouterr().out
        )

    def test_obs_validate_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"nope","access":1}\n')
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_verbose_flag_accepted(self, tmp_path):
        code, _ = self._traced(tmp_path, "--no-verify")
        assert code == 0
        args = build_parser().parse_args(["-v", "policies"])
        assert args.verbose == 1
        args = build_parser().parse_args(
            ["--log-level", "debug", "policies"]
        )
        assert args.log_level == "debug"


class TestObsAnalyze:
    def test_requires_an_input(self, capsys):
        assert main(["obs", "analyze"]) == 2
        assert "nothing to analyze" in capsys.readouterr().err

    def test_benchmark_profile_with_outputs(self, tmp_path, capsys):
        import json

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "curve.csv"
        code = main([
            "obs", "analyze",
            "--benchmark", "429.mcf",
            "--length", "2000", "--sets", "16",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "workload profile:" in rendered
        assert "miss curve" in rendered
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-analytics-report/1"
        assert payload["meta"]["benchmark"] == "429.mcf"
        assert payload["profile"]["working_set"]["accesses"] == 2000
        assert payload["profile"]["num_sets"] == 16
        assert csv_path.read_text().startswith("capacity_blocks")

    def test_convergence_only(self, tmp_path, capsys):
        from repro.obs.analytics import ConvergenceLog, generation_stats

        log_path = tmp_path / "conv.json"
        log = ConvergenceLog(log_path)
        scored = [(2.0, (0, 1)), (1.0, (1, 1))]
        for generation in range(2):
            log.append(generation_stats(generation, scored))
        csv_path = tmp_path / "conv.csv"
        code = main([
            "obs", "analyze",
            "--convergence", str(log_path), "--csv", str(csv_path),
        ])
        assert code == 0
        assert "GA convergence:" in capsys.readouterr().out
        assert csv_path.read_text().startswith("generation,")

    def test_simpoint_out_of_range(self):
        with pytest.raises(ValueError, match="simpoint"):
            main([
                "obs", "analyze",
                "--benchmark", "429.mcf", "--simpoint", "99",
                "--length", "500",
            ])
