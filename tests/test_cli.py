"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert "dgippr" in args.policies


class TestCommands:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("lru", "gippr", "dgippr", "drrip", "pdp", "belady"):
            assert name in out

    def test_vectors_shows_paper_ipvs(self, capsys):
        assert main(["vectors"]) == 0
        out = capsys.readouterr().out
        assert "GIPLR" in out
        assert "insertion at position 13" in out  # the GIPLR vector

    def test_overhead_table(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gippr" in out and "drrip" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare",
            "--policies", "lru", "dgippr",
            "--benchmarks", "462.libquantum", "453.povray",
            "--length", "4000",
            "--chart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out
        assert "462.libquantum" in out
        assert "baseline" in out  # the chart rendered

    def test_evolve_small(self, capsys):
        code = main([
            "evolve",
            "--benchmarks", "462.libquantum",
            "--generations", "1",
            "--population", "6",
            "--length", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fitness (mean speedup over LRU):" in out

    def test_trace_stats(self, capsys):
        assert main(["trace-stats", "429.mcf", "--length", "4000"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out
        assert "footprint" in out

    def test_trace_stats_unknown_benchmark(self):
        with pytest.raises(ValueError):
            main(["trace-stats", "999.bogus"])

    def test_simulate_roundtrip(self, tmp_path, capsys):
        from repro.trace import save_trace, uniform_random

        path = tmp_path / "t.npz"
        save_trace(uniform_random(500, 4000, seed=1), path)
        code = main(["simulate", str(path), "--policy", "lru", "--sets", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "misses" in out and "mpki" in out

    def test_simulate_with_filter(self, tmp_path, capsys):
        from repro.trace import save_trace, zipf

        path = tmp_path / "t.npz"
        save_trace(zipf(400, 5000, seed=2), path)
        code = main(["simulate", str(path), "--policy", "plru",
                     "--filter-l1l2"])
        assert code == 0
        assert "L1/L2 filter" in capsys.readouterr().out
