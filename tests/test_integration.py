"""Integration tests: the paper's qualitative claims at small scale.

Each test exercises several subsystems together (workloads -> cache ->
policies -> metrics) and asserts a *shape* from the paper's evaluation, not
an absolute number.
"""

import pytest

from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS
from repro.eval import PolicySpec, default_config, run_suite
from repro.eval.metrics import geometric_mean

CONFIG = default_config(trace_length=12_000)

#: A slice of the suite covering every archetype: streaming, thrash,
#: friendly, LRU-band, pointer-chase, phased.
BENCHES = [
    "462.libquantum",
    "436.cactusADM",
    "447.dealII",
    "453.povray",
    "429.mcf",
    "483.xalancbmk",
    "456.hmmer",
    "482.sphinx3",
]


@pytest.fixture(scope="module")
def suite():
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("2-DGIPPR", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        config=CONFIG,
        benchmarks=BENCHES,
    )


class TestPaperShapes:
    def test_plru_approximates_lru(self, suite):
        """Section 3.1: PLRU performs almost equivalently to full LRU."""
        assert suite.geomean_speedup("PLRU") == pytest.approx(1.0, abs=0.05)

    def test_random_close_to_lru_on_geomean(self, suite):
        """Figure 4: random replacement ~ 99.9% of LRU on geomean."""
        assert suite.geomean_speedup("Random") == pytest.approx(1.0, abs=0.12)

    def test_dgippr_beats_lru(self, suite):
        """The headline: adaptive PLRU insertion/promotion beats LRU."""
        assert suite.geomean_speedup("4-DGIPPR") > 1.0

    def test_dgippr_comparable_to_drrip(self, suite):
        """Figure 13: WN1-4-DGIPPR ~ DRRIP ~ PDP."""
        dgippr = suite.geomean_speedup("4-DGIPPR")
        drrip = suite.geomean_speedup("DRRIP")
        assert dgippr > 0.9 * drrip

    def test_min_dominates_every_policy(self, suite):
        """Figure 10: optimal replacement lower-bounds everyone."""
        min_misses = suite.misses("MIN")
        for label in suite.labels:
            if label == "MIN":
                continue
            other = suite.misses(label)
            for bench in BENCHES:
                assert min_misses[bench] <= other[bench] + 1e-9, (label, bench)

    def test_min_far_below_lru(self, suite):
        """Figure 10: MIN at ~67.5% of LRU's misses — far below practical
        policies.  At our scale the exact number differs; the gap must not."""
        ratio = geometric_mean(
            max(v, 1e-6) for v in suite.normalized_mpki("MIN").values()
        )
        assert ratio < 0.85

    def test_dealii_prefers_lru(self, suite):
        """Figure 11's exception: 447.dealII punishes non-LRU policies."""
        assert suite.speedups("DRRIP")["447.dealII"] <= 1.0 + 1e-6

    def test_povray_indifferent(self, suite):
        """Section 5.1: for 453.povray, MIN, LRU and everything else tie."""
        for label in suite.labels:
            assert suite.speedups(label)["453.povray"] == pytest.approx(
                1.0, abs=0.02
            )

    def test_gains_concentrate_in_memory_intensive_subset(self, suite):
        subset = suite.memory_intensive()
        assert len(subset) >= 2
        inside = suite.geomean_speedup("4-DGIPPR", benchmarks=subset)
        outside = [b for b in BENCHES if b not in subset]
        outside_speedup = suite.geomean_speedup("4-DGIPPR", benchmarks=outside)
        assert inside > outside_speedup

    def test_four_vectors_at_least_as_good_as_two(self, suite):
        """Section 5.1: 4-DGIPPR is the recommended configuration."""
        four = suite.geomean_speedup("4-DGIPPR")
        two = suite.geomean_speedup("2-DGIPPR")
        single = suite.geomean_speedup("GIPPR")
        # On this thrash-heavy slice the WI 2-vector set can edge out the
        # 4-vector set; the paper's claim is about the full suite, so we
        # require 4-DGIPPR to stay within noise of 2-DGIPPR and to beat the
        # static single vector.
        assert four >= two - 0.06
        assert four >= single - 0.02

    def test_dgippr_never_catastrophic(self, suite):
        """Section 5.2.2: DGIPPR's worst benchmark stays near LRU."""
        worst = min(suite.speedups("4-DGIPPR").values())
        assert worst > 0.85
