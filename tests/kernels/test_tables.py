"""Exhaustive and randomized equivalence tests for :mod:`repro.kernels`.

The LUT kernel is a memoization of the Figure 5/7/9 bit-walks — so the
tests here are equality proofs, not tolerance checks: every (state, way)
pair for every supported associativity, randomized access streams, and
policy-level CacheStats must match the reference bit for bit.
"""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV
from repro.core.plru import find_plru, position, set_position
from repro.ga.fitness import simulate_misses_plru_ipv
from repro.kernels import (
    KERNEL_CACHE_CAPACITY,
    MAX_TABLE_ASSOC,
    clear_kernel_cache,
    compile_tables,
    kernel_cache_info,
    kernel_counters,
    kernel_provenance,
    publish_kernel_metrics,
    record_kernel_call,
    reset_kernel_counters,
    resolve_kernel,
    tables_supported,
)
from repro.policies.plru import DGIPPRPolicy, GIPPRPolicy, TreePLRUPolicy

SUPPORTED_KS = [2, 4, 8, 16]


def scrambled_ipv(k, seed=3):
    rng = random.Random(seed * 1000 + k)
    return tuple(rng.randrange(k) for _ in range(k + 1))


def mixed_stream(n, num_sets, assoc, seed=11):
    rng = random.Random(seed)
    footprint = 2 * num_sets * assoc
    hot = max(1, num_sets * assoc // 2)
    return [
        rng.randrange(hot if rng.random() < 0.7 else footprint)
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# Exhaustive table equivalence against the Figure 5/7/9 reference walks.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", SUPPORTED_KS)
def test_victim_table_matches_figure5_exhaustively(k):
    tables = compile_tables(k)
    for state in range(1 << (k - 1)):
        assert tables.victim[state] == find_plru(state, k)


@pytest.mark.parametrize("k", SUPPORTED_KS)
def test_pos_table_matches_figure7_exhaustively(k):
    tables = compile_tables(k)
    shift = tables.log2k
    for state in range(1 << (k - 1)):
        base = state << shift
        for way in range(k):
            assert tables.pos[base | way] == position(state, way, k)


@pytest.mark.parametrize("k", SUPPORTED_KS)
def test_composed_hit_fill_match_figure9_exhaustively(k):
    entries = scrambled_ipv(k)
    promo, insert = entries[:k], entries[k]
    tables = compile_tables(k, entries)
    shift = tables.log2k
    for state in range(1 << (k - 1)):
        base = state << shift
        for way in range(k):
            pos = position(state, way, k)
            assert tables.hit[base | way] == set_position(
                state, way, promo[pos], k
            )
            assert tables.fill[base | way] == set_position(
                state, way, insert, k
            )


def test_classic_plru_is_all_zeros_vector():
    """``entries=None`` composes promote-to-PMRU: hit == fill tables."""
    tables = compile_tables(8)
    assert tables.entries == (0,) * 9
    assert tables.hit == tables.fill


# ----------------------------------------------------------------------
# Randomized stream equivalence (simulator level).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", SUPPORTED_KS)
def test_stream_misses_identical_walk_vs_lut(k):
    num_sets = 64
    entries = scrambled_ipv(k, seed=7)
    stream = mixed_stream(50_000, num_sets, k)
    warmup = 5_000
    walk_idx, lut_idx = [], []
    walk = simulate_misses_plru_ipv(
        stream, num_sets, k, entries, warmup,
        miss_indices=walk_idx, kernel="walk",
    )
    lut = simulate_misses_plru_ipv(
        stream, num_sets, k, entries, warmup,
        miss_indices=lut_idx, kernel="lut",
    )
    assert walk == lut
    assert walk_idx == lut_idx


def test_auto_kernel_matches_forced_paths():
    stream = mixed_stream(10_000, 32, 16, seed=2)
    entries = scrambled_ipv(16, seed=2)
    auto = simulate_misses_plru_ipv(stream, 32, 16, entries, 1_000)
    walk = simulate_misses_plru_ipv(
        stream, 32, 16, entries, 1_000, kernel="walk"
    )
    assert auto == walk


# ----------------------------------------------------------------------
# Policy-level equivalence: table-backed vs walk-backed policies.
# ----------------------------------------------------------------------
def _run_policy(policy, num_sets, assoc, seed=31):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for addr in mixed_stream(20_000, num_sets, assoc, seed=seed):
        cache.access(addr)
    snap = cache.stats.snapshot()
    snap.pop("mpki", None)  # NaN without instruction counts
    return snap


@pytest.mark.parametrize("assoc", [4, 16])
def test_gippr_policy_stats_identical_lut_vs_walk(assoc):
    ipv = IPV(scrambled_ipv(assoc, seed=13), name="t")
    walk = GIPPRPolicy(64, assoc, ipv=ipv, kernel="walk")
    lut = GIPPRPolicy(64, assoc, ipv=ipv, kernel="lut")
    assert walk.kernel_mode == "walk" and lut.kernel_mode == "lut"
    assert _run_policy(walk, 64, assoc) == _run_policy(lut, 64, assoc)


def test_plru_policy_stats_identical_lut_vs_walk():
    walk = TreePLRUPolicy(64, 16, kernel="walk")
    lut = TreePLRUPolicy(64, 16, kernel="lut")
    assert _run_policy(walk, 64, 16) == _run_policy(lut, 64, 16)


def test_dgippr_policy_stats_identical_lut_vs_walk():
    walk = DGIPPRPolicy(64, 16, kernel="walk")
    lut = DGIPPRPolicy(64, 16, kernel="lut")
    assert walk.kernel_mode == "walk" and lut.kernel_mode == "lut"
    assert _run_policy(walk, 64, 16) == _run_policy(lut, 64, 16)


@pytest.mark.parametrize("assoc", [4, 16])
def test_policy_positions_identical_lut_vs_walk(assoc):
    """position_of agrees on every way after an identical access history."""
    ipv = IPV(scrambled_ipv(assoc, seed=17), name="t")
    walk = GIPPRPolicy(16, assoc, ipv=ipv, kernel="walk")
    lut = GIPPRPolicy(16, assoc, ipv=ipv, kernel="lut")
    cache_w = SetAssociativeCache(16, assoc, walk, block_size=1)
    cache_l = SetAssociativeCache(16, assoc, lut, block_size=1)
    for addr in mixed_stream(5_000, 16, assoc, seed=41):
        cache_w.access(addr)
        cache_l.access(addr)
    for s in range(16):
        for w in range(assoc):
            assert walk.position_of(s, w) == lut.position_of(s, w)


# ----------------------------------------------------------------------
# Validation, support predicate, resolve semantics, cache bounds.
# ----------------------------------------------------------------------
def test_tables_supported_gate():
    for k in SUPPORTED_KS:
        assert tables_supported(k)
    assert not tables_supported(3)  # not a power of two
    assert not tables_supported(1)
    assert not tables_supported(2 * MAX_TABLE_ASSOC)


def test_compile_rejects_malformed_entries():
    with pytest.raises(ValueError):
        compile_tables(8, (0,) * 8)  # too short
    with pytest.raises(ValueError):
        compile_tables(8, (0,) * 10)  # too long
    with pytest.raises(ValueError):
        compile_tables(8, (0,) * 8 + (8,))  # V[k] out of range


def test_compile_validates_even_when_unsupported():
    # k=32 never compiles, but malformed vectors still raise.
    assert compile_tables(32, tuple([0] * 33)) is None
    with pytest.raises(ValueError):
        compile_tables(32, tuple([0] * 32 + [99]))


def test_simulator_validates_entries():
    with pytest.raises(ValueError):
        simulate_misses_plru_ipv([0, 1], 4, 4, (0, 0, 0, 0), 0)
    with pytest.raises(ValueError):
        simulate_misses_plru_ipv([0, 1], 4, 4, (0, 0, 0, 0, 4), 0)


def test_resolve_kernel_semantics():
    assert resolve_kernel("walk", 16, None) is None
    assert resolve_kernel("auto", 16, None) is not None
    assert resolve_kernel("lut", 16, None) is not None
    # auto falls back silently on unsupported k; lut refuses.
    assert resolve_kernel("auto", 32, None) is None
    with pytest.raises(ValueError):
        resolve_kernel("lut", 32, None)
    with pytest.raises(ValueError):
        resolve_kernel("banana", 16, None)


def test_compile_cache_hits_and_eviction():
    clear_kernel_cache()
    reset_kernel_counters()
    first = compile_tables(4, (0, 1, 2, 3, 0))
    assert compile_tables(4, (0, 1, 2, 3, 0)) is first  # hit
    counters = kernel_counters()
    assert counters["cache_hits"] == 1
    assert counters["compiles"] >= 1
    # Overflow the LRU: the earliest vector must be evicted.
    for seed in range(KERNEL_CACHE_CAPACITY + 2):
        compile_tables(4, scrambled_ipv(4, seed=100 + seed))
    info = kernel_cache_info()
    assert info["size"] <= KERNEL_CACHE_CAPACITY
    assert compile_tables(4, (0, 1, 2, 3, 0)) is not first  # recompiled
    clear_kernel_cache()


def test_kernel_provenance_and_metrics_roundtrip():
    from repro.obs import MetricsRegistry

    reset_kernel_counters()
    record_kernel_call("lut")
    record_kernel_call("walk")
    with pytest.raises(ValueError):
        record_kernel_call("vectorized")
    prov = kernel_provenance()
    assert prov["mode"] == "mixed"
    assert prov["counters"]["lut_calls"] == 1
    registry = MetricsRegistry()
    publish_kernel_metrics(registry)
    publish_kernel_metrics(registry)  # idempotent: gauges are set, not added
    exported = registry.to_json()
    assert exported["repro_kernel_lut_calls"]["series"][0]["value"] == 1
    assert exported["repro_kernel_walk_calls"]["series"][0]["value"] == 1
    reset_kernel_counters()


def test_manifest_records_kernel_provenance():
    from repro.obs import build_manifest

    manifest = build_manifest()
    assert "kernels" in manifest
    assert manifest["kernels"]["max_table_assoc"] == MAX_TABLE_ASSOC
    assert set(manifest["kernels"]["counters"]) >= {
        "compiles", "lut_calls", "walk_calls",
    }


def test_table_memory_footprint_k16():
    """3 tables x 512K entries x 2 bytes + 64KB victim ~= 3.06 MiB."""
    tables = compile_tables(16, scrambled_ipv(16, seed=99))
    S = 1 << 15
    expected = 2 * (S + 3 * S * 16)
    assert tables.nbytes == expected
