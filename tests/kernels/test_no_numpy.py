"""The no-numpy fallback of :mod:`repro.kernels.tables`, actually run.

The ``except ImportError`` arm and the pure-Python compile path used to
be dead weight on CI machines (numpy is always importable there), so a
regression in them would ship silently.  These tests force the fallback
two ways — monkeypatching the module seam and re-importing under
``REPRO_FORCE_NO_NUMPY=1`` in a subprocess — and pin that the
pure-Python tables are bit-identical to the numpy-compiled ones.
"""

import os
import subprocess
import sys

import pytest

from repro.kernels import tables as ktables
from repro.kernels.tables import (
    MAX_TABLE_ASSOC,
    PURE_PYTHON_MAX_ASSOC,
    clear_kernel_cache,
    compile_tables,
    numpy_or_none,
    resolve_kernel,
    tables_supported,
)

pytestmark = pytest.mark.skipif(
    numpy_or_none() is None,
    reason="these tests compare the fallback against numpy-built tables",
)


@pytest.fixture
def forced_no_numpy(monkeypatch):
    """Disable numpy at the module seam with clean table caches.

    The base-table cache must be cleared on both sides of the patch:
    entries compiled *with* numpy must not leak into the no-numpy run,
    and the polluted no-numpy entries must not survive into later tests.
    """
    clear_kernel_cache()
    saved = dict(ktables._BASE_TABLES)
    ktables._BASE_TABLES.clear()
    monkeypatch.setattr(ktables, "_np", None)
    yield
    ktables._BASE_TABLES.clear()
    ktables._BASE_TABLES.update(saved)
    clear_kernel_cache()


def ipv_for(k, salt=3):
    import random

    rng = random.Random(salt + k)
    return tuple(rng.randrange(k) for _ in range(k + 1))


class TestPurePythonCompile:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_tables_bit_identical_to_numpy(self, k, forced_no_numpy):
        entries = ipv_for(k)
        pure = compile_tables(k, entries)
        assert pure is not None
        # Recompile the same (k, entries) with numpy restored.
        ktables._BASE_TABLES.clear()
        clear_kernel_cache()
        ktables._np = numpy = __import__("numpy")
        try:
            accel = compile_tables(k, entries)
        finally:
            ktables._np = None  # fixture teardown restores the real seam
        assert pure.victim == accel.victim
        assert pure.pos == accel.pos
        assert pure.hit == accel.hit
        assert pure.fill == accel.fill

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_supported_up_to_pure_python_limit(self, k, forced_no_numpy):
        assert tables_supported(k)
        assert compile_tables(k, ipv_for(k)) is not None

    def test_k16_unsupported_without_numpy(self, forced_no_numpy):
        assert PURE_PYTHON_MAX_ASSOC < MAX_TABLE_ASSOC
        assert not tables_supported(MAX_TABLE_ASSOC)
        assert compile_tables(MAX_TABLE_ASSOC, ipv_for(16)) is None
        with pytest.raises(ValueError, match="numpy required"):
            resolve_kernel("lut", MAX_TABLE_ASSOC, ipv_for(16))
        # "auto" falls back to the walk (None tables), never raises.
        assert resolve_kernel("auto", MAX_TABLE_ASSOC, ipv_for(16)) is None

    def test_numpy_or_none_reflects_patch(self, forced_no_numpy):
        assert numpy_or_none() is None


class TestForcedImportEnv:
    def test_repro_force_no_numpy_takes_import_error_arm(self):
        """A fresh interpreter under REPRO_FORCE_NO_NUMPY=1 must compile
        pure-Python tables that match this process's numpy-built ones."""
        k = 8
        entries = ipv_for(k)
        code = (
            "import hashlib\n"
            "from repro.kernels import tables as t\n"
            "assert t.numpy_or_none() is None\n"
            f"assert not t.tables_supported({MAX_TABLE_ASSOC})\n"
            f"tab = t.compile_tables({k}, {entries!r})\n"
            "digest = hashlib.sha256(tab.victim.tobytes()"
            " + tab.pos.tobytes() + tab.hit.tobytes()"
            " + tab.fill.tobytes()).hexdigest()\n"
            "print(digest)\n"
        )
        env = dict(os.environ, REPRO_FORCE_NO_NUMPY="1")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
        import hashlib

        here = compile_tables(k, entries)
        digest = hashlib.sha256(
            here.victim.tobytes() + here.pos.tobytes()
            + here.hit.tobytes() + here.fill.tobytes()
        ).hexdigest()
        assert out.stdout.strip() == digest

    def test_columnar_engine_refuses_in_subprocess(self):
        """Without numpy the columnar engine raises ColumnarUnavailable —
        it must not silently fall back to a scalar path."""
        code = (
            "from repro.engine.columnar import (BatchSimulator,"
            " ColumnarUnavailable, columnar_supported)\n"
            "assert not columnar_supported(4)\n"
            "try:\n"
            "    BatchSimulator(16, 4, [(0, 0, 0, 0, 0)])\n"
            "except ColumnarUnavailable as exc:\n"
            "    assert 'REPRO_FORCE_NO_NUMPY' in str(exc)\n"
            "else:\n"
            "    raise SystemExit('BatchSimulator ran without numpy')\n"
        )
        env = dict(os.environ, REPRO_FORCE_NO_NUMPY="1")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
