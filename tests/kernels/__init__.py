"""Tests for the precompiled PLRU transition-table kernels."""
