"""Tests for the shared-LLC multi-core extension."""

import pytest

from repro.eval import default_config
from repro.eval.multicore import run_multicore

QUICK = default_config(trace_length=8000)


class TestMulticore:
    def test_single_core_equals_alone(self):
        """With one core the shared and alone runs are identical."""
        result = run_multicore("lru", ["453.povray"], config=QUICK)
        core = result.cores[0]
        assert core.misses == core.alone_misses
        assert result.weighted_speedup == pytest.approx(1.0)

    def test_sharing_degrades_each_core(self):
        """Two memory-hungry cores on one LLC must slow each other down."""
        result = run_multicore(
            "lru", ["462.libquantum", "436.cactusADM"], config=QUICK
        )
        assert result.weighted_speedup < 2.0
        for core in result.cores:
            assert core.misses >= core.alone_misses

    def test_friendly_core_suffers_from_thrashing_neighbour(self):
        result = run_multicore(
            "lru", ["400.perlbench", "462.libquantum"], config=QUICK
        )
        friendly = result.cores[0]
        assert friendly.slowdown > 1.0

    def test_dgippr_improves_weighted_speedup_over_lru(self):
        """The open question from the paper's future work: DGIPPR's
        adaptation should still help when the LLC is shared."""
        mix = ["462.libquantum", "482.sphinx3"]
        lru = run_multicore("lru", mix, config=QUICK)
        dgippr = run_multicore("dgippr", mix, config=QUICK)
        assert dgippr.total_misses < lru.total_misses

    def test_common_alone_baseline_ranks_policies(self):
        """With alone_policy pinned to LRU, a better shared policy shows a
        higher weighted speedup."""
        mix = ["436.cactusADM", "482.sphinx3"]
        lru = run_multicore("lru", mix, config=QUICK, alone_policy="lru")
        dgippr = run_multicore("dgippr", mix, config=QUICK, alone_policy="lru")
        assert dgippr.weighted_speedup > lru.weighted_speedup

    def test_rejects_empty_core_list(self):
        with pytest.raises(ValueError):
            run_multicore("lru", [])

    def test_address_spaces_disjoint(self):
        """Identical benchmarks on two cores must not share blocks."""
        result = run_multicore(
            "lru", ["453.povray", "453.povray"], config=QUICK
        )
        # If the address spaces collided the cores would share capacity and
        # hit in each other's data; cold misses per core stay equal to the
        # alone run's, so the miss counts match exactly for this tiny WS.
        for core in result.cores:
            assert core.misses == core.alone_misses
