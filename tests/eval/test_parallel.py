"""Tests for the parallel, cached experiment runner (repro.eval.parallel)."""

import json
import math
import subprocess
import sys

import pytest

from repro.eval import default_config
from repro.eval.parallel import (
    CACHE_SCHEMA,
    ParallelRunner,
    ResultCache,
    cache_key,
    code_version,
    resolve_cache_dir,
    run_matrix,
)
from repro.eval.runner import RunResult, run_benchmark
from repro.timing import LinearCPIModel
from repro.workloads import get_benchmark

QUICK = default_config(trace_length=4000)
BENCHES = ["429.mcf", "462.libquantum"]
POLICIES = [("LRU", "lru"), ("PLRU", "plru")]


def _serial_reference(config=QUICK, benches=BENCHES, policies=POLICIES):
    out = {}
    for bench in benches:
        for label, policy in [(p[0], p[1]) for p in policies]:
            out[(label, bench)] = run_benchmark(
                policy, get_benchmark(bench), config
            )
    return out


def _assert_matches_reference(matrix, reference):
    for (label, bench), ref in reference.items():
        got = matrix.get(label, bench)
        # Bit-identical: integers AND derived floats.
        assert got.misses == ref.misses
        assert got.instructions == ref.instructions
        assert got.mpki == ref.mpki
        assert [r.misses for r in got.runs] == [r.misses for r in ref.runs]
        assert [r.accesses for r in got.runs] == [r.accesses for r in ref.runs]
        assert [r.instructions for r in got.runs] == [
            r.instructions for r in ref.runs
        ]


class TestBitIdentical:
    def test_workers_one_matches_serial_runner(self):
        matrix = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES,
            workers=1, progress=False,
        )
        _assert_matches_reference(matrix, _serial_reference())

    def test_workers_four_matches_serial_runner(self):
        matrix = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES,
            workers=4, progress=False,
        )
        _assert_matches_reference(matrix, _serial_reference())

    def test_run_benchmark_wrapper_matches_serial(self):
        runner = ParallelRunner(workers=1, cache=None, progress=False)
        ref = run_benchmark("lru", get_benchmark("429.mcf"), QUICK)
        got = runner.run_benchmark("lru", "429.mcf", QUICK)
        assert (got.misses, got.instructions, got.mpki) == (
            ref.misses, ref.instructions, ref.mpki
        )

    def test_non_registry_benchmark_falls_back_to_serial(self):
        from repro.workloads.spec import Simpoint, SpecBenchmark
        from repro.trace import streaming

        custom = SpecBenchmark(
            "999.custom",
            [Simpoint(1.0, lambda n, cap, seed: streaming(n, seed=seed))],
            10.0,
            "stream",
        )
        runner = ParallelRunner(workers=1, cache=None, progress=False)
        got = runner.run_benchmark("lru", custom, QUICK)
        ref = run_benchmark("lru", custom, QUICK)
        assert got.misses == ref.misses


class TestCache:
    def test_warm_rerun_simulates_nothing(self, tmp_path):
        cold = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES,
            workers=2, cache=tmp_path, progress=False,
        )
        assert cold.metrics.simulated == cold.metrics.jobs_total
        assert cold.metrics.cache_hits == 0
        warm = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES,
            workers=2, cache=tmp_path, progress=False,
        )
        assert warm.metrics.simulated == 0
        assert warm.metrics.cache_hit_rate == 1.0
        _assert_matches_reference(warm, _serial_reference())

    def test_cache_survives_worker_count_change(self, tmp_path):
        run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES[:1],
            workers=1, cache=tmp_path, progress=False,
        )
        warm = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES[:1],
            workers=3, cache=tmp_path, progress=False,
        )
        assert warm.metrics.simulated == 0

    def test_result_roundtrip_with_miss_positions(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = RunResult(
            "t", "lru", accesses=10, misses=3, instructions=100,
            miss_positions=[1, 5, 9],
        )
        cache.put("ab" + "0" * 62, result)
        back = cache.get("ab" + "0" * 62)
        assert back.misses == 3
        assert back.miss_positions == [1, 5, 9]
        assert back.mpki == result.mpki

    def test_get_missing_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ff" + "0" * 62) is None

    def test_schema_mismatch_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": CACHE_SCHEMA + 1, "result": {}}))
        assert cache.get(key) is None

    def test_corrupt_entry_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = RunResult("t", "lru", accesses=1, misses=0, instructions=10)
        cache.put("ab" + "0" * 62, result)
        cache.put("cd" + "0" * 62, result)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_resolve_cache_dir(self, tmp_path):
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir(False) is None
        assert resolve_cache_dir(str(tmp_path)) == tmp_path
        assert resolve_cache_dir(True) is not None


class TestCacheKey:
    """Satellite: the key must react to every input and be process-stable."""

    def base(self):
        return cache_key(QUICK, "lru", {}, "429.mcf", 0)

    def test_deterministic(self):
        assert self.base() == cache_key(QUICK, "lru", {}, "429.mcf", 0)

    @pytest.mark.parametrize(
        "override",
        [
            {"num_sets": 128},
            {"assoc": 8},
            {"trace_length": 4001},
            {"warmup_fraction": 0.3},
            {"seed": 1},
            {"timing": LinearCPIModel(base_cpi=1.0)},
            {"timing": LinearCPIModel(miss_penalty=100.0)},
        ],
    )
    def test_every_config_field_changes_key(self, override):
        changed = QUICK.scaled(**override)
        assert cache_key(changed, "lru", {}, "429.mcf", 0) != self.base()

    def test_policy_name_changes_key(self):
        assert cache_key(QUICK, "plru", {}, "429.mcf", 0) != self.base()

    def test_benchmark_and_simpoint_change_key(self):
        assert cache_key(QUICK, "lru", {}, "470.lbm", 0) != self.base()
        assert cache_key(QUICK, "lru", {}, "429.mcf", 1) != self.base()

    def test_policy_kwargs_change_key(self):
        from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS

        a = cache_key(QUICK, "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}, "429.mcf", 0)
        b = cache_key(QUICK, "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}, "429.mcf", 0)
        c = cache_key(QUICK, "dgippr", {}, "429.mcf", 0)
        assert len({a, b, c}) == 3

    def test_scalar_kwarg_changes_key(self):
        a = cache_key(QUICK, "dgippr", {"counter_bits": 11}, "429.mcf", 0)
        b = cache_key(QUICK, "dgippr", {"counter_bits": 10}, "429.mcf", 0)
        assert a != b

    def test_collect_miss_positions_changes_key(self):
        assert cache_key(QUICK, "lru", {}, "429.mcf", 0, True) != self.base()

    def test_key_includes_code_version(self):
        assert code_version() and len(code_version()) == 16
        assert code_version() == code_version()  # memoized, stable

    def test_identical_configs_agree_across_processes(self):
        """The key must be machine/process stable (no PYTHONHASHSEED)."""
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.eval import default_config\n"
            "from repro.eval.parallel import cache_key\n"
            "cfg = default_config(trace_length=4000)\n"
            "print(cache_key(cfg, 'dgippr', {{'counter_bits': 11}}, "
            "'429.mcf', 1))\n"
        ).format(src=_src_dir())
        keys = set()
        for seed in ("0", "1234"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            keys.add(out.stdout.strip())
        local = cache_key(
            default_config(trace_length=4000),
            "dgippr", {"counter_bits": 11}, "429.mcf", 1,
        )
        assert keys == {local}


def _src_dir():
    import repro

    from pathlib import Path

    return str(Path(repro.__file__).resolve().parent.parent)


class TestMetrics:
    def test_metrics_shape(self, tmp_path):
        matrix = run_matrix(
            POLICIES, config=QUICK, benchmarks=BENCHES[:1],
            workers=1, cache=tmp_path, progress=False,
        )
        payload = matrix.metrics.as_dict()
        for field in (
            "jobs_total", "jobs_done", "cache_hits", "simulated",
            "cache_hit_rate", "sims_per_sec", "wall_time_sec", "job_seconds",
        ):
            assert field in payload
        assert payload["jobs_done"] == payload["jobs_total"]
        assert len(payload["job_seconds"]) == payload["simulated"]
        assert json.dumps(payload)  # JSON-exportable
        assert "jobs" in matrix.metrics.summary()

    def test_metrics_accumulate_on_reused_runner(self):
        runner = ParallelRunner(workers=1, cache=None, progress=False)
        runner.run_benchmark("lru", "453.povray", QUICK)
        first = runner.metrics.jobs_done
        runner.run_benchmark("plru", "453.povray", QUICK)
        assert runner.metrics.jobs_done > first

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(
                [("X", "lru"), ("X", "plru")],
                config=QUICK, benchmarks=BENCHES[:1], progress=False,
            )

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(
                POLICIES, config=QUICK, benchmarks=["999.nope"],
                progress=False,
            )

    def test_bare_policy_names_accepted(self):
        matrix = run_matrix(
            ["lru"], config=QUICK, benchmarks=BENCHES[:1], progress=False,
        )
        assert not math.isnan(matrix.get("lru", BENCHES[0]).mpki)
