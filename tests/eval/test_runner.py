"""Tests for the trace runner and benchmark aggregation."""

import pytest

from repro.eval import default_config, run_benchmark, run_trace
from repro.eval.runner import BenchmarkResult, RunResult
from repro.policies import BeladyPolicy, TrueLRUPolicy, make_policy
from repro.trace import Trace, looping, streaming
from repro.workloads import get_benchmark


class TestRunTrace:
    def test_streaming_misses_everything(self):
        config = default_config(trace_length=5000, warmup_fraction=0.2)
        trace = streaming(5000)
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.misses == result.accesses == 4000
        assert result.miss_rate == 1.0

    def test_warmup_excluded_from_stats(self):
        config = default_config(warmup_fraction=0.5)
        trace = looping(100, 2000)  # fits in cache: misses only in warmup
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.misses == 0
        assert result.accesses == 1000

    def test_mpki_scaling(self):
        config = default_config(warmup_fraction=0.0)
        trace = Trace(list(range(1000)), instructions=100_000)
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.mpki == pytest.approx(10.0)

    def test_collect_miss_positions(self):
        config = default_config(warmup_fraction=0.0)
        trace = Trace(list(range(100)), instructions=1000)
        result = run_trace(
            TrueLRUPolicy(64, 16), trace, config, collect_miss_positions=True
        )
        assert len(result.miss_positions) == 100
        assert result.miss_positions == sorted(result.miss_positions)

    def test_belady_annotation_automatic(self):
        config = default_config(warmup_fraction=0.1)
        trace = looping(1200, 6000)
        result = run_trace(BeladyPolicy(64, 16), trace, config)
        assert result.misses < result.accesses  # MIN retains part of the loop


class TestMeasuredInstructions:
    """Satellite: position-annotated traces use the *real* measured-window
    instruction count, not the uniform estimate."""

    def test_positions_drive_instruction_count(self):
        config = default_config(warmup_fraction=0.5)
        # 100 accesses over 10k instructions, but bunched: the first 50
        # land in instructions 0-49, the measured 50 in 9000-9049.  The
        # uniform estimate would claim 5000 measured instructions; the
        # annotation says 1000.
        positions = list(range(50)) + list(range(9000, 9050))
        trace = Trace(
            list(range(100)), instructions=10_000, positions=positions
        )
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.instructions == 10_000 - positions[50]
        assert result.instructions == 1000

    def test_unannotated_trace_keeps_uniform_estimate(self):
        config = default_config(warmup_fraction=0.5)
        trace = Trace(list(range(100)), instructions=10_000)
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.instructions == 5000

    def test_mpki_denominator_matches_miss_positions_window(self):
        config = default_config(warmup_fraction=0.5)
        positions = list(range(50)) + list(range(9000, 9050))
        trace = Trace(
            list(range(100)), instructions=10_000, positions=positions
        )
        result = run_trace(
            TrueLRUPolicy(64, 16), trace, config,
            collect_miss_positions=True,
        )
        # Every miss position (absolute instruction coordinates) sits
        # inside the measured window the denominator describes.
        window = 10_000 - positions[50]
        assert all(
            positions[50] <= p < 10_000 for p in result.miss_positions
        )
        assert result.mpki == pytest.approx(
            1000.0 * result.misses / window
        )


class TestTinyGeometry:
    """Satellite: set-dueling policies degrade gracefully on tiny caches
    instead of raising from leader-set assignment."""

    def test_dgippr_runs_on_two_set_cache(self):
        config = default_config(trace_length=2000).scaled(num_sets=2)
        policy = make_policy("dgippr", config.num_sets, config.assoc)
        result = run_trace(policy, streaming(2000), config)
        assert result.accesses > 0
        assert 0 <= result.misses <= result.accesses

    def test_drrip_runs_on_two_set_cache(self):
        config = default_config(trace_length=2000).scaled(num_sets=2)
        policy = make_policy("drrip", config.num_sets, config.assoc)
        result = run_trace(policy, streaming(2000), config)
        assert result.accesses > 0

    def test_tiny_benchmark_sweep(self):
        config = default_config(trace_length=2000).scaled(num_sets=2)
        result = run_benchmark("dgippr", get_benchmark("429.mcf"), config)
        assert result.misses >= 0


class TestRunBenchmark:
    def test_weighted_aggregation(self):
        config = default_config(trace_length=4000)
        bench = get_benchmark("429.mcf")
        result = run_benchmark("lru", bench, config)
        assert isinstance(result, BenchmarkResult)
        assert len(result.runs) == len(bench.simpoints)
        expected = sum(
            r.misses * w for r, w in zip(result.runs, bench.weights())
        )
        assert result.misses == pytest.approx(expected)

    def test_policy_kwargs_forwarded(self):
        from repro.core.ipv import lip_ipv

        config = default_config(trace_length=3000)
        bench = get_benchmark("462.libquantum")
        lipped = run_benchmark(
            "gippr", bench, config, policy_kwargs={"ipv": lip_ipv(16)}
        )
        default = run_benchmark("gippr", bench, config)
        assert lipped.misses != default.misses

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkResult("x", "lru", [], [1.0])


class TestWeightedMpki:
    """Satellite: aggregate MPKI must be weighted misses over weighted
    instructions — not a weighted average of per-run MPKIs, which
    disagrees whenever simpoints have unequal instruction counts."""

    def test_unequal_simpoint_lengths(self):
        runs = [
            RunResult("a", "lru", accesses=100, misses=10,
                      instructions=1_000),
            RunResult("b", "lru", accesses=100, misses=50,
                      instructions=100_000),
        ]
        agg = BenchmarkResult("x", "lru", runs, [0.5, 0.5])
        assert agg.mpki == pytest.approx(
            1000.0 * agg.misses / agg.instructions
        )
        # Regression guard: the buggy definition averaged per-run MPKIs.
        buggy = 0.5 * runs[0].mpki + 0.5 * runs[1].mpki
        assert abs(agg.mpki - buggy) > 1.0

    def test_equal_lengths_unchanged(self):
        """With equal instruction counts both definitions coincide, so the
        fix is value-neutral for the registry benchmarks."""
        runs = [
            RunResult("a", "lru", accesses=100, misses=10,
                      instructions=10_000),
            RunResult("b", "lru", accesses=100, misses=50,
                      instructions=10_000),
        ]
        agg = BenchmarkResult("x", "lru", runs, [0.25, 0.75])
        averaged = 0.25 * runs[0].mpki + 0.75 * runs[1].mpki
        assert agg.mpki == pytest.approx(averaged)

    def test_zero_instructions_gives_zero_mpki(self):
        runs = [RunResult("a", "lru", accesses=0, misses=0, instructions=0)]
        agg = BenchmarkResult("x", "lru", runs, [1.0])
        assert agg.mpki == 0.0
