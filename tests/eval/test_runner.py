"""Tests for the trace runner and benchmark aggregation."""

import pytest

from repro.eval import default_config, run_benchmark, run_trace
from repro.eval.runner import BenchmarkResult, RunResult
from repro.policies import BeladyPolicy, TrueLRUPolicy, make_policy
from repro.trace import Trace, looping, streaming
from repro.workloads import get_benchmark


class TestRunTrace:
    def test_streaming_misses_everything(self):
        config = default_config(trace_length=5000, warmup_fraction=0.2)
        trace = streaming(5000)
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.misses == result.accesses == 4000
        assert result.miss_rate == 1.0

    def test_warmup_excluded_from_stats(self):
        config = default_config(warmup_fraction=0.5)
        trace = looping(100, 2000)  # fits in cache: misses only in warmup
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.misses == 0
        assert result.accesses == 1000

    def test_mpki_scaling(self):
        config = default_config(warmup_fraction=0.0)
        trace = Trace(list(range(1000)), instructions=100_000)
        result = run_trace(TrueLRUPolicy(64, 16), trace, config)
        assert result.mpki == pytest.approx(10.0)

    def test_collect_miss_positions(self):
        config = default_config(warmup_fraction=0.0)
        trace = Trace(list(range(100)), instructions=1000)
        result = run_trace(
            TrueLRUPolicy(64, 16), trace, config, collect_miss_positions=True
        )
        assert len(result.miss_positions) == 100
        assert result.miss_positions == sorted(result.miss_positions)

    def test_belady_annotation_automatic(self):
        config = default_config(warmup_fraction=0.1)
        trace = looping(1200, 6000)
        result = run_trace(BeladyPolicy(64, 16), trace, config)
        assert result.misses < result.accesses  # MIN retains part of the loop


class TestRunBenchmark:
    def test_weighted_aggregation(self):
        config = default_config(trace_length=4000)
        bench = get_benchmark("429.mcf")
        result = run_benchmark("lru", bench, config)
        assert isinstance(result, BenchmarkResult)
        assert len(result.runs) == len(bench.simpoints)
        expected = sum(
            r.misses * w for r, w in zip(result.runs, bench.weights())
        )
        assert result.misses == pytest.approx(expected)

    def test_policy_kwargs_forwarded(self):
        from repro.core.ipv import lip_ipv

        config = default_config(trace_length=3000)
        bench = get_benchmark("462.libquantum")
        lipped = run_benchmark(
            "gippr", bench, config, policy_kwargs={"ipv": lip_ipv(16)}
        )
        default = run_benchmark("gippr", bench, config)
        assert lipped.misses != default.misses

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkResult("x", "lru", [], [1.0])
