"""Tests for the WN1/WI evolution methodology (scaled down)."""

import pytest

from repro.eval import default_config
from repro.eval.crossval import (
    evolve_duel_vectors,
    evolve_wn1_vectors,
    lru_miss_rates,
    partition_benchmarks,
)

QUICK = default_config(trace_length=3000)
BENCHES = ["453.povray", "447.dealII", "462.libquantum", "482.sphinx3"]


class TestMissRates:
    def test_ordering(self):
        rates = lru_miss_rates(BENCHES, QUICK)
        assert rates["453.povray"] < rates["462.libquantum"]

    def test_all_in_unit_interval(self):
        rates = lru_miss_rates(BENCHES, QUICK)
        assert all(0.0 <= r <= 1.0 for r in rates.values())


class TestPartition:
    def test_two_groups_split_friendly_thrash(self):
        groups = partition_benchmarks(BENCHES, 2, QUICK)
        assert len(groups) == 2
        assert "453.povray" in groups[0]  # friendliest first
        assert "462.libquantum" in groups[1] or "482.sphinx3" in groups[1]

    def test_single_group(self):
        groups = partition_benchmarks(BENCHES, 1, QUICK)
        assert len(groups) == 1
        assert sorted(groups[0]) == sorted(BENCHES)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            partition_benchmarks(BENCHES, 0, QUICK)


class TestEvolution:
    def test_duel_vectors_count(self):
        vectors = evolve_duel_vectors(
            BENCHES, 2, config=QUICK, population_size=6, generations=1
        )
        assert len(vectors) == 2
        assert all(v.k == 16 for v in vectors)

    def test_wn1_holds_out_each_benchmark(self):
        result = evolve_wn1_vectors(
            num_vectors=1,
            benchmarks=BENCHES[:2],
            config=QUICK,
            population_size=6,
            generations=1,
        )
        assert set(result) == set(BENCHES[:2])
        for vectors in result.values():
            assert len(vectors) == 1
