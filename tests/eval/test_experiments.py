"""Tests for the suite driver and its paper metrics."""

import math

import pytest

from repro.eval import PolicySpec, default_config, run_suite
from repro.eval.experiments import STANDARD_POLICIES

QUICK = default_config(trace_length=12_000)
BENCHES = ["462.libquantum", "447.dealII", "453.povray", "429.mcf"]


@pytest.fixture(scope="module")
def suite():
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("4-DGIPPR", "dgippr"),
        ],
        config=QUICK,
        benchmarks=BENCHES,
    )


class TestSuiteResult:
    def test_all_cells_present(self, suite):
        assert set(suite.labels) == {"LRU", "DRRIP", "4-DGIPPR"}
        for label in suite.labels:
            assert list(suite.results[label]) == BENCHES

    def test_baseline_speedup_is_one(self, suite):
        speedups = suite.speedups("LRU")
        assert all(v == pytest.approx(1.0) for v in speedups.values())

    def test_povray_unaffected(self, suite):
        """Tiny working set: every policy equals LRU (paper Section 5.1)."""
        for label in ("DRRIP", "4-DGIPPR"):
            assert suite.speedups(label)["453.povray"] == pytest.approx(1.0, abs=0.01)

    def test_libquantum_big_win(self, suite):
        """Thrash-scan: both adaptive policies crush LRU."""
        assert suite.speedups("DRRIP")["462.libquantum"] > 1.1
        assert suite.speedups("4-DGIPPR")["462.libquantum"] > 1.1

    def test_normalized_mpki_below_one_on_thrash(self, suite):
        norm = suite.normalized_mpki("4-DGIPPR")
        assert norm["462.libquantum"] < 0.95

    def test_memory_intensive_subset(self, suite):
        subset = suite.memory_intensive()
        assert "462.libquantum" in subset
        assert "453.povray" not in subset

    def test_sorted_benchmarks(self, suite):
        order = suite.sorted_benchmarks("DRRIP", metric="speedup")
        speedups = suite.speedups("DRRIP")
        assert [speedups[b] for b in order] == sorted(speedups.values())

    def test_geomean(self, suite):
        assert suite.geomean_speedup("4-DGIPPR") > 1.0

    def test_metrics_attached(self, suite):
        assert suite.metrics is not None
        assert suite.metrics.jobs_done == suite.metrics.jobs_total


class TestEmptySubset:
    """Satellite: reporting must survive an empty memory-intensive subset
    instead of crashing on an empty geometric mean."""

    def test_geomean_over_explicit_empty_list_is_nan(self, suite):
        # Regression guard: the seed silently fell back to the full suite
        # when passed an empty benchmark list.
        value = suite.geomean_speedup("DRRIP", benchmarks=[])
        assert math.isnan(value)

    def test_geomean_none_means_full_suite(self, suite):
        assert suite.geomean_speedup("DRRIP", benchmarks=None) == (
            suite.geomean_speedup("DRRIP")
        )

    def test_memory_intensive_summary_empty(self):
        from repro.eval import memory_intensive_summary

        small = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("DRRIP", "drrip")],
            config=QUICK,
            benchmarks=["453.povray"],  # tiny working set: no >1% gain
        )
        assert small.memory_intensive() == []
        text = memory_intensive_summary(small)
        assert "empty" in text
        assert "geomean" not in text  # no numbers rendered from nothing

    def test_memory_intensive_summary_nonempty(self, suite):
        from repro.eval import memory_intensive_summary

        text = memory_intensive_summary(suite, labels=("DRRIP", "4-DGIPPR"))
        assert "DRRIP" in text and "4-DGIPPR" in text
        assert "geomean" in text


class TestRunSuiteValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_suite(
                [PolicySpec("X", "lru"), PolicySpec("X", "plru")],
                config=QUICK,
                benchmarks=BENCHES[:1],
            )

    def test_baseline_required(self):
        with pytest.raises(ValueError):
            run_suite(
                [PolicySpec("PLRU", "plru")],
                config=QUICK,
                benchmarks=BENCHES[:1],
            )

    def test_standard_lineup_has_baseline(self):
        assert any(s.label == "LRU" for s in STANDARD_POLICIES)

    def test_parallel_matches_serial(self):
        serial = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("PLRU", "plru")],
            config=QUICK,
            benchmarks=BENCHES[:2],
            workers=0,
        )
        parallel = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("PLRU", "plru")],
            config=QUICK,
            benchmarks=BENCHES[:2],
            workers=2,
        )
        for label in serial.labels:
            assert serial.misses(label) == parallel.misses(label)
