"""Tests for the suite driver and its paper metrics."""

import pytest

from repro.eval import PolicySpec, default_config, run_suite
from repro.eval.experiments import STANDARD_POLICIES

QUICK = default_config(trace_length=12_000)
BENCHES = ["462.libquantum", "447.dealII", "453.povray", "429.mcf"]


@pytest.fixture(scope="module")
def suite():
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("4-DGIPPR", "dgippr"),
        ],
        config=QUICK,
        benchmarks=BENCHES,
    )


class TestSuiteResult:
    def test_all_cells_present(self, suite):
        assert set(suite.labels) == {"LRU", "DRRIP", "4-DGIPPR"}
        for label in suite.labels:
            assert list(suite.results[label]) == BENCHES

    def test_baseline_speedup_is_one(self, suite):
        speedups = suite.speedups("LRU")
        assert all(v == pytest.approx(1.0) for v in speedups.values())

    def test_povray_unaffected(self, suite):
        """Tiny working set: every policy equals LRU (paper Section 5.1)."""
        for label in ("DRRIP", "4-DGIPPR"):
            assert suite.speedups(label)["453.povray"] == pytest.approx(1.0, abs=0.01)

    def test_libquantum_big_win(self, suite):
        """Thrash-scan: both adaptive policies crush LRU."""
        assert suite.speedups("DRRIP")["462.libquantum"] > 1.1
        assert suite.speedups("4-DGIPPR")["462.libquantum"] > 1.1

    def test_normalized_mpki_below_one_on_thrash(self, suite):
        norm = suite.normalized_mpki("4-DGIPPR")
        assert norm["462.libquantum"] < 0.95

    def test_memory_intensive_subset(self, suite):
        subset = suite.memory_intensive()
        assert "462.libquantum" in subset
        assert "453.povray" not in subset

    def test_sorted_benchmarks(self, suite):
        order = suite.sorted_benchmarks("DRRIP", metric="speedup")
        speedups = suite.speedups("DRRIP")
        assert [speedups[b] for b in order] == sorted(speedups.values())

    def test_geomean(self, suite):
        assert suite.geomean_speedup("4-DGIPPR") > 1.0


class TestRunSuiteValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_suite(
                [PolicySpec("X", "lru"), PolicySpec("X", "plru")],
                config=QUICK,
                benchmarks=BENCHES[:1],
            )

    def test_baseline_required(self):
        with pytest.raises(ValueError):
            run_suite(
                [PolicySpec("PLRU", "plru")],
                config=QUICK,
                benchmarks=BENCHES[:1],
            )

    def test_standard_lineup_has_baseline(self):
        assert any(s.label == "LRU" for s in STANDARD_POLICIES)

    def test_parallel_matches_serial(self):
        serial = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("PLRU", "plru")],
            config=QUICK,
            benchmarks=BENCHES[:2],
            workers=0,
        )
        parallel = run_suite(
            [PolicySpec("LRU", "lru"), PolicySpec("PLRU", "plru")],
            config=QUICK,
            benchmarks=BENCHES[:2],
            workers=2,
        )
        for label in serial.labels:
            assert serial.misses(label) == parallel.misses(label)
