"""Unit tests for the console reporting layer (repro.eval.reporting).

These run on hand-built :class:`SuiteResult` matrices (no simulation), so
the formatting contract — alignment, sort order, geomean rows, the
empty-subset note — is pinned independently of the simulator.
"""

import math

import pytest

from repro.eval.config import default_config
from repro.eval.experiments import SuiteResult
from repro.eval.overhead import overhead_table
from repro.eval.reporting import (
    format_overhead,
    format_table,
    memory_intensive_summary,
    normalized_mpki_table,
    speedup_table,
)


class FakeResult:
    """Duck-typed stand-in for BenchmarkResult (misses/mpki/instructions)."""

    def __init__(self, misses, instructions=100_000):
        self.misses = misses
        self.instructions = instructions
        self.mpki = 1000.0 * misses / instructions


def build_suite(policy_misses):
    """SuiteResult over two benchmarks from {label: (missesA, missesB)}."""
    results = {
        label: {
            "benchA": FakeResult(pair[0]),
            "benchB": FakeResult(pair[1]),
        }
        for label, pair in policy_misses.items()
    }
    return SuiteResult(default_config(), results, baseline_label="LRU")


class TestFormatTable:
    def test_alignment_and_float_format(self):
        out = format_table(["name", "x"], [["a", 1.23456], ["bb", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "1.235" in out and "2.000" in out
        # Every row is padded to the same visible structure.
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        lines = out.splitlines()
        assert len(lines) == 2  # header + rule, no crash on max() of nothing
        assert lines[0].split() == ["h1", "h2"]

    def test_non_float_cells_pass_through(self):
        out = format_table(["n"], [[42], ["s"]])
        assert "42" in out and "s" in out


class TestSpeedupTable:
    def test_contains_geomean_and_benchmarks(self):
        suite = build_suite({
            "LRU": (1000, 2000),
            "DRRIP": (800, 2000),
            "PDP": (900, 1900),
        })
        out = speedup_table(suite)
        assert "GEOMEAN" in out
        assert "benchA" in out and "benchB" in out
        # Baseline column is excluded by default.
        header = out.splitlines()[0]
        assert "LRU" not in header.split()

    def test_sorted_ascending_by_drrip(self):
        suite = build_suite({
            "LRU": (1000, 1000),
            "DRRIP": (500, 1000),  # benchA speeds up, benchB does not
        })
        out = speedup_table(suite)
        rows = [line.split()[0] for line in out.splitlines()[2:]]
        # Ascending by DRRIP speedup: benchB (1.0) before benchA (>1).
        assert rows.index("benchB") < rows.index("benchA")


class TestNormalizedMpkiTable:
    def test_baseline_normalization(self):
        suite = build_suite({
            "LRU": (1000, 1000),
            "PLRU": (500, 2000),
        })
        out = normalized_mpki_table(suite)
        assert "0.500" in out and "2.000" in out
        assert "GEOMEAN" in out


class TestMemoryIntensiveSummary:
    def test_empty_subset_renders_note_instead_of_crashing(self):
        # DRRIP identical to LRU -> no benchmark gains >1% -> empty subset.
        suite = build_suite({
            "LRU": (1000, 1000),
            "DRRIP": (1000, 1000),
        })
        out = memory_intensive_summary(suite)
        assert "0 benchmarks" in out
        assert "empty" in out

    def test_nonempty_subset_lists_geomeans(self):
        suite = build_suite({
            "LRU": (1000, 1000),
            "DRRIP": (400, 400),
        })
        out = memory_intensive_summary(suite)
        assert "2 benchmarks" in out
        assert "DRRIP" in out
        value = float(out.splitlines()[-1].split()[-1])
        assert value > 1.0 and math.isfinite(value)

    def test_missing_drrip_label_raises(self):
        suite = build_suite({"LRU": (10, 10), "PLRU": (10, 10)})
        with pytest.raises(ValueError):
            memory_intensive_summary(suite)


class TestFormatOverhead:
    def test_renders_real_overhead_table(self):
        out = format_overhead(overhead_table())
        lines = out.splitlines()
        assert lines[0].split()[:2] == ["policy", "bits/set"]
        assert len(lines) > 3  # several policies
        # Two-decimal float formatting.
        assert any("." in token for token in lines[2].split())
