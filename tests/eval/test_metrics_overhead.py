"""Tests for metrics, overhead accounting and reporting."""

import math

import pytest

from repro.eval.metrics import (
    geometric_mean,
    memory_intensive_subset,
    normalized_map,
    speedup_map,
)
from repro.eval.overhead import overhead_row, overhead_table
from repro.eval.reporting import format_overhead, format_table
from repro.timing import LinearCPIModel


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_identity(self):
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_empty_sentinel_returned(self):
        """Satellite: callers may opt into a default instead of a crash."""
        assert math.isnan(geometric_mean([], empty=float("nan")))
        assert geometric_mean([], empty=1.0) == 1.0
        assert geometric_mean(iter(()), empty=None) is None

    def test_sentinel_ignored_when_nonempty(self):
        assert geometric_mean([2, 8], empty=123.0) == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestMaps:
    def test_speedup_map(self):
        timing = LinearCPIModel(base_cpi=1.0, miss_penalty=100)
        speedups = speedup_map(
            {"a": 100}, {"a": 50}, {"a": 10_000}, timing
        )
        assert speedups["a"] > 1.0

    def test_normalized_map_zero_baseline(self):
        assert normalized_map({"a": 0.0}, {"a": 5.0})["a"] == 1.0

    def test_normalized_map_ratio(self):
        assert normalized_map({"a": 10.0}, {"a": 9.0})["a"] == pytest.approx(0.9)

    def test_memory_intensive_threshold(self):
        speedups = {"a": 1.02, "b": 1.005, "c": 0.9}
        assert list(memory_intensive_subset(speedups)) == ["a"]


class TestOverhead:
    def test_paper_numbers(self):
        """Section 3.6: 15 bits/set GIPPR (~7KB), 64 LRU (32KB), 32 DRRIP
        (16KB), 64 PDP-4bit (32KB) at 4MB/16-way."""
        gippr = overhead_row("gippr")
        assert gippr["bits_per_set"] == 15
        assert gippr["bits_per_block"] == pytest.approx(0.9375)
        assert gippr["total_kilobytes"] == pytest.approx(7.5, abs=0.1)

        lru = overhead_row("lru")
        assert lru["bits_per_set"] == 64
        assert lru["total_kilobytes"] == pytest.approx(32.0)

        drrip = overhead_row("drrip")
        assert drrip["bits_per_set"] == 32
        assert drrip["total_kilobytes"] == pytest.approx(16.0, abs=0.01)

        pdp = overhead_row("pdp")
        assert pdp["bits_per_set"] == 64

    def test_dgippr_counter_overhead(self):
        row = overhead_row("dgippr")
        assert row["global_bits"] == 33  # three 11-bit counters
        assert row["bits_per_set"] == 15

    def test_drrip_more_than_twice_dgippr(self):
        """The paper's headline: DRRIP consumes more than twice the area."""
        dgippr = overhead_row("dgippr")["total_kilobytes"]
        drrip = overhead_row("drrip")["total_kilobytes"]
        assert drrip > 2 * dgippr

    def test_table_sorted(self):
        rows = overhead_table(["lru", "gippr", "drrip"])
        totals = [r["total_kilobytes"] for r in rows]
        assert totals == sorted(totals)

    def test_belady_reported_nan(self):
        row = overhead_row("belady")
        assert math.isnan(row["total_kilobytes"])


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text and "2.250" in text

    def test_format_overhead_runs(self):
        text = format_overhead(overhead_table(["gippr", "lru"]))
        assert "gippr" in text and "lru" in text
