"""Tests for experiment configuration and environment scaling."""

import pytest

from repro.eval.config import (
    ExperimentConfig,
    default_config,
    env_scale,
    paper_scale_config,
)


class TestExperimentConfig:
    def test_defaults(self):
        config = default_config()
        assert config.num_sets == 64
        assert config.assoc == 16
        assert config.capacity_blocks == 1024

    def test_paper_scale(self):
        config = paper_scale_config()
        assert config.num_sets == 4096
        assert config.capacity_blocks == 4096 * 16  # a 4MB LLC in blocks

    def test_scaled_overrides(self):
        config = default_config().scaled(trace_length=5000, seed=9)
        assert config.trace_length == 5000
        assert config.seed == 9
        assert config.num_sets == 64  # untouched fields preserved

    def test_warmup_accesses(self):
        config = default_config(trace_length=10_000, warmup_fraction=0.25)
        assert config.warmup_accesses == 2500

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=-0.1)

    def test_trace_length_floor(self):
        config = ExperimentConfig(trace_length=10, apply_env_scale=False)
        assert config.trace_length == 1000  # floored


class TestEnvScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert env_scale() == 2.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert env_scale() == 1.0

    def test_scale_applies_to_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        config = ExperimentConfig(trace_length=10_000)
        assert config.trace_length == 20_000

    def test_scale_clamped_above_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-5")
        assert env_scale() == 0.01
