"""Tests for the set-dueling instrumentation."""

import pytest

from repro.core.ipv import IPV
from repro.eval.dueling_trace import DuelTrace, record_duel
from repro.policies import DGIPPRPolicy, TreePLRUPolicy
from repro.trace import concatenate, noisy_loop, stack_distance

PHASE = 20_000


def phased_trace():
    friendly = stack_distance(
        list(range(300, 800, 50)), [1.0] * 10, PHASE, cold_fraction=0.15, seed=1
    )
    thrash = noisy_loop(1500, PHASE, noise=0.25, seed=2)
    return concatenate([friendly, thrash, friendly.slice(0, PHASE)], name="p")


class TestRecordDuel:
    def test_rejects_non_duelling_policy(self):
        with pytest.raises(ValueError):
            record_duel(TreePLRUPolicy(64, 16), phased_trace(), 64, 16)

    def test_tracks_phase_flips(self):
        pmru = IPV([0] * 17, name="pmru")
        plru = IPV([0] * 16 + [15], name="plru-ins")
        policy = DGIPPRPolicy(64, 16, ipvs=[pmru, plru], counter_bits=8)
        duel = record_duel(policy, phased_trace(), 64, 16, sample_every=256)
        # The duel must switch at least once into the thrash phase and the
        # occupancies must cover both policies.
        assert duel.switch_count >= 1
        occupancy = duel.occupancy()
        assert set(occupancy) <= {0, 1}
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_flip_latency(self):
        pmru = IPV([0] * 17, name="pmru")
        plru = IPV([0] * 16 + [15], name="plru-ins")
        policy = DGIPPRPolicy(64, 16, ipvs=[pmru, plru], counter_bits=8)
        duel = record_duel(policy, phased_trace(), 64, 16, sample_every=256)
        latencies = duel.flip_latency([PHASE])
        # The thrash phase starting at PHASE must trigger a switch within
        # the phase (the adaptivity claim of Section 3.5).
        assert latencies[0] is not None
        assert latencies[0] < PHASE

    def test_occupancy_static_run(self):
        duel = DuelTrace(switches=[(0, 1)], accesses=100, final_selected=1)
        assert duel.switch_count == 0
        assert duel.occupancy() == {1: 1.0}

    def test_flip_latency_no_switch(self):
        duel = DuelTrace(switches=[(0, 0)], accesses=100, final_selected=0)
        assert duel.flip_latency([50]) == [None]


class TestMixes:
    def test_named_mixes_resolve(self):
        from repro.workloads.mixes import get_mix, mix_names

        for name in mix_names():
            benchmarks = get_mix(name)
            assert len(benchmarks) in (2, 4)

    def test_unknown_mix(self):
        from repro.workloads.mixes import get_mix

        with pytest.raises(ValueError):
            get_mix("nonesuch")

    def test_mix_runs_through_multicore(self):
        from repro.eval import default_config, run_multicore
        from repro.workloads.mixes import get_mix

        result = run_multicore(
            "lru", get_mix("friendly2"),
            config=default_config(trace_length=4000),
        )
        # All-friendly control: sharing costs nearly nothing.
        assert result.weighted_speedup > 1.9
