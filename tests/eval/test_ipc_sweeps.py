"""Tests for IPC estimation and miss-ratio-curve sweeps."""

import pytest

from repro.eval import default_config
from repro.eval.ipc import estimate_ipc, ipc_speedup
from repro.eval.sweeps import crossover_size, miss_ratio_curve
from repro.trace import noisy_loop, looping, zipf

QUICK = default_config(trace_length=12_000)


class TestEstimateIPC:
    def test_friendly_trace_high_ipc(self):
        trace = zipf(300, 12_000, seed=1)
        result = estimate_ipc("lru", trace, config=QUICK)
        assert result.ipc > 2.0  # mostly hits on a 4-wide core

    def test_thrash_trace_low_ipc_under_lru(self):
        trace = looping(1400, 12_000, seed=2)
        friendly = estimate_ipc("lru", zipf(300, 12_000, seed=1), config=QUICK)
        thrash = estimate_ipc("lru", trace, config=QUICK)
        assert thrash.ipc < friendly.ipc

    def test_policy_kwargs(self):
        from repro.core.ipv import lip_ipv

        trace = looping(1400, 12_000, seed=3)
        lipped = estimate_ipc(
            "gippr", trace, config=QUICK, policy_kwargs={"ipv": lip_ipv(16)}
        )
        plain = estimate_ipc("plru", trace, config=QUICK)
        assert lipped.ipc > plain.ipc  # LIP retains the loop

    def test_ipc_speedup_direction(self):
        trace = noisy_loop(1400, 12_000, noise=0.3, seed=4)
        speedup = ipc_speedup("dgippr", "lru", trace, config=QUICK)
        assert speedup > 1.0

    def test_belady_supported(self):
        trace = looping(1200, 8_000, seed=5)
        result = estimate_ipc("belady", trace, config=QUICK)
        assert result.ipc > estimate_ipc("lru", trace, config=QUICK).ipc


class TestMissRatioCurve:
    def test_loop_cliff(self):
        """A 1,000-block loop: miss rate collapses once capacity covers it."""
        trace = looping(1000, 20_000, seed=6)
        curve = miss_ratio_curve("lru", trace, set_counts=(16, 32, 64, 128))
        assert curve[16 * 16] > 0.9  # 256 blocks: thrash
        assert curve[128 * 16] < 0.05  # 2048 blocks: fits

    def test_monotone_for_lru(self):
        """LRU's inclusion property: bigger caches never miss more."""
        trace = zipf(2000, 20_000, seed=7)
        curve = miss_ratio_curve("lru", trace)
        sizes = sorted(curve)
        for small, big in zip(sizes, sizes[1:]):
            assert curve[big] <= curve[small] + 1e-9

    def test_dgippr_cuts_the_cliff(self):
        """Below the loop's working set, adaptive insertion beats LRU."""
        trace = noisy_loop(1000, 25_000, noise=0.2, seed=8)
        lru = miss_ratio_curve("lru", trace, set_counts=(16, 32))
        dgippr = miss_ratio_curve("dgippr", trace, set_counts=(16, 32))
        assert dgippr[32 * 16] < lru[32 * 16]


class TestCrossover:
    def test_no_crossover_when_dominated(self):
        a = {256: 0.9, 512: 0.8, 1024: 0.4}
        b = {256: 0.5, 512: 0.4, 1024: 0.1}
        assert crossover_size(a, b) is None

    def test_crossover_detected(self):
        a = {256: 0.9, 512: 0.5, 1024: 0.1}
        b = {256: 0.5, 512: 0.6, 1024: 0.4}
        assert crossover_size(a, b) == 512

    def test_disjoint_sizes_rejected(self):
        with pytest.raises(ValueError):
            crossover_size({1: 0.1}, {2: 0.2})
