"""Tests for systematic (search-free) IPV derivation — future work item 3."""

import pytest

from repro.core.ipv import lru_ipv
from repro.eval import default_config
from repro.ga import FitnessEvaluator
from repro.ga.systematic import derive_ipv, derive_ipv_for_benchmarks


class TestDeriveFromHistogram:
    def test_streaming_profile_inserts_at_plru(self):
        histogram = [0] * 257  # no reuses at all
        ipv = derive_ipv(histogram, k=16)
        assert ipv.insertion == 15

    def test_friendly_profile_inserts_at_pmru(self):
        histogram = [0] * 257
        histogram[2] = 1000  # every reuse almost immediate
        ipv = derive_ipv(histogram, k=16)
        assert ipv.insertion == 0
        # Near-immediate reuse: promotions go (almost) to MRU.
        assert ipv.promotion(15) <= 1

    def test_distant_reuse_profile_mid_stack(self):
        histogram = [0] * 257
        histogram[40] = 500  # reuse beyond the associativity window
        histogram[4] = 500   # half the reuses very near
        ipv = derive_ipv(histogram, k=16)
        assert 0 < ipv.insertion < 15

    def test_never_degenerate(self):
        for profile in ([0] * 257, [100] * 257):
            ipv = derive_ipv(profile, k=16)
            assert not ipv.is_degenerate()

    def test_k_validation(self):
        with pytest.raises(ValueError):
            derive_ipv([0] * 10, k=1)


class TestDeriveForBenchmarks:
    @pytest.fixture(scope="class")
    def config(self):
        return default_config(trace_length=6000)

    def test_beats_lru_on_thrash_training(self, config):
        benches = ["462.libquantum", "436.cactusADM", "482.sphinx3"]
        ipv = derive_ipv_for_benchmarks(benches, config=config)
        evaluator = FitnessEvaluator(benches, config=config)
        assert evaluator.evaluate(ipv) > evaluator.evaluate(lru_ipv(16))

    def test_stays_near_lru_on_friendly_training(self, config):
        benches = ["453.povray", "416.gamess"]
        ipv = derive_ipv_for_benchmarks(benches, config=config)
        evaluator = FitnessEvaluator(benches, config=config)
        assert evaluator.evaluate(ipv) == pytest.approx(1.0, abs=0.05)

    def test_ga_still_wins(self, config):
        """The closed form is a floor, not a replacement for the GA."""
        from repro.ga import evolve_ipv

        benches = ["462.libquantum", "447.dealII", "429.mcf"]
        evaluator = FitnessEvaluator(benches, config=config)
        systematic = derive_ipv_for_benchmarks(benches, config=config)
        evolved = evolve_ipv(
            evaluator,
            population_size=12,
            generations=3,
            seed=2,
            seeds=[systematic],  # GA can only improve on the seed
        )
        assert evolved.best_fitness >= evaluator.evaluate(systematic) - 1e-9
