"""Tests for the analytic fitness surrogate, prefilter and memo.

Covers the correctness contracts the GA relies on: the model is exact on
the LRU vector (its calibration anchor), Mattson miss curves are
monotone, scores are deterministic and identical across the numpy and
pure-Python twins, the prefilter deactivates itself when its audit rho
collapses, kept survivors carry bit-identical simulated fitness, the
cross-generation memo never re-simulates a known tuple (including the
hill-climber's revisit pattern), and the columnar batch knobs resolve
with kwarg-over-env-over-default precedence.
"""

import logging
import random

import pytest

from repro.core.ipv import IPV, lru_ipv
from repro.eval.config import default_config
from repro.ga import FitnessEvaluator, hill_climb
from repro.ga.parallel import PopulationEvaluator
from repro.ga.surrogate import (
    FitnessMemo,
    SurrogateModel,
    SurrogatePrefilter,
    WorkloadFeatures,
    clear_feature_memo,
    features_for_trace,
    spearman_rho,
    trace_digest,
)


@pytest.fixture(scope="module")
def evaluator():
    config = default_config(trace_length=3000)
    return FitnessEvaluator(
        ["470.lbm", "482.sphinx3"], config=config, substrate="lru"
    )


@pytest.fixture(scope="module")
def model(evaluator):
    return SurrogateModel.from_evaluator(evaluator, cache_dir=None)


def random_batch(k, count, seed):
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(k) for _ in range(k + 1)) for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Features.
# ----------------------------------------------------------------------
class TestWorkloadFeatures:
    def test_miss_curve_monotone_in_depth(self, model):
        for _name, _w, _instr, _frac, feat in model.workloads:
            prev = feat.misses_at(1)
            for depth in range(2, feat.depth + 1):
                cur = feat.misses_at(depth)
                assert cur <= prev + 1e-9, (
                    f"misses_at({depth}) rose above misses_at({depth - 1})"
                )
                prev = cur
            # The curve bottoms out at the cold (compulsory) misses.
            assert feat.misses_at(feat.depth) >= feat.cold - 1e-9

    def test_fractional_depth_interpolates(self, model):
        feat = model.workloads[0][4]
        lo, hi = feat.misses_at(4), feat.misses_at(5)
        mid = feat.misses_at(4.5)
        assert min(lo, hi) - 1e-9 <= mid <= max(lo, hi) + 1e-9

    def test_payload_round_trip(self, model):
        feat = model.workloads[0][4]
        clone = WorkloadFeatures.from_payload(feat.to_payload())
        assert clone.to_payload() == feat.to_payload()
        for depth in (1, 3, feat.depth):
            assert clone.misses_at(depth) == feat.misses_at(depth)

    def test_trace_digest_is_order_sensitive(self):
        assert trace_digest([1, 2, 3]) != trace_digest([3, 2, 1])
        assert trace_digest([1, 2, 3]) == trace_digest([1, 2, 3])

    def test_disk_cache_round_trip(self, tmp_path):
        rng = random.Random(7)
        addresses = [rng.randrange(4096) for _ in range(2000)]
        clear_feature_memo()
        fresh = features_for_trace(addresses, 16, 32, cache_dir=tmp_path)
        clear_feature_memo()
        cached = features_for_trace(addresses, 16, 32, cache_dir=tmp_path)
        assert cached.to_payload() == fresh.to_payload()
        clear_feature_memo()


# ----------------------------------------------------------------------
# Model.
# ----------------------------------------------------------------------
class TestSurrogateModel:
    def test_lru_vector_is_exact_anchor(self, model):
        """On LRU the chain must reproduce the Mattson depth-k miss count.

        The conditional push probability q(p) has numerator == denominator
        at every position for the LRU vector, so the survival threshold is
        exactly the associativity — structurally, not approximately.
        """
        depths = model.effective_depths([lru_ipv(model.assoc)])
        assert depths == [float(model.assoc)]

    def test_scores_deterministic(self, model, evaluator):
        batch = random_batch(model.assoc, 64, seed=3)
        first = model.score_population(batch)
        assert model.score_population(batch) == first
        rebuilt = SurrogateModel.from_evaluator(evaluator, cache_dir=None)
        assert rebuilt.score_population(batch) == first

    def test_python_twin_matches_numpy(self, model):
        pytest.importorskip("numpy")
        batch = random_batch(model.assoc, 32, seed=11)
        vectorized = model.score_population(batch)
        scalar = model._score_py(batch)
        assert vectorized == pytest.approx(scalar, rel=1e-9)

    def test_rank_fidelity_on_lru_substrate(self, model, evaluator):
        """Audit-style check: surrogate ranks track simulated fitness."""
        batch = random_batch(model.assoc, 48, seed=5)
        surrogate = model.score_population(batch)
        simulated = evaluator.evaluate_many(batch)
        rho = spearman_rho(surrogate, simulated)
        assert rho is not None and rho >= 0.5

    def test_empty_population(self, model):
        assert model.score_population([]) == []


class TestSpearman:
    def test_perfect_and_inverse(self):
        assert spearman_rho([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0
        assert spearman_rho([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_degenerate_returns_none(self):
        assert spearman_rho([1, 2], [2, 1]) is None  # too few points
        assert spearman_rho([1, 1, 1], [1, 2, 3]) is None  # constant side

    def test_ties_averaged(self):
        rho = spearman_rho([1, 1, 2, 3], [1, 2, 3, 4])
        assert rho is not None and 0.9 < rho < 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2, 3], [1, 2])


# ----------------------------------------------------------------------
# Memo.
# ----------------------------------------------------------------------
class _CountingPopEval:
    """Stands in for PopulationEvaluator with a deterministic fitness."""

    def __init__(self):
        self.calls = 0

    def evaluate_all(self, batch):
        self.calls += len(batch)
        return [float(sum(entries)) for entries in batch]


class TestFitnessMemo:
    def test_dedup_and_accounting(self):
        memo = FitnessMemo()
        pop_eval = _CountingPopEval()
        batch = [(0, 1, 2, 3, 0), (1, 1, 1, 1, 1), (0, 1, 2, 3, 0)]
        first = memo.evaluate_all(pop_eval, batch)
        assert pop_eval.calls == 2  # in-batch duplicate deduplicated
        assert first[0] == first[2] == 6.0
        assert memo.misses == 2 and memo.hits == 1
        second = memo.evaluate_all(pop_eval, batch)
        assert pop_eval.calls == 2  # fully served from the memo
        assert second == first
        stats = memo.stats()
        assert stats["hits"] == 4 and stats["misses"] == 2
        assert stats["size"] == 2

    def test_bounded_eviction(self):
        memo = FitnessMemo(limit=2)
        pop_eval = _CountingPopEval()
        memo.evaluate_all(pop_eval, [(0, 0, 0, 0, 0)])
        memo.evaluate_all(pop_eval, [(1, 1, 1, 1, 1)])
        memo.evaluate_all(pop_eval, [(2, 2, 2, 2, 2)])
        assert len(memo) == 2
        assert memo.get((0, 0, 0, 0, 0)) is None  # oldest evicted


# ----------------------------------------------------------------------
# Prefilter.
# ----------------------------------------------------------------------
class _StubModel:
    """Scores candidates with a fixed callable (no trace features)."""

    def __init__(self, fn):
        self._fn = fn

    def score_population(self, ipvs):
        return [self._fn(tuple(entries)) for entries in ipvs]


class TestSurrogatePrefilter:
    def test_deactivates_below_rho_floor(self, caplog):
        # Surrogate scores are the *negation* of true fitness: the audit
        # measures rho ~ -1 and the prefilter must take itself offline.
        model = _StubModel(lambda entries: -float(sum(entries)))
        prefilter = SurrogatePrefilter(
            model, keep=0.25, audit=16, rho_floor=0.5, seed=0
        )
        pop_eval = _CountingPopEval()
        memo = FitnessMemo()
        batch = random_batch(4, 64, seed=1)
        with caplog.at_level(logging.WARNING, logger="repro.ga.surrogate"):
            prefilter.evaluate_batch(pop_eval, memo, batch)
        assert prefilter.active is False
        assert prefilter.rho is not None and prefilter.rho < 0
        assert any("prefilter disabled" in r.message for r in caplog.records)
        # The next batch must be simulated in full (fresh memo so the
        # count is exact: one call per distinct tuple).
        calls_before = pop_eval.calls
        kept = prefilter.evaluate_batch(pop_eval, FitnessMemo(), batch)
        assert len(kept) == len(batch)
        assert pop_eval.calls == calls_before + len(set(batch))

    def test_faithful_model_stays_active_and_culls(self):
        model = _StubModel(lambda entries: float(sum(entries)))
        prefilter = SurrogatePrefilter(
            model, keep=0.125, audit=8, rho_floor=0.5, seed=0
        )
        pop_eval = _CountingPopEval()
        kept = prefilter.evaluate_batch(pop_eval, FitnessMemo(),
                                        random_batch(4, 64, seed=2))
        assert prefilter.active is True
        assert prefilter.rho == 1.0
        assert prefilter.skipped > 0
        assert len(kept) < 64

    def test_small_batches_bypass_filtering(self):
        model = _StubModel(lambda entries: 0.0)
        prefilter = SurrogatePrefilter(
            model, keep=0.1, audit=8, rho_floor=0.5, seed=0
        )
        batch = random_batch(4, 8, seed=3)  # len == floor: no filtering
        kept = prefilter.evaluate_batch(_CountingPopEval(), FitnessMemo(),
                                        batch)
        assert len(kept) == len(batch)
        assert prefilter.scored == 0 and prefilter.audits == 0

    def test_kept_fitness_bit_identical(self, model, evaluator):
        prefilter = SurrogatePrefilter(
            model, keep=0.1, audit=8, rho_floor=-1.0, seed=0
        )
        batch = random_batch(model.assoc, 48, seed=9)
        with PopulationEvaluator(evaluator) as pop_eval:
            kept = prefilter.evaluate_batch(pop_eval, FitnessMemo(), batch)
        assert 0 < len(kept) < len(batch)
        for fitness, entries in kept:
            assert fitness == evaluator.evaluate(entries)

    def test_prefiltered_columnar_path_matches_scalar_walk(self):
        """Columnar-vs-walk differential, extended to the prefiltered path.

        On the default tree-PLRU substrate the prefilter's batch
        simulation auto-batches through the columnar engine; every kept
        fitness must equal the scalar walk evaluator's float exactly.
        """
        pytest.importorskip("numpy")
        config = default_config(trace_length=2000)
        batched = FitnessEvaluator(["429.mcf"], config=config, kernel="auto")
        walk = FitnessEvaluator(["429.mcf"], config=config, kernel="walk")
        model = SurrogateModel.from_evaluator(batched, cache_dir=None)
        prefilter = SurrogatePrefilter(
            model, keep=0.2, audit=8, rho_floor=-1.0, seed=0
        )
        batch = random_batch(model.assoc, 40, seed=17)
        with PopulationEvaluator(batched) as pop_eval:
            kept = prefilter.evaluate_batch(pop_eval, FitnessMemo(), batch)
        assert 0 < len(kept) < len(batch)
        for fitness, entries in kept:
            assert fitness == walk.evaluate(entries)

    def test_stats_surface(self):
        model = _StubModel(lambda entries: float(sum(entries)))
        prefilter = SurrogatePrefilter(
            model, keep=0.25, audit=4, rho_floor=0.5, seed=0
        )
        prefilter.evaluate_batch(_CountingPopEval(), FitnessMemo(),
                                 random_batch(4, 32, seed=4))
        stats = prefilter.stats()
        for key in ("active", "keep", "rho_floor", "scored", "simulated",
                    "skipped", "audits", "rho", "rho_min"):
            assert key in stats
        assert stats["scored"] == 32
        assert stats["simulated"] + stats["skipped"] == 32


# ----------------------------------------------------------------------
# Hill-climb memo routing (regression: revisits must not re-simulate).
# ----------------------------------------------------------------------
class _StubEvaluator:
    """Minimal FitnessEvaluator twin with a deterministic closed form."""

    def __init__(self, k=4):
        self.k = k
        self.calls = 0

    def _fitness(self, entries):
        # Smooth, single-optimum landscape so the climb terminates fast.
        return -float(sum((e - 1) ** 2 for e in entries))

    def evaluate_many(self, ipvs):
        batch = [tuple(ind) for ind in ipvs]
        self.calls += len(batch)
        return [self._fitness(entries) for entries in batch]

    def evaluate(self, ipv):
        return self.evaluate_many([ipv])[0]


class TestHillClimbMemo:
    def test_revisited_variants_not_resimulated(self):
        stub = _StubEvaluator(k=4)
        result = hill_climb(
            stub, IPV([3, 3, 3, 3, 3]), max_passes=3, workers=0
        )
        assert tuple(result.best.entries) == (1, 1, 1, 1, 1)
        # Every simulator call corresponds to a distinct tuple: the memo
        # absorbed all cross-pass revisits.
        assert stub.calls == result.memo["misses"]
        assert result.memo["hits"] > 0
        # The converged final pass revisits (k+1)*(k-1) variants and must
        # be free; the naive bill is one simulation per scan visit.
        assert stub.calls < result.evaluations

    def test_shared_memo_carries_across_runs(self):
        stub = _StubEvaluator(k=4)
        memo = FitnessMemo()
        hill_climb(stub, IPV([3, 3, 3, 3, 3]), max_passes=2, workers=0,
                   memo=memo)
        calls_after_first = stub.calls
        result = hill_climb(stub, IPV([3, 3, 3, 3, 3]), max_passes=2,
                            workers=0, memo=memo)
        # Identical second climb: the shared memo serves every variant.
        assert stub.calls == calls_after_first
        assert tuple(result.best.entries) == (1, 1, 1, 1, 1)
