"""Determinism of the parallel population evaluator and workload sharing.

The contract being tested: ``workers=N`` is bit-identical to the serial
path for every N, for every search driver (GA, hill climbing, random
sampling), and kernel selection (LUT vs bit-walk) never changes a single
fitness value — so ``same seed => same evolved vector`` holds across all
execution modes.
"""

import pytest

from repro.eval import default_config
from repro.ga import (
    FitnessEvaluator,
    PopulationEvaluator,
    evolve_ipv,
    hill_climb,
    random_search,
)
from repro.ga.fitness import _shared_workloads

BENCHMARKS = ["429.mcf", "462.libquantum"]


def make_evaluator(kernel="auto", trace_length=2_000):
    return FitnessEvaluator(
        benchmarks=BENCHMARKS,
        config=default_config(trace_length=trace_length),
        kernel=kernel,
    )


@pytest.fixture(scope="module")
def evaluator():
    return make_evaluator()


def some_individuals(k, n=6, seed=5):
    import random

    rng = random.Random(seed)
    return [tuple(rng.randrange(k) for _ in range(k + 1)) for _ in range(n)]


# ----------------------------------------------------------------------
# PopulationEvaluator.
# ----------------------------------------------------------------------
def test_parallel_scores_match_serial_in_order(evaluator):
    individuals = some_individuals(evaluator.k)
    with PopulationEvaluator(evaluator, workers=0) as serial:
        base = serial.evaluate_all(individuals)
    with PopulationEvaluator(evaluator, workers=2) as parallel:
        fanned = parallel.evaluate_all(individuals)
    assert fanned == base  # same values, same (submission) order


def test_population_evaluator_counts_and_close(evaluator):
    individuals = some_individuals(evaluator.k, n=3)
    pop = PopulationEvaluator(evaluator, workers=0)
    pop.evaluate_all(individuals)
    assert pop.evaluations == 3
    pop.close()
    pop.close()  # idempotent


def test_spec_roundtrip_preserves_fitness(evaluator):
    rebuilt = FitnessEvaluator.from_spec(evaluator.spec())
    for entries in some_individuals(evaluator.k, n=3, seed=9):
        assert rebuilt.evaluate(entries) == evaluator.evaluate(entries)


# ----------------------------------------------------------------------
# Search drivers: parallel == serial, LUT == walk.
# ----------------------------------------------------------------------
def test_evolve_ipv_parallel_identical_to_serial(evaluator):
    kwargs = dict(
        population_size=8, initial_population_size=12, generations=2, seed=3
    )
    serial = evolve_ipv(evaluator, workers=0, **kwargs)
    parallel = evolve_ipv(evaluator, workers=2, **kwargs)
    assert tuple(parallel.best.entries) == tuple(serial.best.entries)
    assert parallel.best_fitness == serial.best_fitness
    assert parallel.history == serial.history
    assert parallel.evaluations == serial.evaluations


def test_evolve_ipv_lut_identical_to_walk():
    kwargs = dict(
        population_size=6, initial_population_size=10, generations=2, seed=11
    )
    walk = evolve_ipv(make_evaluator(kernel="walk"), **kwargs)
    lut = evolve_ipv(make_evaluator(kernel="lut"), **kwargs)
    assert tuple(lut.best.entries) == tuple(walk.best.entries)
    assert lut.best_fitness == walk.best_fitness
    assert lut.history == walk.history


def test_hill_climb_parallel_identical_to_serial(evaluator):
    from repro.core.ipv import IPV

    start = IPV([0] * (evaluator.k + 1), name="start")
    values = [0, 1, evaluator.k - 1]
    serial = hill_climb(
        evaluator, start, candidate_values=values, max_passes=1, workers=0
    )
    parallel = hill_climb(
        evaluator, start, candidate_values=values, max_passes=1, workers=2
    )
    assert tuple(parallel.best.entries) == tuple(serial.best.entries)
    assert parallel.best_fitness == serial.best_fitness
    assert parallel.steps == serial.steps
    assert parallel.evaluations == serial.evaluations


def test_random_search_parallel_identical_to_serial(evaluator):
    serial = random_search(evaluator, samples=8, seed=2, workers=0)
    parallel = random_search(evaluator, samples=8, seed=2, workers=2)
    assert [(s, tuple(v.entries)) for s, v in serial] == [
        (s, tuple(v.entries)) for s, v in parallel
    ]


# ----------------------------------------------------------------------
# Workload sharing.
# ----------------------------------------------------------------------
def test_evaluators_share_workloads_by_reference():
    a = make_evaluator()
    b = make_evaluator()
    # Identical derivation key -> the module memo hands out the same lists.
    assert a._workloads[0][2] is b._workloads[0][2]
    cfg = a.config
    shared = _shared_workloads(
        BENCHMARKS[0], cfg.trace_length, cfg.capacity_blocks, cfg.seed
    )
    assert a._workloads[0][2] is shared[0][0]


def test_baseline_lru_cycles_shared_and_equal():
    a = make_evaluator()
    b = make_evaluator(kernel="walk")  # kernel doesn't affect the baseline
    assert a._lru_cycles == b._lru_cycles


def test_kernel_argument_validated():
    with pytest.raises(ValueError):
        make_evaluator(kernel="banana")


# ----------------------------------------------------------------------
# Columnar batching through the population evaluator.
# ----------------------------------------------------------------------
def test_columnar_serial_identical_to_walk_serial():
    individuals = some_individuals(16, n=6)
    walk = make_evaluator(kernel="walk")
    columnar = make_evaluator(kernel="columnar")
    with PopulationEvaluator(walk, workers=0) as serial_walk:
        base = serial_walk.evaluate_all(individuals)
    with PopulationEvaluator(columnar, workers=0) as serial_col:
        batched = serial_col.evaluate_all(individuals)
    assert batched == base


def test_columnar_parallel_identical_to_serial_in_order():
    individuals = some_individuals(16, n=7, seed=12)
    columnar = make_evaluator(kernel="columnar")
    with PopulationEvaluator(columnar, workers=0) as serial:
        base = serial.evaluate_all(individuals)
    with PopulationEvaluator(columnar, workers=2) as parallel:
        fanned = parallel.evaluate_all(individuals)
    assert fanned == base  # chunked lanes reassemble in submission order


def test_evolve_ipv_columnar_identical_to_walk():
    kwargs = dict(
        population_size=6, initial_population_size=10, generations=2, seed=11
    )
    walk = evolve_ipv(make_evaluator(kernel="walk"), **kwargs)
    columnar = evolve_ipv(make_evaluator(kernel="columnar"), **kwargs)
    assert tuple(columnar.best.entries) == tuple(walk.best.entries)
    assert columnar.best_fitness == walk.best_fitness
    assert columnar.history == walk.history
