"""Tests for the GA fitness function and its fast simulators."""

import random

import pytest

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.vectors import GIPPR_WI_VECTOR
from repro.eval.config import default_config
from repro.ga import (
    FitnessEvaluator,
    simulate_misses_lru_ipv,
    simulate_misses_plru_ipv,
)
from repro.policies import GIPPRPolicy, IPVLRUPolicy, TrueLRUPolicy


def cache_misses(policy, addresses, num_sets, assoc, warmup):
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    for a in addresses[:warmup]:
        cache.access(a)
    cache.reset_stats()
    for a in addresses[warmup:]:
        cache.access(a)
    return cache.stats.misses


class TestFastSimulators:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_plru_sim_matches_policy_exactly(self, seed):
        """The inlined PLRU-IPV simulator is bit-exact with GIPPRPolicy."""
        rng = random.Random(seed)
        addresses = [rng.randrange(400) for _ in range(8000)]
        for ipv in [lru_ipv(16), lip_ipv(16), GIPPR_WI_VECTOR]:
            fast = simulate_misses_plru_ipv(
                addresses, 8, 16, tuple(ipv.entries), warmup=1000
            )
            slow = cache_misses(GIPPRPolicy(8, 16, ipv=ipv), addresses, 8, 16, 1000)
            assert fast == slow, ipv.name

    @pytest.mark.parametrize("seed", [4, 5])
    def test_lru_sim_matches_policy_on_lru_vector(self, seed):
        """With the classic LRU vector both models are exactly LRU."""
        rng = random.Random(seed)
        addresses = [rng.randrange(300) for _ in range(8000)]
        fast = simulate_misses_lru_ipv(
            addresses, 8, 16, tuple(lru_ipv(16).entries), warmup=1000
        )
        slow = cache_misses(TrueLRUPolicy(8, 16), addresses, 8, 16, 1000)
        assert fast == slow

    @pytest.mark.parametrize("seed", [6, 7])
    def test_lru_sim_close_to_policy_on_general_vectors(self, seed):
        """General vectors may diverge transiently during cold fill (the
        fast model has no invalid-way positions) but must agree closely
        once sets are warm."""
        rng = random.Random(seed)
        addresses = [rng.randrange(350) for _ in range(12_000)]
        for ipv in [lip_ipv(16), IPV([0, 0, 1, 0, 3, 0, 1, 2, 1, 0, 5, 1, 0, 0, 1, 11, 13])]:
            fast = simulate_misses_lru_ipv(
                addresses, 8, 16, tuple(ipv.entries), warmup=4000
            )
            slow = cache_misses(
                IPVLRUPolicy(8, 16, ipv), addresses, 8, 16, 4000
            )
            assert abs(fast - slow) <= 0.05 * max(slow, 1), ipv.name

    def test_streaming_misses_everything(self):
        addresses = list(range(5000))
        for sim in (simulate_misses_lru_ipv, simulate_misses_plru_ipv):
            assert sim(addresses, 8, 16, tuple(lru_ipv(16).entries), 0) == 5000


class TestFitnessEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self):
        config = default_config(trace_length=5000)
        return FitnessEvaluator(
            ["462.libquantum", "429.mcf", "453.povray"], config=config
        )

    def test_lru_vector_fitness_is_one_ish(self, evaluator):
        """The LRU vector on PLRU substrate ~ PLRU ~ LRU: fitness ~ 1."""
        fitness = evaluator.evaluate(lru_ipv(16))
        assert 0.9 < fitness < 1.1

    def test_thrash_resistant_vector_wins(self, evaluator):
        """PLRU-insertion beats the LRU vector on this thrash-heavy mix."""
        fitness_plru_ins = evaluator.evaluate(IPV([0] * 16 + [15]))
        fitness_lru = evaluator.evaluate(lru_ipv(16))
        assert fitness_plru_ins > fitness_lru

    def test_rejects_wrong_length(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate([0] * 9)

    def test_per_benchmark_speedup_keys(self, evaluator):
        speedups = evaluator.per_benchmark_speedup(lru_ipv(16))
        assert set(speedups) == {"462.libquantum", "429.mcf", "453.povray"}

    def test_substrate_validation(self):
        with pytest.raises(ValueError):
            FitnessEvaluator(["429.mcf"], substrate="fifo")

    def test_lru_substrate(self):
        config = default_config(trace_length=4000)
        evaluator = FitnessEvaluator(
            ["462.libquantum"], config=config, substrate="lru"
        )
        assert evaluator.evaluate(lru_ipv(16)) == pytest.approx(1.0)


class TestMLPAwareFitness:
    """Future work item 2: MLP in the fitness function."""

    @pytest.fixture(scope="class")
    def evaluators(self):
        config = default_config(trace_length=5000)
        benches = ["462.libquantum", "429.mcf"]
        linear = FitnessEvaluator(benches, config=config)
        mlp = FitnessEvaluator(benches, config=config, mlp_aware=True)
        return linear, mlp

    def test_lru_vector_still_parity(self, evaluators):
        _, mlp = evaluators
        assert mlp.evaluate(lru_ipv(16)) == pytest.approx(1.0, abs=0.02)

    def test_mlp_compresses_thrash_gains(self, evaluators):
        """Clustered misses are cheaper under the MLP model, so saving
        them is worth less: thrash-vector fitness shrinks toward 1."""
        linear, mlp = evaluators
        thrash_vector = IPV([0] * 16 + [15])
        linear_fitness = linear.evaluate(thrash_vector)
        mlp_fitness = mlp.evaluate(thrash_vector)
        assert linear_fitness > 1.0
        assert 1.0 < mlp_fitness
        assert mlp_fitness < linear_fitness

    def test_miss_indices_collected(self):
        addresses = list(range(100))
        indices = []
        simulate_misses_plru_ipv(
            addresses, 4, 16, tuple(lru_ipv(16).entries), warmup=10,
            miss_indices=indices,
        )
        assert indices == list(range(10, 100))

    def test_burstiness_validated(self):
        with pytest.raises(ValueError):
            FitnessEvaluator(
                ["429.mcf"],
                config=default_config(trace_length=2000),
                mlp_aware=True,
                burstiness=1.5,
            )


class TestWarmupWindowValidation:
    """warmup >= len(addresses) used to yield a silently empty measured
    window (0 misses for every IPV); it must raise instead."""

    @pytest.mark.parametrize("sim", [
        simulate_misses_lru_ipv, simulate_misses_plru_ipv,
    ])
    def test_warmup_consuming_trace_raises(self, sim):
        entries = tuple(lru_ipv(16).entries)
        with pytest.raises(ValueError, match="measured window is empty"):
            sim(list(range(100)), 8, 16, entries, warmup=100)
        with pytest.raises(ValueError, match="measured window is empty"):
            sim(list(range(100)), 8, 16, entries, warmup=500)
        with pytest.raises(ValueError, match="measured window is empty"):
            sim([], 8, 16, entries, warmup=0)

    @pytest.mark.parametrize("sim", [
        simulate_misses_lru_ipv, simulate_misses_plru_ipv,
    ])
    def test_negative_warmup_raises(self, sim):
        entries = tuple(lru_ipv(16).entries)
        with pytest.raises(ValueError, match="non-negative"):
            sim(list(range(100)), 8, 16, entries, warmup=-1)

    def test_walk_and_lut_kernels_validate_too(self):
        entries = tuple(lru_ipv(16).entries)
        for kernel in ("walk", "lut", "columnar"):
            with pytest.raises(ValueError, match="measured window"):
                simulate_misses_plru_ipv(
                    list(range(50)), 8, 16, entries, warmup=50, kernel=kernel
                )

    def test_last_access_measured_is_fine(self):
        entries = tuple(lru_ipv(16).entries)
        assert simulate_misses_plru_ipv(
            list(range(100)), 8, 16, entries, warmup=99
        ) == 1


class TestColumnarKernel:
    """kernel="columnar" and the batched evaluate_many path."""

    @pytest.fixture(scope="class")
    def config(self):
        return default_config(trace_length=4000)

    def test_kernel_validation_accepts_columnar(self, config):
        evaluator = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="columnar"
        )
        assert evaluator.kernel == "columnar"
        with pytest.raises(ValueError):
            FitnessEvaluator(["429.mcf"], config=config, kernel="vector")

    def test_columnar_sim_matches_walk(self, config):
        rng = random.Random(4)
        addresses = [rng.randrange(600) for _ in range(6000)]
        for ipv in [lru_ipv(16), lip_ipv(16), GIPPR_WI_VECTOR]:
            walk = simulate_misses_plru_ipv(
                addresses, 8, 16, tuple(ipv.entries), 500, kernel="walk"
            )
            col = simulate_misses_plru_ipv(
                addresses, 8, 16, tuple(ipv.entries), 500, kernel="columnar"
            )
            assert col == walk, ipv.name

    def test_columnar_fitness_identical_to_walk(self, config):
        walk = FitnessEvaluator(
            ["462.libquantum", "429.mcf"], config=config, kernel="walk"
        )
        col = FitnessEvaluator(
            ["462.libquantum", "429.mcf"], config=config, kernel="columnar"
        )
        for ipv in [lru_ipv(16), IPV([0] * 16 + [15]), GIPPR_WI_VECTOR]:
            assert col.evaluate(ipv) == walk.evaluate(ipv)

    def test_evaluate_many_matches_evaluate_exactly(self, config):
        evaluator = FitnessEvaluator(
            ["462.libquantum", "429.mcf"], config=config, kernel="columnar"
        )
        population = [
            lru_ipv(16), lip_ipv(16), IPV([0] * 16 + [15]), GIPPR_WI_VECTOR,
            lru_ipv(16),  # duplicate lane
        ]
        batched = evaluator.evaluate_many(population)
        serial = [evaluator.evaluate(ipv) for ipv in population]
        assert batched == serial  # bit-identical, not approx

    def test_evaluate_many_auto_batches_only_large(self, config):
        from repro.engine.columnar import columnar_supported

        evaluator = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="auto"
        )
        small = [lru_ipv(16)] * 2
        large = [lru_ipv(16), lip_ipv(16), GIPPR_WI_VECTOR,
                 IPV([0] * 16 + [15])]
        assert not evaluator._columnar_batchable(len(small))
        if columnar_supported(16):
            assert evaluator._columnar_batchable(len(large))
        assert evaluator.evaluate_many(large) == [
            evaluator.evaluate(ipv) for ipv in large
        ]

    def test_min_lanes_kwarg_env_precedence(self, config, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR_MIN_LANES", raising=False)
        evaluator = FitnessEvaluator(["429.mcf"], config=config)
        assert evaluator.columnar_min_lanes == (
            FitnessEvaluator.COLUMNAR_AUTO_MIN_LANES
        )
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", "2")
        from_env = FitnessEvaluator(["429.mcf"], config=config)
        assert from_env.columnar_min_lanes == 2
        explicit = FitnessEvaluator(
            ["429.mcf"], config=config, columnar_min_lanes=7
        )
        assert explicit.columnar_min_lanes == 7

    def test_min_lanes_gates_auto_batching(self, config):
        from repro.engine.columnar import columnar_supported

        if not columnar_supported(16):
            pytest.skip("columnar engine needs numpy")
        eager = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="auto", columnar_min_lanes=2
        )
        assert eager._columnar_batchable(2)
        lazy = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="auto", columnar_min_lanes=64
        )
        assert not lazy._columnar_batchable(63)

    def test_min_lanes_survives_spec_round_trip(self, config):
        evaluator = FitnessEvaluator(
            ["429.mcf"], config=config, columnar_min_lanes=9
        )
        spec = evaluator.spec()
        assert spec["columnar_min_lanes"] == 9
        rebuilt = FitnessEvaluator.from_spec(spec)
        assert rebuilt.columnar_min_lanes == 9

    def test_evaluate_many_falls_back_scalar(self, config):
        evaluator = FitnessEvaluator(
            ["429.mcf"], config=config, substrate="lru"
        )
        population = [lru_ipv(16), lip_ipv(16)]
        assert not evaluator._columnar_batchable(len(population))
        assert evaluator.evaluate_many(population) == [
            evaluator.evaluate(ipv) for ipv in population
        ]

    def test_evaluate_many_validates_and_handles_empty(self, config):
        evaluator = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="columnar"
        )
        assert evaluator.evaluate_many([]) == []
        with pytest.raises(ValueError):
            evaluator.evaluate_many([[0] * 9])
        with pytest.raises(ValueError):
            evaluator.evaluate_many([[99] * 17])


class TestColumnarMemo:
    """The bounded module-level ColumnarTrace memo behind _columnar_trace."""

    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        from repro.ga.fitness import clear_workload_memo

        clear_workload_memo()
        yield
        clear_workload_memo()

    def _insert(self, key, addresses=(1, 2, 3), num_sets=2):
        from repro.ga.fitness import _shared_columnar_trace

        return _shared_columnar_trace(key, list(addresses), num_sets)

    def test_hit_returns_same_object_and_counts(self):
        from repro.ga.fitness import columnar_memo_stats

        first = self._insert(("b", 0))
        second = self._insert(("b", 0))
        assert first is second
        stats = columnar_memo_stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_lru_eviction_at_limit(self):
        from repro.ga.fitness import (
            _COLUMNAR_MEMO,
            _COLUMNAR_MEMO_LIMIT,
            columnar_memo_stats,
        )

        for i in range(_COLUMNAR_MEMO_LIMIT):
            self._insert(("bench", i))
        self._insert(("bench", 0))  # refresh the oldest entry
        self._insert(("bench", _COLUMNAR_MEMO_LIMIT))  # forces one evict
        stats = columnar_memo_stats()
        assert stats["size"] == _COLUMNAR_MEMO_LIMIT
        assert stats["evictions"] == 1
        # The refreshed key survived; the true LRU victim did not.
        assert ("bench", 0) in _COLUMNAR_MEMO
        assert ("bench", 1) not in _COLUMNAR_MEMO

    def test_clear_resets_memo_and_stats(self):
        from repro.ga.fitness import clear_workload_memo, columnar_memo_stats

        self._insert(("b", 0))
        self._insert(("b", 0))
        clear_workload_memo()
        stats = columnar_memo_stats()
        assert stats["size"] == 0
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0
        assert stats["hit_rate"] == 0.0

    def test_publish_gauges_idempotent(self):
        from repro.ga.fitness import (
            columnar_memo_stats,
            publish_columnar_memo_gauges,
        )
        from repro.obs.metrics import MetricsRegistry, parse_prometheus

        self._insert(("b", 0))
        self._insert(("b", 0))
        registry = MetricsRegistry()
        publish_columnar_memo_gauges(registry)
        publish_columnar_memo_gauges(registry)  # set, not inc
        parsed = parse_prometheus(registry.to_prometheus())
        stats = columnar_memo_stats()
        for field in ("size", "limit", "hits", "misses", "evictions",
                      "hit_rate"):
            name = f"repro_columnar_memo_{field}"
            assert parsed[(name, ())] == pytest.approx(stats[field])

    def test_evaluators_share_trace_by_derivation(self):
        from repro.engine.columnar import columnar_supported
        from repro.ga.fitness import columnar_memo_stats

        if not columnar_supported(16):
            pytest.skip("columnar engine requires numpy")
        config = default_config(trace_length=600)
        population = [lru_ipv(16), lip_ipv(16), GIPPR_WI_VECTOR,
                      IPV([0] * 16 + [15])]
        first = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="columnar"
        )
        first.evaluate_many(population)
        after_first = columnar_memo_stats()
        workloads = len(first._workload_keys)  # one trace per simpoint
        assert after_first["size"] == workloads
        # A rebuilt evaluator with the same derivation reuses the layouts.
        second = FitnessEvaluator(
            ["429.mcf"], config=config, kernel="columnar"
        )
        second.evaluate_many(population)
        after_second = columnar_memo_stats()
        assert after_second["size"] == workloads
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]
