"""Tests for the GA, random search and hill climbing."""

import random

import pytest

from repro.core.ipv import IPV, lru_ipv
from repro.eval.config import default_config
from repro.ga import (
    FitnessEvaluator,
    GAResult,
    crossover,
    evolve_ipv,
    hill_climb,
    mutate,
    random_search,
)


@pytest.fixture(scope="module")
def evaluator():
    config = default_config(trace_length=4000)
    return FitnessEvaluator(
        ["462.libquantum", "482.sphinx3", "447.dealII"], config=config
    )


class TestOperators:
    def test_crossover_prefix_suffix(self):
        rng = random.Random(0)
        a = tuple(range(17))
        b = tuple(16 - i for i in range(17))
        child = crossover(a, b, rng)
        assert len(child) == 17
        # Child must be a prefix of a followed by a suffix of b.
        cut = next(i for i in range(17) if child[i] != a[i])
        assert child[:cut] == a[:cut]
        assert child[cut:] == b[cut:]

    def test_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover((1, 2), (1, 2, 3), random.Random(0))

    def test_mutate_changes_at_most_one_entry(self):
        rng = random.Random(1)
        base = tuple([3] * 17)
        for _ in range(100):
            mutated = mutate(base, 16, rng, rate=1.0)
            diffs = sum(x != y for x, y in zip(base, mutated))
            assert diffs <= 1
            assert all(0 <= e < 16 for e in mutated)

    def test_mutate_rate_zero_is_identity(self):
        rng = random.Random(2)
        base = tuple(range(16)) + (0,)
        assert mutate(base, 16, rng, rate=0.0) == base


class TestGeneticAlgorithm:
    def test_evolves_better_than_lru_on_thrash_mix(self, evaluator):
        """On a thrash-dominated training set the GA must find a vector
        beating the LRU vector — the paper's core proof of concept."""
        result = evolve_ipv(
            evaluator,
            population_size=16,
            initial_population_size=32,
            generations=5,
            seed=3,
            seeds=[lru_ipv(16)],
        )
        assert isinstance(result, GAResult)
        lru_fitness = evaluator.evaluate(lru_ipv(16))
        assert result.best_fitness > lru_fitness
        assert result.best_fitness == pytest.approx(
            evaluator.evaluate(result.best)
        )

    def test_history_is_monotone(self, evaluator):
        """Elitism makes the best-per-generation non-decreasing."""
        result = evolve_ipv(
            evaluator, population_size=10, generations=4, seed=5
        )
        assert all(
            b >= a for a, b in zip(result.history, result.history[1:])
        )

    def test_deterministic_for_seed(self, evaluator):
        a = evolve_ipv(evaluator, population_size=8, generations=2, seed=9)
        b = evolve_ipv(evaluator, population_size=8, generations=2, seed=9)
        assert a.best == b.best

    def test_seed_vectors_injected(self, evaluator):
        """A very strong seed must survive elitism to the final answer."""
        strong = IPV([0] * 16 + [15])
        result = evolve_ipv(
            evaluator,
            population_size=8,
            initial_population_size=8,
            generations=1,
            seed=1,
            seeds=[strong],
        )
        assert result.best_fitness >= evaluator.evaluate(strong) - 1e-9


class TestParallelism:
    def test_ga_workers_match_serial(self, evaluator):
        serial = evolve_ipv(
            evaluator, population_size=8, generations=2, seed=11, workers=0
        )
        parallel = evolve_ipv(
            evaluator, population_size=8, generations=2, seed=11, workers=2
        )
        assert serial.best == parallel.best
        assert serial.best_fitness == pytest.approx(parallel.best_fitness)

    def test_random_search_workers_match_serial(self, evaluator):
        serial = random_search(evaluator, samples=12, seed=2, workers=0)
        parallel = random_search(evaluator, samples=12, seed=2, workers=2)
        assert [s for s, _ in serial] == pytest.approx(
            [s for s, _ in parallel]
        )


class TestRandomSearch:
    def test_sorted_ascending(self, evaluator):
        results = random_search(evaluator, samples=20, seed=0)
        scores = [s for s, _ in results]
        assert scores == sorted(scores)
        assert len(results) == 20

    def test_majority_of_random_vectors_lose_to_lru(self):
        """Figure 1's shape: on recency-friendly workloads (most of SPEC)
        the bulk of random IPVs are inferior to LRU."""
        friendly = FitnessEvaluator(
            ["447.dealII", "400.perlbench", "445.gobmk"],
            config=default_config(trace_length=4000),
        )
        results = random_search(friendly, samples=40, seed=1)
        lru_fitness = friendly.evaluate(lru_ipv(16))
        losers = sum(1 for s, _ in results if s < lru_fitness)
        assert losers > 20

    def test_sample_validation(self, evaluator):
        with pytest.raises(ValueError):
            random_search(evaluator, samples=0)


class TestHillClimb:
    def test_never_worse_than_start(self, evaluator):
        start = lru_ipv(16)
        result = hill_climb(
            evaluator, start, candidate_values=[0, 8, 15], max_passes=1
        )
        assert result.best_fitness >= result.start_fitness
        assert result.improvement >= 0

    def test_steps_recorded_with_improvements(self, evaluator):
        result = hill_climb(
            evaluator, lru_ipv(16), candidate_values=[15], max_passes=1
        )
        for index, value, fitness in result.steps:
            assert 0 <= index <= 16
            assert value == 15
