"""The committed serving corpus: drift is caught and offenders named.

The serving cells pin the whole pipeline — Zipf/churn/flash generator,
set-shard binning, streaming engines — as one miss count per
``seed x policy x alpha`` cell.  The checker recomputes every cell via
the single-shard scalar reference and (with numpy) the sharded columnar
front-end, which doubles as the sharding bit-identity conformance gate.
"""

import json

import pytest

from repro.verify.goldens import (
    DEFAULT_SERVING_GOLDENS_PATH,
    SERVING_GOLDEN_ALPHAS,
    SERVING_GOLDEN_POLICIES,
    SERVING_GOLDEN_SCHEMA,
    SERVING_GOLDEN_SEEDS,
    SERVING_GOLDEN_SHARDS,
    check_serving_goldens,
    compute_serving_golden,
    serving_golden_key,
    serving_golden_matrix,
)


class TestCommittedServingCorpus:
    def test_corpus_file_is_committed(self):
        assert DEFAULT_SERVING_GOLDENS_PATH.exists(), (
            "tests/goldens/serving_goldens.json must be committed; "
            "regenerate with scripts/regen_goldens.py"
        )

    def test_corpus_matches_current_behaviour(self):
        drift, checked = check_serving_goldens()
        assert drift == [], "\n".join(drift)
        assert checked == len(serving_golden_matrix())

    def test_matrix_shape(self):
        cells = serving_golden_matrix()
        assert len(cells) == (
            len(SERVING_GOLDEN_SEEDS)
            * len(SERVING_GOLDEN_POLICIES)
            * len(SERVING_GOLDEN_ALPHAS)
        )
        keys = {serving_golden_key(c) for c in cells}
        assert len(keys) == len(cells)

    def test_schema_and_metadata(self):
        payload = json.loads(DEFAULT_SERVING_GOLDENS_PATH.read_text())
        assert payload["schema"] == SERVING_GOLDEN_SCHEMA
        assert len(payload["entries"]) == len(serving_golden_matrix())


class TestServingDriftDetection:
    def test_tampered_entry_names_cell_and_engine(self, tmp_path):
        payload = json.loads(DEFAULT_SERVING_GOLDENS_PATH.read_text())
        key = serving_golden_key(serving_golden_matrix()[0])
        payload["entries"][key] += 1
        tampered = tmp_path / "serving_goldens.json"
        tampered.write_text(json.dumps(payload))
        drift, _ = check_serving_goldens(tampered)
        assert drift, "tampered corpus must drift"
        assert all(key in line for line in drift)
        assert any("scalar" in line for line in drift)

    def test_missing_corpus_is_drift_not_pass(self, tmp_path):
        drift, checked = check_serving_goldens(tmp_path / "absent.json")
        assert checked == 0
        assert drift and "missing" in drift[0]

    def test_unknown_schema_is_drift(self, tmp_path):
        bad = tmp_path / "serving_goldens.json"
        bad.write_text(json.dumps({"schema": "nope/9", "entries": {}}))
        drift, checked = check_serving_goldens(bad)
        assert checked == 0
        assert drift and "schema" in drift[0]


class TestShardingBitIdentity:
    """The acceptance contract: sharded == single-shard scalar, exactly."""

    @pytest.mark.parametrize("cell", serving_golden_matrix()[:4])
    def test_sharded_columnar_equals_scalar_reference(self, cell):
        pytest.importorskip("numpy")
        reference = compute_serving_golden(cell, engine="scalar", shards=1)
        sharded = compute_serving_golden(
            cell, engine="columnar", shards=SERVING_GOLDEN_SHARDS
        )
        assert sharded == reference

    def test_scalar_sharding_also_bit_identical(self):
        cell = serving_golden_matrix()[0]
        reference = compute_serving_golden(cell, engine="scalar", shards=1)
        sharded = compute_serving_golden(cell, engine="scalar", shards=8)
        assert sharded == reference
