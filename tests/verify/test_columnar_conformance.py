"""Columnar-engine conformance cells and the columnar golden corpus.

Two layers of pinning: the differential checks compare columnar against
walk *and* LUT (misses, miss indices, final positions, PSEL) on live
streams, and the committed golden corpus freezes exact miss counts per
(kind, stream, geometry, engine) so any engine divergence — including
one that affects all engines identically-wrongly — shows up as drift.
"""

import pytest

from repro.engine.columnar import columnar_supported
from repro.kernels.tables import numpy_or_none
from repro.verify.differential import (
    check_columnar_equality,
    check_duel_columnar_equality,
)
from repro.verify.goldens import (
    COLUMNAR_GOLDEN_BATCH,
    DEFAULT_COLUMNAR_GOLDENS_PATH,
    check_columnar_goldens,
    columnar_golden_key,
    columnar_golden_matrix,
    compute_columnar_golden,
)
from repro.verify.streams import generate_stream

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="columnar engine requires numpy"
)


def stream_for(num_sets, assoc, name="random-uniform", seed=11, n=2500):
    return generate_stream(name, seed, n, num_sets, assoc)


@needs_numpy
class TestDifferentialChecks:
    @pytest.mark.parametrize("num_sets,assoc", [(16, 2), (8, 4), (8, 8),
                                                (4, 16)])
    def test_columnar_equality_on_grid(self, num_sets, assoc):
        import random

        rng = random.Random(assoc)
        entries = [rng.randrange(assoc) for _ in range(assoc + 1)]
        accesses = stream_for(num_sets, assoc)
        failure = check_columnar_equality(
            num_sets, assoc, entries, accesses
        )
        assert failure is None, failure

    @pytest.mark.parametrize("num_sets,assoc", [(8, 4), (4, 16)])
    def test_duel_columnar_equality_on_grid(self, num_sets, assoc):
        pair = (
            tuple([0] * (assoc + 1)),
            tuple([assoc - 1] * (assoc + 1)),
        )
        accesses = stream_for(num_sets, assoc, seed=23)
        failure = check_duel_columnar_equality(
            num_sets, assoc, pair, accesses
        )
        assert failure is None, failure

    def test_checks_skip_without_support(self, monkeypatch):
        from repro.kernels import tables as ktables

        monkeypatch.setattr(ktables, "_np", None)
        assert check_columnar_equality(8, 16, [0] * 17, [1, 2, 3]) is None
        assert check_duel_columnar_equality(
            8, 16, ([0] * 17, [1] * 17), [1, 2, 3]
        ) is None

    def test_checks_skip_empty_stream(self):
        assert check_columnar_equality(8, 4, [0] * 5, []) is None


@needs_numpy
class TestColumnarGoldens:
    def test_matrix_shape(self):
        matrix = columnar_golden_matrix()
        kinds = {cell[0] for cell in matrix}
        assert kinds == {"ipv", "duel"}
        assocs = {cell[4] for cell in matrix}
        assert {2, 4, 8, 16} <= assocs
        # Prime chunk size: every stream exercises ragged batch tails.
        assert COLUMNAR_GOLDEN_BATCH == 193
        keys = [columnar_golden_key(cell) for cell in matrix]
        assert len(keys) == len(set(keys))

    def test_committed_corpus_matches(self):
        assert DEFAULT_COLUMNAR_GOLDENS_PATH.exists(), (
            "columnar golden corpus missing; run scripts/regen_goldens.py"
        )
        drift, checked = check_columnar_goldens()
        assert drift == [], drift
        assert checked == len(columnar_golden_matrix())

    def test_engines_agree_on_one_cell(self):
        cell = columnar_golden_matrix()[0]
        columnar = compute_columnar_golden(cell, engine="columnar")
        walk = compute_columnar_golden(cell, engine="walk")
        lut = compute_columnar_golden(cell, engine="lut")
        assert columnar == walk == lut

    def test_duel_cell_pins_psel(self):
        duel_cells = [c for c in columnar_golden_matrix() if c[0] == "duel"]
        assert duel_cells, "matrix must include multi-lane PSEL duels"
        result = compute_columnar_golden(duel_cells[0], engine="columnar")
        scalar = compute_columnar_golden(duel_cells[0], engine="scalar")
        assert result == scalar
        assert "psel" in result and "misses" in result

    def test_check_skips_cleanly_without_numpy(self, monkeypatch):
        from repro.kernels import tables as ktables

        monkeypatch.setattr(ktables, "_np", None)
        drift, checked = check_columnar_goldens()
        assert drift == [] and checked == 0
