"""The ``repro verify`` subcommand: exit codes, artifacts, reports."""

import json

from repro.cli import main
from repro.verify.conformance import policy_kwargs
from repro.verify.shrink import write_artifact


class TestVerifyCommand:
    def test_single_policy_quick_passes(self, capsys):
        code = main([
            "verify", "--policy", "lru", "--quick",
            "--fuzz-budget", "600", "--no-goldens",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "lru" in out and "PASSED" in out

    def test_multiple_policies(self, capsys):
        code = main([
            "verify", "--policy", "plru", "gippr", "--quick",
            "--fuzz-budget", "600", "--no-goldens",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "plru" in out and "gippr" in out

    def test_goldens_included_by_default(self, capsys):
        code = main([
            "verify", "--policy", "lru", "--quick", "--fuzz-budget", "600",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goldens:" in out and "match" in out

    def test_report_and_manifest_written(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "verify", "--policy", "lru", "--quick", "--fuzz-budget", "600",
            "--no-goldens", "--report", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["policies"][0]["policy"] == "lru"
        manifest = tmp_path / "report.manifest.json"
        assert manifest.exists()
        recorded = json.loads(manifest.read_text())
        assert recorded["conformance"]["policies"] == ["lru"]
        assert "kernels" in recorded and "code_version" in recorded

    def test_golden_drift_fails_with_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "goldens.json"
        bad.write_text(json.dumps({
            "schema": "repro-goldens/1",
            "entries": {"lru|zipf-hot|s0|8x4|n1000": -1},
        }))
        code = main([
            "verify", "--policy", "lru", "--quick", "--fuzz-budget", "600",
            "--goldens", str(bad),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "drift" in out and "FAILED" in out

    def test_replay_of_stale_artifact_reports_fixed(self, tmp_path, capsys):
        path = tmp_path / "repro.json"
        write_artifact(
            path,
            policy="gippr",
            num_sets=8,
            assoc=4,
            accesses=[0, 0, 8, 0],
            divergence={"index": 3, "block": 0, "kind": "positions",
                        "detail": "stale"},
            policy_kwargs=policy_kwargs("gippr", 8, 4),
            oracle="plru-positions",
        )
        code = main(["verify", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no longer reproduces" in out
