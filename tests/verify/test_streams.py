"""The conformance stream generators: determinism, shape, coverage."""

import pytest

from repro.verify.streams import (
    STREAM_GENERATORS,
    generate_stream,
    stream_names,
)

GEOMETRY = (8, 4)


class TestDeterminism:
    @pytest.mark.parametrize("name", stream_names())
    def test_same_arguments_same_stream(self, name):
        a = generate_stream(name, 3, 500, *GEOMETRY)
        b = generate_stream(name, 3, 500, *GEOMETRY)
        assert a == b

    @pytest.mark.parametrize("name", ["zipf-hot", "random-uniform",
                                      "single-set-hammer"])
    def test_different_seeds_differ(self, name):
        a = generate_stream(name, 0, 500, *GEOMETRY)
        b = generate_stream(name, 1, 500, *GEOMETRY)
        assert a != b

    def test_different_streams_differ_even_with_same_seed(self):
        # The per-name FNV salt decorrelates generators sharing a seed.
        a = generate_stream("zipf-hot", 0, 500, *GEOMETRY)
        b = generate_stream("random-uniform", 0, 500, *GEOMETRY)
        assert a != b


class TestShape:
    @pytest.mark.parametrize("name", stream_names())
    @pytest.mark.parametrize("n", [0, 1, 64, 257])
    def test_length_and_domain(self, name, n):
        stream = generate_stream(name, 0, n, *GEOMETRY)
        assert len(stream) == n
        assert all(isinstance(b, int) and b >= 0 for b in stream)

    @pytest.mark.parametrize("geometry", [(1, 2), (4, 16), (64, 8)])
    def test_generators_handle_extreme_geometries(self, geometry):
        for name in stream_names():
            stream = generate_stream(name, 0, 128, *geometry)
            assert len(stream) == 128


class TestRegistry:
    def test_expected_family_present(self):
        expected = {
            "seq-scan", "cyclic-at-capacity", "cyclic-over-capacity",
            "zipf-hot", "zipf-scan-mix", "adversarial-thrash",
            "duel-flip", "single-set-hammer", "random-uniform",
        }
        assert expected == set(STREAM_GENERATORS)

    def test_unknown_stream_raises(self):
        with pytest.raises(ValueError, match="unknown stream"):
            generate_stream("nope", 0, 10, *GEOMETRY)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            generate_stream("seq-scan", 0, -1, *GEOMETRY)


class TestSemantics:
    def test_seq_scan_never_reuses(self):
        stream = generate_stream("seq-scan", 0, 300, *GEOMETRY)
        assert len(set(stream)) == len(stream)

    def test_cyclic_at_capacity_working_set(self):
        num_sets, assoc = GEOMETRY
        stream = generate_stream("cyclic-at-capacity", 0, 500, num_sets, assoc)
        assert len(set(stream)) == num_sets * assoc

    def test_cyclic_over_capacity_exceeds_capacity(self):
        num_sets, assoc = GEOMETRY
        stream = generate_stream(
            "cyclic-over-capacity", 0, 1000, num_sets, assoc
        )
        assert len(set(stream)) > num_sets * assoc

    def test_single_set_hammer_stays_in_set_zero(self):
        num_sets, assoc = GEOMETRY
        stream = generate_stream("single-set-hammer", 0, 400, num_sets, assoc)
        assert all(block % num_sets == 0 for block in stream)

    def test_adversarial_thrash_per_set_working_set(self):
        num_sets, assoc = GEOMETRY
        stream = generate_stream(
            "adversarial-thrash", 0, 2000, num_sets, assoc
        )
        for s in range(num_sets):
            blocks = {b for b in stream if b % num_sets == s}
            assert len(blocks) == assoc + 1
