"""The committed golden corpus: it matches, and tampering is named."""

import json

import pytest

from repro.verify.goldens import (
    DEFAULT_GOLDENS_PATH,
    GOLDEN_SCHEMA,
    check_golden_corpus,
    compute_golden,
    golden_key,
    golden_matrix,
    load_golden_corpus,
    write_golden_corpus,
)


class TestCommittedCorpus:
    def test_corpus_file_is_committed(self):
        assert DEFAULT_GOLDENS_PATH.exists(), (
            "tests/goldens/conformance_goldens.json must be committed; "
            "regenerate with scripts/regen_goldens.py"
        )

    def test_corpus_matches_current_behaviour(self):
        drift, checked = check_golden_corpus()
        assert drift == [], "\n".join(drift)
        assert checked == len(golden_matrix())

    def test_every_registry_policy_is_pinned(self):
        from repro.policies.registry import policy_names

        pinned = {cell[0] for cell in golden_matrix()}
        assert pinned == set(policy_names())

    def test_schema_and_metadata(self):
        payload = load_golden_corpus()
        assert payload["schema"] == GOLDEN_SCHEMA
        assert payload["n"] > 0
        assert len(payload["entries"]) == len(golden_matrix())


class TestDriftDetection:
    def test_tampered_entry_is_named(self, tmp_path):
        payload = load_golden_corpus()
        key = golden_key(golden_matrix()[0])
        payload["entries"][key] += 1
        tampered = tmp_path / "goldens.json"
        tampered.write_text(json.dumps(payload))
        drift, _ = check_golden_corpus(tampered)
        assert len(drift) == 1
        assert key in drift[0] and "misses" in drift[0]

    def test_missing_corpus_is_drift_not_pass(self, tmp_path):
        drift, checked = check_golden_corpus(tmp_path / "absent.json")
        assert checked == 0
        assert drift and "missing" in drift[0]

    def test_stale_extra_entry_is_drift(self, tmp_path):
        payload = load_golden_corpus()
        payload["entries"]["ghost|zipf-hot|s0|8x4|n1000"] = 123
        stale = tmp_path / "goldens.json"
        stale.write_text(json.dumps(payload))
        drift, _ = check_golden_corpus(stale)
        assert any("no longer in the matrix" in d for d in drift)

    def test_unknown_schema_is_drift(self, tmp_path):
        bad = tmp_path / "goldens.json"
        bad.write_text('{"schema": "other/1", "entries": {}}')
        drift, checked = check_golden_corpus(bad)
        assert checked == 0 and drift


class TestRegeneration:
    def test_write_then_check_roundtrip(self, tmp_path):
        path = write_golden_corpus(
            tmp_path / "fresh.json", with_manifest=True
        )
        drift, checked = check_golden_corpus(path)
        assert drift == [] and checked == len(golden_matrix())
        # Provenance manifest sidecar rides along.
        manifest = path.with_name("fresh.manifest.json")
        assert manifest.exists()
        recorded = json.loads(manifest.read_text())
        assert recorded["goldens"]["entries"] == checked

    def test_compute_golden_is_deterministic(self):
        cell = golden_matrix()[0]
        assert compute_golden(cell) == compute_golden(cell)

    @pytest.mark.parametrize("policy", ["belady"])
    def test_future_policies_compute(self, policy):
        cell = (policy, "zipf-hot", 0, 8, 4, 300)
        misses = compute_golden(cell)
        assert 0 < misses <= 300
