"""Differential runner, shrinking, artifacts, and the injected-bug drill.

The acceptance drill: an intentionally injected promotion-order bug in a
GIPPR variant must be caught by the oracle differential and shrunk to a
counterexample of at most 32 accesses that replays from its artifact.
"""

import pytest

from repro.core.plru import position, set_position
from repro.policies.plru import GIPPRPolicy
from repro.verify.conformance import (
    _deserialize_kwargs,
    build_oracle,
    build_policy,
    oracle_for,
    policy_kwargs,
    verify_policy,
)
from repro.verify.differential import (
    check_belady_dominance,
    check_lut_walk_equality,
    diff_stream,
)
from repro.verify.shrink import (
    canonicalize_addresses,
    load_artifact,
    replay_artifact,
    shrink_stream,
    write_artifact,
)
from repro.verify.streams import generate_stream

GEOMETRY = (8, 4)


class BuggyGIPPR(GIPPRPolicy):
    """Promotion-order bug: promotes one position too far toward LRU."""

    def on_hit(self, set_index, way, ctx):
        state = self._state[set_index]
        pos = position(state, way, self.assoc)
        target = min(self.assoc - 1, self._promo[pos] + 1)
        self._state[set_index] = set_position(
            state, way, target, self.assoc
        )


def buggy_factories():
    num_sets, assoc = GEOMETRY
    kwargs = policy_kwargs("gippr", num_sets, assoc)

    def policy_factory():
        ipv = _deserialize_kwargs(kwargs)["ipv"]
        return BuggyGIPPR(num_sets, assoc, ipv=ipv, kernel="walk")

    def oracle_factory():
        return build_oracle("plru-positions", "gippr",
                            num_sets, assoc, kwargs)

    return policy_factory, oracle_factory


class TestDiffStream:
    @pytest.mark.parametrize(
        "name", ["lru", "ipv-lru", "giplr", "plru", "gippr", "dgippr"]
    )
    def test_production_policies_match_their_oracles(self, name):
        num_sets, assoc = GEOMETRY
        kwargs = policy_kwargs(name, num_sets, assoc)
        oracle_name = oracle_for(name)
        accesses = generate_stream("zipf-hot", 0, 1500, num_sets, assoc)
        divergence = diff_stream(
            lambda: build_policy(name, num_sets, assoc, kwargs),
            lambda: build_oracle(oracle_name, name, num_sets, assoc, kwargs),
            accesses,
        )
        assert divergence is None

    def test_invariants_only_policies_run_clean(self):
        num_sets, assoc = GEOMETRY
        accesses = generate_stream("duel-flip", 0, 800, num_sets, assoc)
        divergence = diff_stream(
            lambda: build_policy("drrip", num_sets, assoc), None, accesses
        )
        assert divergence is None


class TestInjectedBug:
    def test_bug_is_caught_and_shrinks_to_at_most_32_accesses(self, tmp_path):
        policy_factory, oracle_factory = buggy_factories()
        accesses = generate_stream("zipf-hot", 0, 2000, *GEOMETRY)
        divergence = diff_stream(policy_factory, oracle_factory, accesses)
        assert divergence is not None, "injected bug must be caught"

        def still_fails(candidate):
            return (
                diff_stream(policy_factory, oracle_factory, candidate)
                is not None
            )

        shrunk = shrink_stream(accesses, still_fails)
        assert len(shrunk) <= 32
        assert still_fails(shrunk)
        # 1-minimality: removing any single access heals the failure.
        for i in range(len(shrunk)):
            candidate = shrunk[:i] + shrunk[i + 1:]
            assert not candidate or not still_fails(candidate)

    def test_correct_policy_is_not_flagged(self):
        num_sets, assoc = GEOMETRY
        kwargs = policy_kwargs("gippr", num_sets, assoc)
        accesses = generate_stream("zipf-hot", 0, 2000, num_sets, assoc)
        assert diff_stream(
            lambda: build_policy("gippr", num_sets, assoc, kwargs),
            lambda: build_oracle(
                "plru-positions", "gippr", num_sets, assoc, kwargs
            ),
            accesses,
        ) is None


class TestShrinker:
    def test_rejects_passing_input(self):
        with pytest.raises(ValueError):
            shrink_stream([1, 2, 3], lambda accesses: False)

    def test_minimises_to_known_kernel(self):
        # Failure := the stream contains both 7 and 11 somewhere.
        def still_fails(accesses):
            return 7 in accesses and 11 in accesses

        shrunk = shrink_stream(list(range(100)) + [7, 11], still_fails)
        assert sorted(set(shrunk))[-2:] == sorted(shrunk)
        assert len(shrunk) == 2

    def test_canonicalize_preserves_aliasing(self):
        out = canonicalize_addresses([100, 50, 100, 7])
        assert out == [0, 1, 0, 2]


class TestArtifacts:
    def test_roundtrip_and_replay(self, tmp_path):
        policy_factory, oracle_factory = buggy_factories()
        num_sets, assoc = GEOMETRY
        kwargs = policy_kwargs("gippr", num_sets, assoc)
        accesses = generate_stream("zipf-hot", 0, 2000, num_sets, assoc)

        def still_fails(candidate):
            return (
                diff_stream(policy_factory, oracle_factory, candidate)
                is not None
            )

        shrunk = shrink_stream(accesses, still_fails)
        divergence = diff_stream(policy_factory, oracle_factory, shrunk)
        path = tmp_path / "repro.json"
        write_artifact(
            path,
            policy="gippr",
            num_sets=num_sets,
            assoc=assoc,
            accesses=shrunk,
            divergence=divergence.as_dict(),
            policy_kwargs=kwargs,
            oracle="plru-positions",
        )
        artifact = load_artifact(path)
        assert artifact["accesses"] == shrunk
        # The *fixed* production policy replays the artifact cleanly: the
        # bug the artifact captured does not exist in the real code.
        assert replay_artifact(path) is None

    def test_replay_reproduces_on_unfixed_stream(self, tmp_path):
        # An artifact recording a genuine production divergence would
        # reproduce; simulate it by writing an artifact whose expected
        # divergence no longer exists and asserting the None contract.
        num_sets, assoc = GEOMETRY
        path = tmp_path / "fixed.json"
        write_artifact(
            path,
            policy="lru",
            num_sets=num_sets,
            assoc=assoc,
            accesses=[0, 1, 2],
            divergence={"index": 0, "block": 0, "kind": "hit-miss",
                        "detail": "stale"},
            oracle="lru-stack",
        )
        assert replay_artifact(path) is None

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError):
            load_artifact(path)


class TestRunLevelChecks:
    @pytest.mark.parametrize("name", ["plru", "gippr", "dgippr"])
    @pytest.mark.parametrize("geometry", [(8, 4), (4, 16)])
    def test_lut_walk_identity(self, name, geometry):
        num_sets, assoc = geometry
        kwargs = policy_kwargs(name, num_sets, assoc)
        accesses = generate_stream("random-uniform", 0, 1500, num_sets, assoc)
        mismatch = check_lut_walk_equality(
            lambda kernel="auto": build_policy(
                name, num_sets, assoc, kwargs, kernel=kernel
            ),
            accesses,
        )
        assert mismatch is None

    @pytest.mark.parametrize("name", ["lru", "plru", "srrip", "random"])
    def test_belady_dominates(self, name):
        num_sets, assoc = GEOMETRY
        accesses = generate_stream(
            "cyclic-over-capacity", 0, 1200, num_sets, assoc
        )
        policy = build_policy(name, num_sets, assoc)
        assert check_belady_dominance(policy, accesses) is None


class TestVerifyPolicy:
    def test_clean_policy_reports_ok(self):
        report = verify_policy("plru", fuzz_budget=1200)
        assert report.ok
        assert report.streams_run > 0
        assert report.accesses_run > 0
        d = report.as_dict()
        assert d["ok"] and d["policy"] == "plru"

    def test_summary_mentions_oracle(self):
        report = verify_policy("lru", fuzz_budget=600)
        assert "lru-stack" in report.summary()
