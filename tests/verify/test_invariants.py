"""The per-access invariant battery: clean states pass, corruption is named."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.verify.conformance import build_policy
from repro.verify.invariants import (
    FillCountInvariant,
    PositionBijectivityInvariant,
    PselBoundsInvariant,
    StatsConsistencyInvariant,
    TagUniquenessInvariant,
    check_invariants,
    default_invariants,
    iter_selector_counters,
)


def build_cache(policy_name="lru", num_sets=4, assoc=4):
    # build_policy supplies geometry-appropriate IPVs for the vector
    # policies (the published vectors are 16-way only).
    policy = build_policy(policy_name, num_sets, assoc)
    return SetAssociativeCache(num_sets, assoc, policy, block_size=1)


def warm(cache, n=64):
    for i in range(n):
        cache.access(i * 5 % 32)
    return cache


class TestCleanStatesPass:
    @pytest.mark.parametrize(
        "policy", ["lru", "plru", "gippr", "dgippr", "drrip", "fifo"]
    )
    def test_default_battery_clean(self, policy):
        cache = warm(build_cache(policy))
        assert check_invariants(cache, default_invariants()) is None

    def test_cold_cache_clean(self):
        cache = build_cache()
        assert check_invariants(cache, default_invariants()) is None


class TestTagUniqueness:
    def test_duplicate_tag_detected(self):
        cache = warm(build_cache())
        tags = cache._tags[0]
        tags[1] = tags[0]
        violation = TagUniquenessInvariant().check(cache)
        assert violation is not None and "duplicate" in violation

    def test_stale_reverse_map_detected(self):
        cache = warm(build_cache())
        way_of = cache._way_of[0]
        tag = next(iter(way_of))
        way_of[tag] = (way_of[tag] + 1) % cache.assoc
        assert TagUniquenessInvariant().check(cache) is not None


class TestFillCount:
    def test_corrupted_counter_detected(self):
        cache = warm(build_cache())
        cache._fill_count[0] -= 1
        violation = FillCountInvariant().check(cache)
        assert violation is not None and "fill_count" in violation


class TestPositionBijectivity:
    def test_plru_state_corruption_detected(self):
        cache = warm(build_cache("plru"))
        # position_of decodes from packed per-set plru bits; positions stay
        # a permutation for *every* bit pattern, so corrupt the decoder via
        # a monkeypatched position_of instead.
        cache.policy.position_of = lambda s, w: 0
        violation = PositionBijectivityInvariant().check(cache)
        assert violation is not None and "permutation" in violation

    def test_policies_without_positions_are_skipped(self):
        cache = warm(build_cache("random"))
        assert PositionBijectivityInvariant().check(cache) is None


class TestPselBounds:
    def test_out_of_rails_counter_detected(self):
        cache = warm(build_cache("dgippr"))
        counters = list(iter_selector_counters(cache.policy.selector))
        assert counters  # DGIPPR has a selector with counters
        counters[0].value = counters[0].hi + 1
        violation = PselBoundsInvariant().check(cache)
        assert violation is not None and "outside" in violation

    def test_policies_without_selector_are_skipped(self):
        cache = warm(build_cache("lru"))
        assert PselBoundsInvariant().check(cache) is None


class TestStatsConsistency:
    def test_hits_plus_misses_mismatch_detected(self):
        cache = warm(build_cache())
        cache.stats.hits += 1
        assert StatsConsistencyInvariant().check(cache) is not None

    def test_eviction_overflow_detected(self):
        cache = warm(build_cache())
        cache.stats.evictions = cache.stats.misses + 1
        assert StatsConsistencyInvariant().check(cache) is not None


class TestCheckInvariants:
    def test_violation_is_prefixed_with_invariant_name(self):
        cache = warm(build_cache())
        cache._fill_count[0] += 1
        violation = check_invariants(cache, default_invariants())
        assert violation is not None and violation.startswith("fill-count:")
