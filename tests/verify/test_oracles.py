"""The reference oracles themselves: contract, naive-model semantics."""

import pytest

from repro.core.ipv import IPV, lip_ipv, lru_ipv
from repro.core.plru import all_positions
from repro.verify.oracles import (
    LRUStackOracle,
    OracleDivergenceError,
    PLRUPositionsOracle,
)


class TestOracleCacheContract:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LRUStackOracle(3, 4)  # non-power-of-two sets
        with pytest.raises(ValueError):
            LRUStackOracle(4, 0)

    def test_cold_fill_then_hit(self):
        oracle = LRUStackOracle(2, 2)
        hit, evicted = oracle.access(0)
        assert (hit, evicted) == (False, None)
        hit, evicted = oracle.access(0)
        assert (hit, evicted) == (True, None)
        assert oracle.hits == 1 and oracle.misses == 1

    def test_eviction_returns_block_address(self):
        oracle = LRUStackOracle(2, 2)  # set 0 holds blocks 0, 2, then 4
        for block in (0, 2, 4):
            oracle.access(block)
        # LRU victim is block 0; its reconstructed address must be 0.
        assert oracle.evictions == 1
        assert 0 not in oracle.resident_blocks(0) | {None}
        # Check via a fresh access returning the evicted address.
        oracle2 = LRUStackOracle(2, 2)
        oracle2.access(0)
        oracle2.access(2)
        _, evicted = oracle2.access(4)
        assert evicted == 0

    def test_set_and_tag_mapping(self):
        oracle = LRUStackOracle(4, 2)
        set_index, tag = oracle.locate(13)
        assert set_index == 13 % 4
        assert tag == 13 // 4


class TestLRUStackOracle:
    def test_pure_lru_order(self):
        oracle = LRUStackOracle(1, 4)
        for block in (0, 1, 2, 3):
            oracle.access(block)
        oracle.access(0)  # promote 0 to MRU
        _, evicted = oracle.access(4)  # evict LRU = block 1
        assert evicted == 1

    def test_lip_insertion_goes_to_lru(self):
        oracle = LRUStackOracle(1, 4, ipv=lip_ipv(4))
        for block in (0, 1, 2, 3):
            oracle.access(block)
        # Incoming block 4 inserts at LRU and is the next victim.
        oracle.access(4)
        _, evicted = oracle.access(5)
        assert evicted == 4

    def test_positions_always_a_permutation(self):
        oracle = LRUStackOracle(2, 4)
        for block in range(32):
            oracle.access(block * 3 % 16)
            for s in range(2):
                assert sorted(oracle.positions(s)) == [0, 1, 2, 3]

    def test_ipv_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            LRUStackOracle(2, 4, ipv=lru_ipv(8))


class TestPLRUPositionsOracle:
    def test_classic_plru_matches_all_positions_decode(self):
        oracle = PLRUPositionsOracle(1, 4)
        for block in (0, 1, 2, 3, 0, 2):
            oracle.access(block)
        assert oracle.positions(0) == all_positions(oracle._state[0], 4)

    def test_victim_is_position_k_minus_1(self):
        oracle = PLRUPositionsOracle(1, 4)
        for block in range(4):
            oracle.access(block)
        victim_way = oracle._victim(0)
        assert oracle.positions(0)[victim_way] == 3

    def test_gippr_constructor_uses_paper_vector(self):
        oracle = PLRUPositionsOracle.for_gippr(4, 16)
        assert oracle.ipvs[0].k == 16

    def test_dgippr_selector_mirrors_production_defaults(self):
        oracle = PLRUPositionsOracle.for_dgippr(64, 16)
        assert len(oracle.ipvs) == 4
        # Selector must exist and answer a policy index for every set.
        for s in range(64):
            assert 0 <= oracle.selector.policy_for_set(s) < 4

    def test_ipv_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            PLRUPositionsOracle(2, 4, [lru_ipv(8)])

    def test_internal_divergence_detected(self):
        oracle = PLRUPositionsOracle(1, 4)
        oracle.access(0)

        class Broken(PLRUPositionsOracle):
            def positions(self, set_index):
                return [0, 0, 1, 2]  # not a permutation

        broken = Broken(1, 4)
        with pytest.raises(OracleDivergenceError):
            broken.access(0)
