"""Set-dueling dynamics as seen through the event trace (ISSUE satellites).

Three contracts:

1. a crafted all-miss stream into a single policy-0 leader set makes the
   PSEL timeline monotonically non-decreasing (every miss increments);
2. ``duel_flip`` events fire *exactly* on leader-set misses — never on
   hits, never in follower sets — and the crafted flips land where the
   counter arithmetic says they must;
3. a JSONL trace written by a traced run reads back and replays to the
   same counts as the live cache statistics (write → parse → replay).
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.vectors import DGIPPR2_WI_VECTORS
from repro.obs import (
    JSONLSink,
    ListSink,
    Tracer,
    read_jsonl,
    replay_counts,
)
from repro.policies import make_policy

NUM_SETS, ASSOC = 16, 16


def _dueling_cache(ipvs=None, **kwargs):
    policy = make_policy(
        "dgippr", NUM_SETS, ASSOC,
        ipvs=ipvs or DGIPPR2_WI_VECTORS, **kwargs
    )
    cache = SetAssociativeCache(NUM_SETS, ASSOC, policy, block_size=1)
    return cache, policy


def _leader_set(selector, policy_index):
    for set_index in range(NUM_SETS):
        if selector.leader_policy(set_index) == policy_index:
            return set_index
    pytest.fail(f"no leader set for policy {policy_index}")


def _address(set_index, tag):
    return set_index + tag * NUM_SETS


class TestPselMonotonicity:
    def test_all_miss_leader0_stream_is_non_decreasing(self):
        cache, policy = _dueling_cache()
        leader0 = _leader_set(policy.selector, 0)
        sink = ListSink()
        cache.attach_tracer(Tracer(sink=sink, psel_every=1))
        for tag in range(200):  # distinct tags: every access misses
            cache.access(_address(leader0, tag))

        assert cache.stats.misses == 200 and cache.stats.hits == 0
        timeline = [e.value for e in sink
                    if e.kind == "psel_sample" and e.label == "psel"]
        assert len(timeline) == 200
        assert all(b >= a for a, b in zip(timeline, timeline[1:])), (
            "PSEL decreased despite only policy-0 leader misses"
        )
        # Every miss increments until saturation, so the timeline climbs.
        assert timeline[-1] > timeline[0]
        assert timeline[-1] <= policy.selector.psel.hi

    def test_counter_saturates_at_rail(self):
        cache, policy = _dueling_cache(counter_bits=4)  # hi = 7
        leader0 = _leader_set(policy.selector, 0)
        for tag in range(50):
            cache.access(_address(leader0, tag))
        assert policy.selector.psel.value == policy.selector.psel.hi == 7
        assert policy.selector.psel.normalized() == 1.0


class TestDuelFlips:
    def test_flips_fire_exactly_on_leader_set_misses(self):
        """Drive the PSEL across zero twice; each crossing is one flip."""
        cache, policy = _dueling_cache()
        selector = policy.selector
        leader0 = _leader_set(selector, 0)
        leader1 = _leader_set(selector, 1)
        sink = ListSink()
        cache.attach_tracer(Tracer(sink=sink))

        assert selector.selected() == 1  # psel == 0 selects policy 1
        # Phase 1: a miss in the policy-1 leader decrements PSEL to -1,
        # flipping the follower policy to 0 on that very access.
        cache.access(_address(leader1, 0))
        # Phase 2: a miss in the policy-0 leader increments back to 0,
        # flipping the follower policy back to 1.
        cache.access(_address(leader0, 0))
        # Hits and follower-set misses must not flip anything.
        cache.access(_address(leader1, 0))  # hit
        follower = next(
            s for s in range(NUM_SETS) if selector.leader_policy(s) == -1
        )
        cache.access(_address(follower, 0))  # follower miss

        flips = [e for e in sink if e.kind == "duel_flip"]
        misses = {(e.access, e.set) for e in sink if e.kind == "miss"}
        assert [(e.value, e.policy) for e in flips] == [(1, 0), (0, 1)]
        for flip in flips:
            assert (flip.access, flip.set) in misses, (
                "flip fired outside a miss"
            )
            assert selector.leader_policy(flip.set) >= 0, (
                "flip fired in a follower set"
            )
        assert {e.set for e in flips} == {leader1, leader0}

    def test_tournament_flips_only_on_leader_misses(self):
        """4-policy tournament: every flip coincides with a leader miss."""
        from repro.core.vectors import DGIPPR4_WI_VECTORS

        cache, policy = _dueling_cache(ipvs=DGIPPR4_WI_VECTORS)
        selector = policy.selector
        sink = ListSink()
        cache.attach_tracer(Tracer(sink=sink))

        assert selector.selected() == 3  # all counters at zero
        # A miss in the pair-23 leader for policy 2 bumps pair23 up and
        # meta down, handing the meta duel to pair 01 → follower flips
        # from 3 to 1 immediately.
        leader2 = _leader_set(selector, 2)
        cache.access(_address(leader2, 0))
        state = (2 * 16 * 16)  # distinct tag space for the mixed tail
        for i in range(500):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            cache.access(state % (NUM_SETS * ASSOC * 2))

        flips = [e for e in sink if e.kind == "duel_flip"]
        misses = {(e.access, e.set) for e in sink if e.kind == "miss"}
        assert flips and (flips[0].value, flips[0].policy) == (3, 1)
        for flip in flips:
            assert (flip.access, flip.set) in misses
            assert selector.leader_policy(flip.set) >= 0
            assert flip.policy != flip.value


class TestJsonlRoundTrip:
    def test_write_parse_replay_matches_stats(self, tmp_path):
        path = tmp_path / "duel.jsonl"
        cache, policy = _dueling_cache()
        with Tracer(sink=JSONLSink(path), psel_every=25) as tracer:
            cache.attach_tracer(tracer)
            state = 9
            for _ in range(2000):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                cache.access(state % (NUM_SETS * ASSOC * 2))

        counts = replay_counts(read_jsonl(path, validate=True))
        stats = cache.stats
        assert counts["accesses"] == stats.accesses == 2000
        assert counts["hits"] == stats.hits
        assert counts["misses"] == stats.misses
        assert counts["evictions"] == stats.evictions
        assert counts["bypasses"] == stats.bypasses == 0
        assert counts["psel_samples"] > 0
