"""GA convergence telemetry and the combined analytics report."""

import json
import math

import pytest

from repro.obs.analytics.convergence import (
    CONVERGENCE_SCHEMA,
    ConvergenceLog,
    convergence_csv,
    generation_stats,
    read_convergence,
    render_convergence,
)
from repro.obs.analytics.report import (
    REPORT_SCHEMA,
    build_report,
    miss_curve_csv,
    render_report,
    write_report,
)


def scored_population():
    """Descending-fitness (fitness, entries) list, evolve_ipv's shape."""
    return [
        (3.0, (0, 0, 0, 0, 0)),
        (2.0, (0, 0, 0, 0, 1)),
        (2.0, (0, 0, 0, 0, 1)),
        (1.0, (1, 1, 1, 1, 1)),
    ]


class TestGenerationStats:
    def test_fitness_summary(self):
        record = generation_stats(3, scored_population())
        assert record["generation"] == 3
        assert record["population"] == 4
        assert record["best"] == 3.0
        assert record["worst"] == 1.0
        assert record["median"] == 2.0
        assert record["p90"] == 3.0
        assert record["mean"] == pytest.approx(2.0)
        assert record["std"] == pytest.approx(math.sqrt(0.5))
        assert record["best_entries"] == [0, 0, 0, 0, 0]

    def test_diversity(self):
        record = generation_stats(0, scored_population())
        assert record["unique_fraction"] == pytest.approx(3 / 4)
        # Hamming to best: 0 + 1 + 1 + 5 mismatches over 4*5 positions.
        assert record["mean_hamming_to_best"] == pytest.approx(7 / 20)

    def test_throughput(self):
        record = generation_stats(
            1, scored_population(),
            evaluations=40, batch_evaluations=10, elapsed_sec=2.0,
        )
        assert record["evaluations"] == 40
        assert record["eval_per_sec"] == pytest.approx(5.0)
        zero = generation_stats(1, scored_population())
        assert zero["eval_per_sec"] == 0.0

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            generation_stats(0, [])


class TestConvergenceLog:
    def test_append_write_read_round_trip(self, tmp_path):
        path = tmp_path / "conv.json"
        log = ConvergenceLog(path, meta={"seed": 7})
        for generation in range(3):
            log.append(generation_stats(generation, scored_population()))
        payload = json.loads(path.read_text())
        assert payload["schema"] == CONVERGENCE_SCHEMA
        assert payload["meta"] == {"seed": 7}
        records = read_convergence(path)
        assert [r["generation"] for r in records] == [0, 1, 2]

    def test_every_append_is_a_valid_document(self, tmp_path):
        path = tmp_path / "conv.json"
        log = ConvergenceLog(path)
        for generation in range(2):
            log.append(generation_stats(generation, scored_population()))
            json.loads(path.read_text())  # never a torn tail

    def test_unwritable_path_degrades_to_noop(self, tmp_path, caplog):
        log = ConvergenceLog(tmp_path / "missing" / "x" / "conv.json")
        # Make mkdir fail by occupying the parent path with a file.
        (tmp_path / "missing").write_text("a file, not a directory")
        with caplog.at_level("WARNING"):
            log.append(generation_stats(0, scored_population()))
            log.append(generation_stats(1, scored_population()))
        assert len(log.records) == 2  # in-memory records survive
        assert sum(
            "unwritable" in r.message for r in caplog.records
        ) == 1  # warned once, not per append

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "other/1", "records": []}\n')
        with pytest.raises(ValueError, match=CONVERGENCE_SCHEMA):
            read_convergence(path)


class TestRenderers:
    def test_csv_fields_and_rows(self):
        records = [generation_stats(g, scored_population()) for g in (0, 1)]
        csv = convergence_csv(records)
        lines = csv.strip().split("\n")
        assert lines[0].startswith("generation,best,median,p90")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "0"

    def test_render_table(self):
        out = render_convergence(
            [generation_stats(0, scored_population())]
        )
        assert "gen" in out and "eval/s" in out
        assert render_convergence([]) == "(no convergence records)"


class TestReport:
    def _profile_payload(self):
        from repro.obs.analytics import profile_trace

        return profile_trace([1, 2, 1, 3, 1, 2], num_sets=2).to_json()

    def test_build_and_render_both_halves(self, tmp_path):
        conv_path = tmp_path / "conv.json"
        log = ConvergenceLog(conv_path)
        log.append(generation_stats(0, scored_population()))
        report = build_report(
            profile=self._profile_payload(),
            convergence_path=conv_path,
            meta={"benchmark": "x"},
        )
        assert report["schema"] == REPORT_SCHEMA
        rendered = render_report(report)
        assert "workload profile:" in rendered
        assert "GA convergence:" in rendered
        assert "benchmark=x" in rendered

    def test_empty_report_renders(self):
        assert "(empty report)" in render_report(build_report())

    def test_miss_curve_csv(self):
        csv = miss_curve_csv(self._profile_payload())
        lines = csv.strip().split("\n")
        assert lines[0] == "capacity_blocks,misses,miss_rate"
        first = lines[1].split(",")
        assert first[0] == "0" and first[1] == "6"

    def test_write_report_files(self, tmp_path):
        report = build_report(
            profile=self._profile_payload(),
            convergence=[generation_stats(0, scored_population())],
        )
        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "curve.csv"
        write_report(report, json_path=json_path, csv_path=csv_path)
        assert json.loads(json_path.read_text())["schema"] == REPORT_SCHEMA
        assert csv_path.read_text().startswith("capacity_blocks")
        conv_csv = tmp_path / "curve.convergence.csv"
        assert conv_csv.read_text().startswith("generation,")

    def test_write_convergence_only_uses_csv_path(self, tmp_path):
        report = build_report(
            convergence=[generation_stats(0, scored_population())]
        )
        csv_path = tmp_path / "conv.csv"
        write_report(report, csv_path=csv_path)
        assert csv_path.read_text().startswith("generation,")


class TestEvolveIntegration:
    def test_evolve_ipv_emits_convergence(self, tmp_path):
        from repro.eval import default_config
        from repro.ga.fitness import FitnessEvaluator
        from repro.ga.genetic import evolve_ipv

        evaluator = FitnessEvaluator(
            benchmarks=["429.mcf"],
            config=default_config(trace_length=800),
        )
        conv_path = tmp_path / "conv.json"
        result = evolve_ipv(
            evaluator, population_size=6, initial_population_size=8,
            generations=2, seed=3, convergence_path=conv_path,
        )
        assert len(result.convergence) == len(result.history)
        for record in result.convergence:
            assert record["best"] >= record["median"] >= record["worst"]
            assert 0.0 < record["unique_fraction"] <= 1.0
        # Best series must match the existing history surface.
        assert [r["best"] for r in result.convergence] == result.history
        records = read_convergence(conv_path)
        assert [r["generation"] for r in records] == (
            [r["generation"] for r in result.convergence]
        )
