"""Vectorized Mattson profiler: oracle equality, miss curves, fallbacks.

The binding contract is bit-identity with the ``repro.trace.analysis``
walks — every histogram the profiler exposes must equal what the
OrderedDict oracle produces on the same stream, with and without numpy.
"""

import random

import pytest

from repro.kernels import tables as ktables
from repro.obs.analytics import profile_trace
from repro.obs.analytics.profile import (
    per_set_reuse_histogram_fast,
    stack_distances,
)
from repro.trace import (
    Trace,
    per_set_reuse_histogram,
    stack_distance_histogram,
)

numpy_missing = ktables.numpy_or_none() is None
needs_numpy = pytest.mark.skipif(
    numpy_missing, reason="vectorized path requires numpy"
)


def mixed_stream(n, footprint, seed=0):
    rng = random.Random(seed)
    hot = max(1, footprint // 4)
    return [
        rng.randrange(hot) if rng.random() < 0.6 else rng.randrange(footprint)
        for _ in range(n)
    ]


class TestOracleEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_global_histogram_matches(self, seed):
        addresses = mixed_stream(3_000, 400, seed)
        profile = profile_trace(addresses, max_distance=64)
        oracle = stack_distance_histogram(
            Trace(addresses), max_distance=64
        )
        assert profile.stack_distance_histogram() == oracle

    def test_per_set_surfaces_match(self):
        addresses = mixed_stream(2_500, 300, seed=7)
        num_sets = 8
        profile = profile_trace(
            addresses, num_sets=num_sets, max_distance=32
        )
        assert profile.per_set_reuse_histogram() == (
            per_set_reuse_histogram(Trace(addresses), num_sets)
        )
        mask = num_sets - 1
        for s in range(num_sets):
            sub = [a for a in addresses if a & mask == s]
            assert profile.per_set_stack_histogram(s) == (
                stack_distance_histogram(Trace(sub), max_distance=32)
            )
            assert profile.set_accesses[s] == len(sub)
            assert profile.set_cold[s] == len(set(sub))

    def test_stack_distances_match_oracle_walk(self):
        addresses = mixed_stream(1_000, 150, seed=3)
        dist = stack_distances(addresses)
        # Independent reference: distance = distinct addresses since the
        # previous occurrence.
        seen_at = {}
        for i, a in enumerate(addresses):
            if a not in seen_at:
                assert dist[i] == -1
            else:
                window = set(addresses[seen_at[a] + 1:i])
                window.discard(a)
                assert dist[i] == len(window)
            seen_at[a] = i

    def test_reuse_fast_helper_matches(self):
        addresses = mixed_stream(2_000, 256, seed=9)
        assert per_set_reuse_histogram_fast(addresses, 4) == (
            per_set_reuse_histogram(Trace(addresses), 4)
        )

    def test_accepts_trace_object(self):
        addresses = mixed_stream(500, 64, seed=4)
        assert (
            profile_trace(Trace(addresses)).stack_distance_histogram()
            == profile_trace(addresses).stack_distance_histogram()
        )


class TestMissCurve:
    def test_loop_stream_knee(self):
        ws = 16
        profile = profile_trace(list(range(ws)) * 10)
        # Below the working set every reuse misses; at ws everything hits.
        assert profile.lru_misses(ws) == ws
        assert profile.lru_misses(ws - 1) == 10 * ws
        assert profile.lru_misses(0) == profile.accesses

    def test_curve_monotone_and_anchored(self):
        profile = profile_trace(mixed_stream(2_000, 300, seed=5))
        counts = profile.miss_counts()
        assert counts[0] == profile.accesses
        assert counts[-1] == profile.cold_misses
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_points_cover_endpoints(self):
        profile = profile_trace(mixed_stream(5_000, 2_000, seed=6))
        points = profile.miss_curve_points(max_points=20)
        caps = [c for c, _, _ in points]
        assert caps[0] == 0
        assert caps[-1] == profile.footprint
        assert len(caps) <= profile.footprint + 1
        rates = [r for _, _, r in points]
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_rejects_negative_capacity(self):
        profile = profile_trace([1, 2, 3])
        with pytest.raises(ValueError):
            profile.lru_misses(-1)


class TestEdgeCasesAndValidation:
    def test_empty_stream(self):
        profile = profile_trace([], num_sets=4)
        assert profile.accesses == 0
        assert profile.footprint == 0
        assert profile.stack_distance_histogram() == {}
        assert profile.miss_curve() == [0.0]
        assert sum(profile.per_set_reuse_histogram()) == 0

    def test_single_address(self):
        profile = profile_trace([42], num_sets=2)
        assert profile.stack_distance_histogram() == {-1: 1}
        stats = profile.working_set_stats()
        assert stats["cold_fraction"] == 1.0
        assert stats["mean_stack_distance"] is None

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            profile_trace([1, 2], num_sets=3)

    def test_rejects_bad_distances(self):
        with pytest.raises(ValueError):
            profile_trace([1], max_distance=-1)
        with pytest.raises(ValueError):
            profile_trace([1], reuse_max_distance=0)

    def test_to_json_schema(self):
        import json

        profile = profile_trace(mixed_stream(400, 64, seed=8), num_sets=4)
        payload = profile.to_json()
        assert payload["schema"] == "repro-analytics-profile/1"
        assert payload["num_sets"] == 4
        assert "-1" in payload["stack_distance_histogram"]
        json.dumps(payload)  # JSON-safe end to end


@needs_numpy
class TestNoNumpyFallback:
    """The pure-Python fallback must produce identical numbers."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(ktables, "_np", None)

    def test_profiles_identical(self, no_numpy):
        addresses = mixed_stream(800, 120, seed=10)
        fallback = profile_trace(addresses, num_sets=4, max_distance=16)
        monkey_undone = ktables._np  # still None inside the fixture
        assert monkey_undone is None
        assert fallback.distance_counts is not None
        # Rebuild vectorized numbers outside the patch for comparison.
        oracle = stack_distance_histogram(Trace(addresses), max_distance=16)
        assert fallback.stack_distance_histogram() == oracle
        assert fallback.per_set_reuse_histogram() == (
            per_set_reuse_histogram(Trace(addresses), 4)
        )

    def test_stack_distances_fallback(self, no_numpy):
        addresses = mixed_stream(300, 50, seed=11)
        assert stack_distances(addresses) == [
            d for d in stack_distances(list(addresses))
        ]

    def test_reuse_fast_fallback(self, no_numpy):
        addresses = mixed_stream(400, 60, seed=12)
        assert per_set_reuse_histogram_fast(addresses, 2) == (
            per_set_reuse_histogram(Trace(addresses), 2)
        )


@needs_numpy
class TestColumnarTraceInput:
    def test_columnar_trace_infers_sets_and_matches(self):
        from repro.engine.columnar import ColumnarTrace

        addresses = mixed_stream(1_500, 200, seed=13)
        trace = ColumnarTrace(addresses, num_sets=8)
        from_columnar = profile_trace(trace)
        from_raw = profile_trace(addresses, num_sets=8)
        assert from_columnar.num_sets == 8
        assert (
            from_columnar.stack_distance_histogram()
            == from_raw.stack_distance_histogram()
        )
        assert (
            from_columnar.per_set_reuse_histogram()
            == from_raw.per_set_reuse_histogram()
        )
