"""Sinks: list, ring buffer, JSONL, sampling filter."""

import pytest

from repro.obs import (
    JSONLSink,
    ListSink,
    RingBufferSink,
    SamplingFilter,
    TraceEvent,
    read_jsonl,
)


def _events(n, kind="miss"):
    return [TraceEvent(kind, i, set=i % 4, block=i) for i in range(1, n + 1)]


class TestListSink:
    def test_collects_everything(self):
        sink = ListSink()
        for event in _events(5):
            sink.write(event)
        assert len(sink) == 5
        assert [e.access for e in sink] == [1, 2, 3, 4, 5]


class TestRingBufferSink:
    def test_keeps_only_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for event in _events(10):
            sink.write(event)
        assert len(sink) == 3
        assert [e.access for e in sink] == [8, 9, 10]
        assert sink.dropped == 7
        assert sink.written == 10

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_write_then_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = _events(7)
        with JSONLSink(path) as sink:
            for event in events:
                sink.write(event)
        assert sink.written == 7
        again = list(read_jsonl(path))
        assert again == events

    def test_read_validates_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"miss","access":1,"set":0}\n'
                        '{"kind":"warp","access":2}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(read_jsonl(path))
        # Without validation the unknown kind still parses structurally.
        assert len(list(read_jsonl(path, validate=False))) == 2

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="broken.jsonl:1"):
            list(read_jsonl(path))


class TestSamplingFilter:
    def test_every_keeps_multiples(self):
        sink = ListSink()
        filt = SamplingFilter(sink, every=3)
        for event in _events(9):
            filt.write(event)
        assert [e.access for e in sink] == [3, 6, 9]
        assert filt.dropped == 6

    def test_set_filter(self):
        sink = ListSink()
        filt = SamplingFilter(sink, sets=[1, 2])
        for event in _events(8):  # sets cycle 1,2,3,0,1,2,3,0
            filt.write(event)
        assert all(e.set in (1, 2) for e in sink)
        assert len(sink) == 4

    def test_duel_flip_and_psel_always_survive(self):
        sink = ListSink()
        filt = SamplingFilter(sink, sets=[0], every=1000)
        filt.write(TraceEvent("duel_flip", 7, set=3, policy=1, value=0))
        filt.write(TraceEvent("psel_sample", 7, label="psel", value=5))
        filt.write(TraceEvent("miss", 7, set=3))
        assert [e.kind for e in sink] == ["duel_flip", "psel_sample"]
        assert filt.dropped == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingFilter(ListSink(), every=0)
