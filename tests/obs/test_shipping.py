"""Cross-process telemetry spool: publish/read/merge + watchdog."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.shipping import (
    SPOOL_SCHEMA,
    SpoolWriter,
    Watchdog,
    merge_registry_payload,
    merge_spool,
    read_spool,
)
from repro.obs.spans import SpanRecorder


def _registry_with(jobs=3, seconds=1.5, bounds=(1.0, 2.0)):
    reg = MetricsRegistry()
    reg.counter("repro_worker_jobs_total").inc(jobs)
    reg.gauge("repro_worker_sim_seconds_total").inc(seconds)
    hist = reg.histogram("repro_job_seconds", bounds)
    hist.observe(0.5)
    hist.observe(1.5)
    return reg


# ----------------------------------------------------------------------
# Writer / reader roundtrip.
# ----------------------------------------------------------------------
def test_publish_read_roundtrip(tmp_path):
    writer = SpoolWriter(tmp_path, worker_id="w1")
    assert writer.publish(registry=_registry_with(), jobs_done=3)
    writer.heartbeat(job="462.libquantum/dgippr")

    state = read_spool(tmp_path)
    assert state.workers == ["w1"]
    assert state.corrupt == 0
    snap = state.snapshots["w1"]
    assert snap["schema"] == SPOOL_SCHEMA
    assert snap["jobs_done"] == 3
    assert "w1" in state.heartbeats and state.heartbeats["w1"] > 0


def test_publish_throttles_but_force_bypasses(tmp_path):
    writer = SpoolWriter(tmp_path, worker_id="w1", min_interval=60.0)
    assert writer.publish(force=True)
    assert not writer.publish(force=False)  # inside the throttle window
    assert writer.publish(force=True)  # force always writes
    assert writer.publishes == 2


def test_snapshot_counts_as_heartbeat(tmp_path):
    """A snapshot write is proof of life even without an hb file."""
    SpoolWriter(tmp_path, worker_id="w9").publish(jobs_done=1)
    state = read_spool(tmp_path)
    assert "w9" in state.heartbeats
    assert state.heartbeats["w9"] > 0


def test_read_spool_missing_dir_is_empty(tmp_path):
    state = read_spool(tmp_path / "never-created")
    assert state.workers == []
    assert state.corrupt == 0


# ----------------------------------------------------------------------
# Crashed-worker tolerance: torn JSON and stray tmp files are skipped.
# ----------------------------------------------------------------------
def test_torn_and_alien_files_counted_not_fatal(tmp_path):
    SpoolWriter(tmp_path, worker_id="good").publish(
        registry=_registry_with(jobs=2), jobs_done=2
    )
    # A worker killed mid-write: truncated JSON under a snapshot name.
    (tmp_path / "worker-crashed.json").write_text('{"schema": "repro-spo')
    # Wrong schema entirely.
    (tmp_path / "worker-alien.json").write_text('{"schema": "other/1"}')
    # Torn heartbeat.
    (tmp_path / "hb-crashed.json").write_text("{")
    # A stray .tmp from an interrupted atomic write is not scanned at all.
    (tmp_path / ".worker-crashed.json.123.tmp").write_text("junk")

    state = read_spool(tmp_path)
    assert state.workers == ["good"]
    assert state.corrupt == 3  # two bad snapshots + one bad heartbeat

    # And the merge over the same dir still yields the good worker's data.
    parent = MetricsRegistry()
    merged_state = merge_spool(tmp_path, registry=parent)
    assert merged_state.corrupt == 3
    assert parent.counter("repro_worker_jobs_total").value == 2


# ----------------------------------------------------------------------
# Merge arithmetic: parent totals == sum of worker deltas.
# ----------------------------------------------------------------------
def test_merge_spool_sums_counters_gauges_histograms(tmp_path):
    for i, (jobs, secs) in enumerate([(3, 1.5), (5, 2.25)]):
        SpoolWriter(tmp_path, worker_id=f"w{i}").publish(
            registry=_registry_with(jobs=jobs, seconds=secs), jobs_done=jobs
        )

    parent = MetricsRegistry()
    recorder = SpanRecorder(process_label="parent")
    state = merge_spool(tmp_path, registry=parent, recorder=recorder)

    assert sorted(state.snapshots) == ["w0", "w1"]
    assert parent.counter("repro_worker_jobs_total").value == 8
    assert parent.gauge("repro_worker_sim_seconds_total").value == (
        pytest.approx(3.75)
    )
    hist = parent.histogram("repro_job_seconds", (1.0, 2.0))
    assert hist.count == 4  # 2 observations per worker
    assert hist.sum == pytest.approx(2 * (0.5 + 1.5))


def test_merge_spool_merges_worker_spans(tmp_path):
    worker_rec = SpanRecorder(process_label="worker")
    worker_rec._pid = 4242
    worker_rec.record(name="job.simulate", path="job.simulate", ts_us=0,
                      dur_us=10.0, self_us=10.0, args={})
    SpoolWriter(tmp_path, worker_id="w0").publish(recorder=worker_rec)

    parent = SpanRecorder(process_label="parent")
    state = merge_spool(tmp_path, recorder=parent)
    assert state.merged_records == 1
    assert 4242 in parent.pids()


def test_merge_cumulative_snapshot_replaced_not_double_counted(tmp_path):
    """Snapshots are cumulative: only the latest per worker is merged."""
    writer = SpoolWriter(tmp_path, worker_id="w0")
    writer.publish(registry=_registry_with(jobs=3), jobs_done=3)
    writer.publish(registry=_registry_with(jobs=7), jobs_done=7)  # replaces

    parent = MetricsRegistry()
    merge_spool(tmp_path, registry=parent)
    assert parent.counter("repro_worker_jobs_total").value == 7


def test_merge_registry_payload_rejects_unknown_type():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        merge_registry_payload(reg, {
            "bogus": {"type": "summary", "series": [{"value": 1}]},
        })


def test_registry_payload_json_roundtrip(tmp_path):
    """to_json survives an actual JSON serialization hop (the spool)."""
    payload = json.loads(json.dumps(_registry_with().to_json()))
    parent = MetricsRegistry()
    assert merge_registry_payload(parent, payload) == 3
    assert parent.counter("repro_worker_jobs_total").value == 3


# ----------------------------------------------------------------------
# Watchdog.
# ----------------------------------------------------------------------
def test_watchdog_threshold_has_floor():
    dog = Watchdog(factor=10.0, floor_sec=5.0)
    assert dog.threshold(0.0) == 5.0  # no jobs yet: floor applies
    assert dog.threshold(2.0) == 20.0


def test_watchdog_flags_once_and_recovers():
    registry = MetricsRegistry()
    dog = Watchdog(factor=10.0, floor_sec=5.0, registry=registry)
    now = 1000.0
    beats = {"w0": now - 1.0, "w1": now - 30.0}

    newly = dog.check(beats, median_job_sec=1.0, now=now)
    assert newly == ["w1"]
    assert set(dog.flagged) == {"w1"}

    # Idempotent: still stalled, but not re-reported or re-counted.
    assert dog.check(beats, median_job_sec=1.0, now=now + 1.0) == []
    stalls = registry.counter("repro_shipping_stalled_workers_total")
    assert stalls.value == 1

    # Recovery unflags.
    beats["w1"] = now + 2.0
    assert dog.check(beats, median_job_sec=1.0, now=now + 3.0) == []
    assert dog.flagged == {}

    # A second genuine stall is a second event.
    beats["w1"] = now - 100.0
    assert dog.check(beats, median_job_sec=1.0, now=now + 4.0) == ["w1"]
    assert stalls.value == 2


def test_watchdog_rejects_nonpositive_parameters():
    with pytest.raises(ValueError):
        Watchdog(factor=0)
    with pytest.raises(ValueError):
        Watchdog(floor_sec=-1.0)
