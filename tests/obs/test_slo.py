"""Unit tests for :mod:`repro.obs.slo`.

HdrHistogram: indexing invariants, bounded quantization error,
lossless cross-shard merge, serde round-trip.  SLOSpec/SLOEvaluator:
validation, multi-window burn-rate firing, latching, recovery.
"""

import math
import random

import pytest

from repro.obs.slo import (
    DEFAULT_QUANTILES,
    HdrHistogram,
    SLOEvaluator,
    SLOSpec,
)


class TestHdrIndexing:
    def test_small_values_are_exact(self):
        h = HdrHistogram(unit=1.0, sub_bits=5)
        for units in range(32):
            lo, hi = h.bucket_bounds(h._index_of(units))
            assert lo == units and hi == units + 1

    def test_index_is_monotone_and_covers(self):
        h = HdrHistogram(unit=1.0, sub_bits=3)
        prev = -1
        for units in range(4096):
            index = h._index_of(units)
            assert index >= prev
            lo, hi = h.bucket_bounds(index)
            assert lo <= units < hi
            prev = index

    def test_relative_error_bound(self):
        # Below 2**sub_bits buckets are exact-to-the-unit; the relative
        # bound kicks in for the log-bucketed octaves above.
        h = HdrHistogram(unit=1.0, sub_bits=5)
        for units in (32, 100, 1023, 65537, 10**9):
            lo, hi = h.bucket_bounds(h._index_of(units))
            assert (hi - lo) / lo <= h.relative_error + 1e-12

    def test_bucket_bounds_rejects_negative(self):
        with pytest.raises(ValueError, match="bucket index"):
            HdrHistogram().bucket_bounds(-1)


class TestHdrRecording:
    def test_rejects_bad_values(self):
        h = HdrHistogram()
        with pytest.raises(ValueError, match="NaN"):
            h.record(float("nan"))
        with pytest.raises(ValueError, match=">= 0"):
            h.record(-1e-9)
        with pytest.raises(ValueError, match="weight"):
            h.record(1e-6, weight=-1)

    def test_zero_weight_is_noop(self):
        h = HdrHistogram()
        h.record(1e-3, weight=0)
        assert len(h) == 0
        assert h.quantile(0.5) is None
        assert h.mean is None

    def test_weighted_record(self):
        h = HdrHistogram(unit=1.0, sub_bits=5)
        h.record(10, weight=1000)
        assert h.count == 1000
        assert h.sum == pytest.approx(10_000)
        assert h.quantile(0.5) == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="unit"):
            HdrHistogram(unit=0)
        with pytest.raises(ValueError, match="sub_bits"):
            HdrHistogram(sub_bits=0)


class TestHdrQuantiles:
    def test_extremes_are_exact(self):
        h = HdrHistogram(unit=1e-9)
        values = [3e-6, 1e-4, 7.5e-3, 42e-6]
        for v in values:
            h.record(v)
        assert h.quantile(0.0) == pytest.approx(min(values))
        assert h.quantile(1.0) == pytest.approx(max(values))

    def test_quantile_error_within_bound(self):
        rng = random.Random(7)
        h = HdrHistogram(unit=1e-9, sub_bits=5)
        samples = sorted(rng.lognormvariate(-9, 1.0) for _ in range(5000))
        for v in samples:
            h.record(v)
        for q in DEFAULT_QUANTILES:
            exact = samples[min(len(samples) - 1,
                                max(0, math.ceil(q * len(samples)) - 1))]
            got = h.quantile(q)
            assert abs(got - exact) / exact <= h.relative_error + 1e-9

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            HdrHistogram().quantile(1.5)

    def test_percentile_labels(self):
        h = HdrHistogram(unit=1.0)
        h.record(5)
        pcts = h.percentiles()
        assert set(pcts) == {"p50", "p90", "p99", "p99_9"}
        assert pcts["p50"] == 5


class TestHdrMerge:
    def test_cross_shard_merge_is_bit_exact(self):
        # Recording everything into one histogram vs sharding the same
        # stream across two and merging must give identical raw counts.
        rng = random.Random(11)
        single = HdrHistogram(unit=1e-9)
        shards = [HdrHistogram(unit=1e-9) for _ in range(2)]
        for i in range(4000):
            v = rng.expovariate(1e4)
            single.record(v)
            shards[i % 2].record(v)
        merged = HdrHistogram(unit=1e-9)
        for shard in shards:
            merged.merge(shard)
        assert merged.counts == single.counts
        assert merged.count == single.count
        assert merged.sum == pytest.approx(single.sum)
        assert merged.min_value == single.min_value
        assert merged.max_value == single.max_value
        for q in DEFAULT_QUANTILES:
            assert merged.quantile(q) == single.quantile(q)

    def test_layout_mismatch_raises(self):
        a = HdrHistogram(unit=1e-9, sub_bits=5)
        with pytest.raises(ValueError, match="unit"):
            a.merge(HdrHistogram(unit=1e-6, sub_bits=5))
        with pytest.raises(ValueError, match="sub_bits"):
            a.merge(HdrHistogram(unit=1e-9, sub_bits=6))

    def test_merge_rejects_negative_index(self):
        a = HdrHistogram()
        with pytest.raises(ValueError, match="bucket index"):
            a.merge_raw({-3: 1}, 1, 0.0)

    def test_serde_round_trip(self):
        h = HdrHistogram(unit=1e-9)
        for v in (1e-6, 3e-5, 2e-3):
            h.record(v, weight=7)
        clone = HdrHistogram.from_dict(h.to_dict())
        assert clone.counts == h.counts
        assert clone.count == h.count
        assert clone.min_value == h.min_value
        assert clone.max_value == h.max_value

    def test_from_dict_rejects_other_schemas(self):
        with pytest.raises(ValueError, match="schema"):
            HdrHistogram.from_dict({"schema": "bogus/9"})


class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="latency_target"):
            SLOSpec(latency_target=0)
        with pytest.raises(ValueError, match="latency_quantile"):
            SLOSpec(latency_target=1e-3, latency_quantile=1.0)
        with pytest.raises(ValueError, match="min_hit_rate"):
            SLOSpec(min_hit_rate=1.5)
        with pytest.raises(ValueError, match="max_shed_ratio"):
            SLOSpec(max_shed_ratio=-0.1)
        with pytest.raises(ValueError, match="budget"):
            SLOSpec(min_hit_rate=0.9, budget=0.0)
        with pytest.raises(ValueError, match="short_windows"):
            SLOSpec(min_hit_rate=0.9, short_windows=5, long_windows=3)
        with pytest.raises(ValueError, match="burn_threshold"):
            SLOSpec(min_hit_rate=0.9, burn_threshold=0)

    def test_enabled_and_objectives(self):
        assert not SLOSpec().enabled
        spec = SLOSpec(latency_target=1e-3, min_hit_rate=0.9)
        assert spec.enabled
        assert spec.objectives() == ("latency", "hit_rate")

    def test_dict_round_trip(self):
        spec = SLOSpec(latency_target=2e-3, min_hit_rate=0.8,
                       max_shed_ratio=0.05, budget=0.2,
                       short_windows=2, long_windows=8)
        assert SLOSpec.from_dict(spec.to_dict()) == spec


def window(index, hit_rate=None, shed_ratio=None):
    return {
        "index": index,
        "end_access": (index + 1) * 1000,
        "hit_rate": hit_rate,
        "shed_ratio": shed_ratio,
    }


class TestSLOEvaluator:
    def test_requires_enabled_spec(self):
        with pytest.raises(ValueError, match="no enabled objectives"):
            SLOEvaluator(SLOSpec())

    def test_sustained_breach_fires_once(self):
        spec = SLOSpec(min_hit_rate=0.9, budget=0.1,
                       short_windows=3, long_windows=6)
        ev = SLOEvaluator(spec)
        fired = [ev.observe_window(window(i, hit_rate=0.5))
                 for i in range(6)]
        events = [f for f in fired if f]
        assert len(events) == 1          # latched after the first firing
        assert events[0]["objective"] == "hit_rate"
        assert events[0]["window_index"] == 2   # short horizon filled
        assert events[0]["value"] == 0.5
        assert ev.ok is False
        summary = ev.summary()
        assert summary["ok"] is False
        assert summary["windows_seen"] == 6
        assert summary["burn_rates"]["hit_rate"]["short"] == \
            pytest.approx(1.0 / spec.budget)

    def test_single_noisy_window_stays_quiet(self):
        spec = SLOSpec(min_hit_rate=0.9, budget=0.34,
                       short_windows=3, long_windows=6)
        ev = SLOEvaluator(spec)
        rates = [0.95, 0.96, 0.5, 0.95, 0.97, 0.96]
        assert all(ev.observe_window(window(i, hit_rate=r)) is None
                   for i, r in enumerate(rates))
        assert ev.ok

    def test_latch_releases_after_recovery(self):
        spec = SLOSpec(min_hit_rate=0.9, budget=0.5,
                       short_windows=2, long_windows=2)
        ev = SLOEvaluator(spec)
        for i in range(3):
            ev.observe_window(window(i, hit_rate=0.1))
        assert len(ev.violations) == 1
        for i in range(3, 6):            # recover: burn drops, latch opens
            ev.observe_window(window(i, hit_rate=0.99))
        for i in range(6, 9):            # second breach fires again
            ev.observe_window(window(i, hit_rate=0.1))
        assert len(ev.violations) == 2

    def test_unmeasurable_windows_are_skipped(self):
        spec = SLOSpec(min_hit_rate=0.9, short_windows=2, long_windows=4)
        ev = SLOEvaluator(spec)
        for i in range(10):
            assert ev.observe_window(window(i, hit_rate=None)) is None
        assert ev.ok

    def test_latency_objective_uses_passed_quantile(self):
        spec = SLOSpec(latency_target=1e-3, budget=0.1,
                       short_windows=2, long_windows=4)
        ev = SLOEvaluator(spec)
        assert ev.observe_window(window(0), latency=5e-3) is None
        fired = ev.observe_window(window(1), latency=5e-3)
        assert fired is not None
        assert fired["objective"] == "latency"
        assert fired["value"] == 5e-3

    def test_shed_ratio_objective(self):
        spec = SLOSpec(max_shed_ratio=0.01, budget=0.1,
                       short_windows=2, long_windows=4)
        ev = SLOEvaluator(spec)
        ev.observe_window(window(0, shed_ratio=0.2))
        fired = ev.observe_window(window(1, shed_ratio=0.2))
        assert fired is not None and fired["objective"] == "shed_ratio"
