"""Tracer: event emission, non-perturbation, replay, registry rebuild."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.obs import (
    ListSink,
    MetricsRegistry,
    Tracer,
    parse_prometheus,
    registry_from_events,
    replay_counts,
)
from repro.policies import make_policy

NUM_SETS, ASSOC = 16, 16


def _stream(n, seed=3):
    """Deterministic mixed hit/miss stream over a 2x-capacity footprint."""
    footprint = NUM_SETS * ASSOC * 2
    state = seed
    out = []
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state % footprint)
    return out


def _run(policy_name, tracer=None, n=3000, **kwargs):
    policy = make_policy(policy_name, NUM_SETS, ASSOC, **kwargs)
    cache = SetAssociativeCache(NUM_SETS, ASSOC, policy, block_size=1)
    if tracer is not None:
        cache.attach_tracer(tracer)
    for address in _stream(n):
        cache.access(address)
    return cache


class TestNonPerturbation:
    @pytest.mark.parametrize("policy", ["plru", "gippr", "dgippr", "drrip"])
    def test_traced_equals_untraced(self, policy):
        """Attaching a tracer must not change a single statistic."""
        plain = _run(policy)
        traced = _run(policy, tracer=Tracer(sink=ListSink()))
        a, b = plain.stats, traced.stats
        assert (a.accesses, a.hits, a.misses, a.evictions, a.writebacks,
                a.bypasses) == (b.accesses, b.hits, b.misses, b.evictions,
                                b.writebacks, b.bypasses)

    def test_detach_restores_plain_path(self):
        tracer = Tracer(sink=ListSink())
        policy = make_policy("plru", NUM_SETS, ASSOC)
        cache = SetAssociativeCache(NUM_SETS, ASSOC, policy, block_size=1)
        cache.attach_tracer(tracer)
        cache.access(0)
        assert cache.detach_tracer() is tracer
        assert tracer.events_emitted > 0
        before = tracer.events_emitted
        cache.access(1)
        assert cache.stats.accesses == 2
        assert tracer.events_emitted == before


class TestReplay:
    def test_replay_counts_match_cache_stats(self):
        sink = ListSink()
        cache = _run("gippr", tracer=Tracer(sink=sink))
        counts = replay_counts(sink)
        stats = cache.stats
        assert counts["accesses"] == stats.accesses
        assert counts["hits"] == stats.hits
        assert counts["misses"] == stats.misses
        assert counts["evictions"] == stats.evictions
        assert counts["bypasses"] == stats.bypasses
        # GIPPR never bypasses: every miss allocates a block.
        assert counts["insertions"] == stats.misses

    def test_replay_rejects_unknown_kind(self):
        from repro.obs import TraceEvent

        with pytest.raises(ValueError):
            replay_counts([TraceEvent("warp", 1)])


class TestEmission:
    def test_hits_carry_positions_and_promotions(self):
        sink = ListSink()
        _run("gippr", tracer=Tracer(sink=sink))
        hits = [e for e in sink if e.kind == "hit"]
        promotions = [e for e in sink if e.kind == "promotion"]
        assert hits, "stream produced no hits"
        assert all(e.pos_before is not None and e.pos_after is not None
                   for e in hits)
        # GIPPR promotes via its PV; some hit must have moved a block.
        assert promotions
        assert all(e.pos_before != e.pos_after for e in promotions)
        # Promotions ride along their hit: same access index must exist.
        hit_accesses = {e.access for e in hits}
        assert all(e.access in hit_accesses for e in promotions)

    def test_insertions_follow_the_ipv(self):
        sink = ListSink()
        cache = _run("gippr", tracer=Tracer(sink=sink))
        insert_pos = cache.policy.ipv.entries[ASSOC]
        insertions = [e for e in sink if e.kind == "insertion"]
        assert insertions
        # set_position places the incoming block exactly at V[k].
        assert all(e.pos_after == insert_pos for e in insertions)

    def test_evictions_record_victim_position(self):
        sink = ListSink()
        _run("plru", tracer=Tracer(sink=sink))
        evictions = [e for e in sink if e.kind == "eviction"]
        assert evictions
        # The PLRU victim is by definition the LRU end of the stack.
        assert all(e.pos_before == ASSOC - 1 for e in evictions)


class TestRegistry:
    def test_tracer_feeds_registry(self):
        registry = MetricsRegistry()
        sink = ListSink()
        _run("gippr", tracer=Tracer(sink=sink, registry=registry))
        parsed = parse_prometheus(registry.to_prometheus())
        counts = replay_counts(sink)
        assert parsed[
            ("repro_trace_events_total", (("kind", "hit"),))
        ] == counts["hits"]
        assert parsed[
            ("repro_trace_events_total", (("kind", "miss"),))
        ] == counts["misses"]
        assert parsed[
            ("repro_insertion_position_count", ())
        ] == counts["insertions"]

    def test_registry_from_events_matches_live(self):
        live = MetricsRegistry()
        sink = ListSink()
        _run("gippr", tracer=Tracer(sink=sink, registry=live))
        rebuilt = registry_from_events(sink)
        assert parse_prometheus(rebuilt.to_prometheus()) == (
            parse_prometheus(live.to_prometheus())
        )

    def test_psel_gauges_exported(self):
        registry = MetricsRegistry()
        _run("dgippr", tracer=Tracer(sink=ListSink(), registry=registry,
                                     psel_every=10))
        parsed = parse_prometheus(registry.to_prometheus())
        sampled = [key for key in parsed if key[0] == "repro_psel_value"]
        assert sampled, "no PSEL gauges despite psel_every"


class TestValidation:
    def test_negative_psel_every_rejected(self):
        with pytest.raises(ValueError):
            Tracer(psel_every=-1)
