"""Provenance manifests: content, sidecar paths, atomic writes."""

import json

from repro.eval.config import ExperimentConfig
from repro.obs import (
    build_manifest,
    config_hash,
    git_revision,
    manifest_path_for,
    write_manifest,
)
from repro.obs.provenance import MANIFEST_SCHEMA

import pytest


def _config(**kwargs):
    kwargs.setdefault("apply_env_scale", False)
    return ExperimentConfig(num_sets=16, assoc=4, trace_length=1000, **kwargs)


class TestBuildManifest:
    def test_required_fields_present(self):
        manifest = build_manifest(
            config=_config(), policy="dgippr",
            policy_kwargs={"num_vectors": 4}, wall_time_sec=1.25,
        )
        for field in ("schema", "created_at", "host", "user", "platform",
                      "python", "code_version", "git_revision", "config",
                      "config_hash", "policy", "policy_kwargs", "seed",
                      "wall_time_sec"):
            assert field in manifest, field
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["policy"] == "dgippr"
        assert manifest["wall_time_sec"] == 1.25
        json.dumps(manifest)  # must be JSON-serializable as-is

    def test_seed_defaults_from_config(self):
        manifest = build_manifest(config=_config(seed=17))
        assert manifest["seed"] == 17

    def test_extra_merged_and_collisions_rejected(self):
        manifest = build_manifest(extra={"benchmark": "429.mcf"})
        assert manifest["benchmark"] == "429.mcf"
        with pytest.raises(ValueError, match="collides"):
            build_manifest(extra={"schema": "evil"})

    def test_config_hash_is_stable_and_sensitive(self):
        assert config_hash(_config()) == config_hash(_config())
        assert config_hash(_config()) != config_hash(_config(seed=1))
        assert config_hash(None) is None

    def test_columnar_knobs_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_BATCH_ACCESSES", "4096")
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_LANES", "6")
        manifest = build_manifest(config=_config())
        assert manifest["columnar"] == {
            "batch_accesses": 4096, "min_lanes": 6,
        }

    def test_git_revision_never_raises(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev


class TestSidecar:
    def test_manifest_path_for(self):
        assert manifest_path_for("results/fig4.csv").name == (
            "fig4.manifest.json"
        )
        assert manifest_path_for("results/report.md").name == (
            "report.manifest.json"
        )
        # Idempotent on an existing manifest path.
        assert manifest_path_for("a/b.manifest.json").name == (
            "b.manifest.json"
        )

    def test_write_and_read_back(self, tmp_path):
        artifact = tmp_path / "out" / "fig.csv"
        manifest = build_manifest(config=_config(), policy="lru")
        path = write_manifest(artifact, manifest)
        assert path == tmp_path / "out" / "fig.manifest.json"
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(manifest)
        )
        # No temp file left behind.
        assert [p.name for p in path.parent.iterdir()] == [path.name]
