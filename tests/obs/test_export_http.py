"""Unit tests for :mod:`repro.obs.export_http`.

The scrape endpoint must serve parseable OpenMetrics text (round-trip
through ``parse_prometheus``), resolve ephemeral ports, answer liveness
probes, 404 unknown paths, and shut down cleanly as a context manager.
"""

import urllib.error
import urllib.request

import pytest

from repro.obs.export_http import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    openmetrics_text,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus


def make_registry():
    registry = MetricsRegistry("repro_test")
    registry.counter("scrapes", "Scrape count").inc(3)
    registry.gauge("hit_rate", "Windowed hit rate").set(0.875)
    registry.gauge(
        "shard_latency_seconds", "Per-shard latency",
        labels={"shard": "0", "quantile": "0.99"},
    ).set(1.5e-4)
    return registry


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


class TestOpenmetricsText:
    def test_eof_terminator_and_round_trip(self):
        registry = make_registry()
        text = openmetrics_text(registry)
        assert text.endswith("# EOF\n")
        parsed = parse_prometheus(text)
        assert parsed[("repro_test_scrapes", ())] == 3
        assert parsed[("repro_test_hit_rate", ())] == pytest.approx(0.875)
        key = ("repro_test_shard_latency_seconds",
               (("quantile", "0.99"), ("shard", "0")))
        assert parsed[key] == pytest.approx(1.5e-4)

    def test_empty_registry_still_terminates(self):
        assert openmetrics_text(MetricsRegistry("x")) == "# EOF\n"


class TestMetricsServer:
    def test_serves_parseable_metrics_on_ephemeral_port(self):
        registry = make_registry()
        with MetricsServer(registry, port=0) as server:
            assert server.port > 0
            assert server.url.endswith("/metrics")
            status, ctype, body = fetch(server.url)
            assert status == 200
            assert ctype == OPENMETRICS_CONTENT_TYPE
            assert body.endswith("# EOF\n")
            parsed = parse_prometheus(body)
            assert parsed[("repro_test_scrapes", ())] == 3

    def test_scrape_sees_live_updates(self):
        registry = make_registry()
        with MetricsServer(registry, port=0) as server:
            registry.gauge("hit_rate", "Windowed hit rate").set(0.25)
            _, _, body = fetch(server.url)
            parsed = parse_prometheus(body)
            assert parsed[("repro_test_hit_rate", ())] == 0.25

    def test_callable_source_snapshots_per_scrape(self):
        calls = []

        def source():
            calls.append(1)
            return make_registry()

        with MetricsServer(source, port=0) as server:
            fetch(server.url)
            fetch(server.url)
        assert len(calls) == 2

    def test_healthz_and_root(self):
        with MetricsServer(make_registry(), port=0) as server:
            base = f"http://{server.host}:{server.port}"
            assert fetch(base + "/healthz")[:2] == (
                200, "text/plain; charset=utf-8")
            assert fetch(base + "/")[0] == 200

    def test_unknown_path_404s(self):
        with MetricsServer(make_registry(), port=0) as server:
            base = f"http://{server.host}:{server.port}"
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(base + "/nope")
            assert err.value.code == 404
            err.value.close()  # the HTTPError wraps the response socket

    def test_close_releases_port(self):
        server = MetricsServer(make_registry(), port=0)
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            fetch(url)

    def test_rejects_bad_source(self):
        with pytest.raises(TypeError, match="source"):
            MetricsServer(object())
