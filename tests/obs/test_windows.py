"""Unit tests for :mod:`repro.obs.windows`.

SlidingWindows: exact boundary splits (including a boundary pinned on a
flash-phase edge), empty/single-access windows, shed accounting, flush.
DriftDetector: warm baseline, CUSUM firing on sustained shifts, silence
on noise, re-warm after an event.
"""

import random

import pytest

from repro.obs.windows import (
    DEFAULT_DRIFT_SERIES,
    DriftDetector,
    SlidingWindows,
)
from repro.serve.workload import ServingSpec, ServingStream, auto_flash_phases


class TestSlidingWindows:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_accesses"):
            SlidingWindows(0)
        with pytest.raises(ValueError, match="max_windows"):
            SlidingWindows(10, max_windows=0)
        w = SlidingWindows(10)
        with pytest.raises(ValueError, match="non-negative"):
            w.record(-1, 0)
        with pytest.raises(ValueError, match="hits"):
            w.record(5, 6)
        with pytest.raises(ValueError, match="wall_sec"):
            w.record(5, 1, wall_sec=-0.1)

    def test_exact_close_on_boundary(self):
        w = SlidingWindows(100)
        closed = w.record(100, 40, wall_sec=0.5)
        assert len(closed) == 1
        win = closed[0]
        assert win["index"] == 0
        assert (win["start_access"], win["end_access"]) == (0, 100)
        assert win["accesses"] == 100 and win["hits"] == 40
        assert win["hit_rate"] == pytest.approx(0.4)
        assert win["throughput"] == pytest.approx(200.0)
        assert w.open_offered == 0

    def test_straddling_batch_splits_hits_proportionally(self):
        w = SlidingWindows(100)
        closed = w.record(250, 200)
        assert len(closed) == 2
        assert [c["hit_rate"] for c in closed] == [0.8, 0.8]
        assert sum(c["hits"] for c in closed) + w._hits == 200
        assert w.open_offered == 50

    def test_split_conserves_counts_exactly(self):
        rng = random.Random(3)
        w = SlidingWindows(97)     # awkward size to force many splits
        total_acc = total_hits = total_shed = 0
        closed = []
        for _ in range(200):
            acc = rng.randrange(0, 300)
            hits = rng.randrange(0, acc + 1) if acc else 0
            shed = rng.randrange(0, 50)
            total_acc += acc
            total_hits += hits
            total_shed += shed
            closed.extend(w.record(acc, hits, shed=shed))
        tail = w.flush()
        if tail:
            closed.append(tail)
        assert sum(c["accesses"] for c in closed) == total_acc
        assert sum(c["hits"] for c in closed) == total_hits
        assert sum(c["shed"] for c in closed) == total_shed
        for c in closed:
            assert 0 <= c["hits"] <= c["accesses"]
        # end/start offsets chain without gaps
        for prev, nxt in zip(closed, closed[1:]):
            assert prev["end_access"] == nxt["start_access"]

    def test_empty_window_all_shed(self):
        # Offered load counts shed, so a fully-shedding system still
        # closes windows; hit_rate is None (no serviced accesses) while
        # shed_ratio is 1.0.
        w = SlidingWindows(10)
        closed = w.record(0, 0, shed=10)
        assert len(closed) == 1
        assert closed[0]["accesses"] == 0
        assert closed[0]["hit_rate"] is None
        assert closed[0]["shed_ratio"] == 1.0
        assert closed[0]["throughput"] is None

    def test_single_access_windows(self):
        w = SlidingWindows(1)
        closed = w.record(3, 2)
        assert len(closed) == 3
        assert [c["accesses"] for c in closed] == [1, 1, 1]
        assert sum(c["hits"] for c in closed) == 2
        assert [c["hit_rate"] for c in closed] in (
            [0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0],
        )

    def test_zero_delta_is_noop(self):
        w = SlidingWindows(10)
        assert w.record(0, 0) == []
        assert w.open_offered == 0
        assert w.flush() is None

    def test_boundary_on_flash_phase_edge(self):
        # Pin a window boundary exactly on a flash-crowd phase edge and
        # check windows on either side see the regime change: feed the
        # stream in whole-window batches so window k covers accesses
        # [k*W, (k+1)*W) -- phase start 3*W lands exactly on a boundary.
        W = 4096
        accesses = 8 * W
        phases = auto_flash_phases(accesses, 1, share=0.9, hot_keys=4)
        phase = phases[0]
        start = 3 * W
        phase = type(phase)(start=start, length=phase.length,
                            share=phase.share, hot_keys=phase.hot_keys)
        spec = ServingSpec(keys=1 << 14, alpha=1.01, accesses=accesses,
                           phases=(phase,), seed=5)
        stream = ServingStream(spec, backend="python")
        addrs = []
        for chunk in stream.chunks(W):
            addrs.extend(int(a) for a in chunk)
        w = SlidingWindows(W)
        hot = {a % (1 << 14) for a in addrs[start:start + 64]}
        closed = []
        for lo in range(0, accesses, W):
            batch = addrs[lo:lo + W]
            hits = sum(1 for a in batch if a % (1 << 14) in hot)
            closed.extend(w.record(len(batch), hits))
        assert w.open_offered == 0
        assert len(closed) == 8
        assert closed[3]["start_access"] == start == phase.start
        # Inside the flash phase the hot working set dominates.
        inside = closed[3]["hit_rate"]
        before = closed[2]["hit_rate"]
        assert inside > before

    def test_max_windows_retention(self):
        w = SlidingWindows(1, max_windows=4)
        w.record(10, 0)
        assert len(w.closed) == 4
        assert w.windows_closed == 10
        assert [c["index"] for c in w.closed] == [6, 7, 8, 9]

    def test_wall_split_by_offered_fraction(self):
        w = SlidingWindows(100)
        closed = w.record(200, 0, wall_sec=1.0)
        assert len(closed) == 2
        assert closed[0]["wall_sec"] == pytest.approx(0.5)
        assert closed[1]["wall_sec"] == pytest.approx(0.5)


def mk_window(index, **values):
    return dict({"index": index, "end_access": (index + 1) * 1000}, **values)


class TestDriftDetector:
    def test_validation(self):
        with pytest.raises(ValueError, match="warmup_windows"):
            DriftDetector(warmup_windows=0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            DriftDetector(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="direction"):
            DriftDetector(series={"x": {"direction": "sideways"}})

    def test_fires_on_hit_rate_collapse(self):
        det = DriftDetector(warmup_windows=3)
        fired = []
        for i in range(3):
            fired += det.observe(mk_window(i, hit_rate=0.9))
        assert det.state()["hit_rate"]["warmed"] is True
        for i in range(3, 8):
            fired += det.observe(mk_window(i, hit_rate=0.5))
        assert len(fired) == 1
        event = fired[0]
        assert event["kind"] == "drift"
        assert event["series"] == "hit_rate"
        assert event["direction"] == "down"
        assert event["baseline"] == pytest.approx(0.9)
        assert event["value"] == 0.5
        # Re-warms after firing on post-change data: the 0.5 regime is
        # the new baseline, and the same shift never fires twice.
        state = det.state()["hit_rate"]
        assert state["warmed"] is True
        assert state["baseline"] == pytest.approx(0.5)

    def test_rewarm_adopts_new_regime(self):
        det = DriftDetector(warmup_windows=2)
        seq = [0.9, 0.9] + [0.4] * 6          # shift fires, then re-warm
        fired = []
        for i, v in enumerate(seq):
            fired += det.observe(mk_window(i, hit_rate=v))
        assert len(fired) == 1
        # Staying at the new 0.4 level is the new normal: quiet.
        for i in range(len(seq), len(seq) + 6):
            fired += det.observe(mk_window(i, hit_rate=0.4))
        assert len(fired) == 1

    def test_quiet_on_stationary_noise(self):
        rng = random.Random(17)
        det = DriftDetector(warmup_windows=5)
        fired = []
        for i in range(60):
            hit = 0.85 + rng.uniform(-0.015, 0.015)
            tp = 1e6 * (1 + rng.uniform(-0.05, 0.05))
            fired += det.observe(mk_window(i, hit_rate=hit, throughput=tp))
        assert fired == []

    def test_none_values_skip_series(self):
        det = DriftDetector(warmup_windows=2)
        for i in range(10):
            assert det.observe(mk_window(i, hit_rate=None)) == []
        assert det.state()["hit_rate"]["warmed"] is False

    def test_upward_direction(self):
        det = DriftDetector(
            series={"queue_depth": {"direction": "up", "delta": 0.1,
                                    "threshold": 0.5, "min_delta": 1.0,
                                    "min_threshold": 5.0}},
            warmup_windows=2,
        )
        fired = []
        for i in range(2):
            fired += det.observe(mk_window(i, queue_depth=2))
        for i in range(2, 8):
            fired += det.observe(mk_window(i, queue_depth=10))
        assert len(fired) == 1
        assert fired[0]["direction"] == "up"

    def test_default_series_cover_serving_signals(self):
        assert set(DEFAULT_DRIFT_SERIES) == {"hit_rate", "throughput"}
        for cfg in DEFAULT_DRIFT_SERIES.values():
            assert cfg["direction"] == "down"
