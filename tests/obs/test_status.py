"""Live run status: publisher semantics, reader tolerance, renderer, watch."""

import io
import json
import time

from repro.obs.status import (
    STATUS_SCHEMA,
    StatusPublisher,
    read_status,
    render_status,
    render_top,
    watch,
)


def _publisher(tmp_path, **kwargs):
    kwargs.setdefault("kind", "test")
    return StatusPublisher(tmp_path / "run-status.json", **kwargs)


# ----------------------------------------------------------------------
# Publisher.
# ----------------------------------------------------------------------
def test_update_merges_fields_over_previous_state(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate", jobs_done=1, jobs_total=10)
    pub.update(jobs_done=5)  # phase not repeated: must persist

    status = read_status(pub.path)
    assert status["phase"] == "simulate"
    assert status["jobs_done"] == 5
    assert status["jobs_total"] == 10
    assert status["schema"] == STATUS_SCHEMA
    assert status["final"] is False


def test_throttle_skips_writes_force_bypasses(tmp_path):
    pub = _publisher(tmp_path, min_interval=60.0)
    assert pub.update(force=True, phase="a")
    assert not pub.update(phase="b")  # throttled: no write...
    assert read_status(pub.path)["phase"] == "a"
    assert pub.update(force=True)  # ...but the merged state is not lost
    assert read_status(pub.path)["phase"] == "b"
    assert pub.writes == 2


def test_finalize_survives_and_marks_final(tmp_path):
    pub = _publisher(tmp_path, min_interval=60.0)
    pub.update(force=True, phase="simulate", jobs_done=3, jobs_total=3)
    assert pub.finalize(phase="done", eta_sec=0.0)  # ignores the throttle

    status = read_status(pub.path)
    assert status["final"] is True
    assert status["phase"] == "done"
    assert status["finished_at"] >= status["started_at"]
    # The file stays on disk as the post-mortem record.
    assert pub.path.exists()


def test_unwritable_path_degrades_to_noop(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("")  # a *file* where the parent dir should be
    pub = StatusPublisher(target / "run-status.json", kind="test")
    assert not pub.update(force=True, phase="x")
    assert not pub.finalize()
    assert pub.writes == 0


# ----------------------------------------------------------------------
# Reader tolerance.
# ----------------------------------------------------------------------
def test_read_status_none_on_missing_torn_or_alien(tmp_path):
    assert read_status(tmp_path / "missing.json") is None

    torn = tmp_path / "torn.json"
    torn.write_text('{"schema": "repro-stat')
    assert read_status(torn) is None

    alien = tmp_path / "alien.json"
    alien.write_text(json.dumps({"schema": "other/9", "phase": "x"}))
    assert read_status(alien) is None


# ----------------------------------------------------------------------
# Renderer.
# ----------------------------------------------------------------------
def test_render_status_shows_progress_and_workers(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(
        phase="simulate", jobs_done=6, jobs_total=12, throughput=3.5,
        throughput_unit="sims/s", eta_sec=90.0, cache_hit_rate=0.25,
        best_fitness=1.0625,
        workers={
            "w0": {"alive": True, "stalled": False},
            "w1": {"alive": False, "stalled": True},
        },
    )
    text = render_status(read_status(pub.path))
    assert "phase: simulate" in text
    assert "6/12 (50%)" in text
    assert "3.50 sims/s" in text
    assert "1m30s" in text  # formatted ETA
    assert "25% hit rate" in text
    assert "1.0625 fitness so far" in text
    assert "1/2 alive, STALLED: w1" in text
    assert "FINISHED" not in text


def test_render_final_status_hides_eta_marks_finished(tmp_path):
    pub = _publisher(tmp_path)
    pub.finalize(phase="done", eta_sec=0.0, jobs_done=3, jobs_total=3)
    text = render_status(read_status(pub.path))
    assert "[FINISHED]" in text
    assert "eta" not in text


def test_render_flags_stale_running_status(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate")
    status = read_status(pub.path)
    assert "stale?" in render_status(status, now=status["updated_at"] + 120)
    assert "stale?" not in render_status(status, now=status["updated_at"] + 1)


# ----------------------------------------------------------------------
# Watch loop (bounded-iteration mode — the `--once` CLI backend).
# ----------------------------------------------------------------------
def test_watch_returns_zero_on_final_status(tmp_path):
    pub = _publisher(tmp_path)
    pub.finalize(phase="done")
    out = io.StringIO()
    assert watch(pub.path, interval=0.0, iterations=3, stream=out) == 0
    assert "[FINISHED]" in out.getvalue()


def test_watch_returns_one_when_file_never_appears(tmp_path):
    out = io.StringIO()
    rc = watch(tmp_path / "nope.json", interval=0.0, iterations=2, stream=out)
    assert rc == 1
    assert "waiting for" in out.getvalue()


def test_watch_nonfinal_bounded_iterations_returns_zero(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate", jobs_done=1, jobs_total=4)
    out = io.StringIO()
    assert watch(pub.path, interval=0.0, iterations=1, stream=out) == 0
    assert "phase: simulate" in out.getvalue()


def test_watch_survives_truncation_mid_loop(tmp_path, monkeypatch):
    # A writer replacing the file can race the reader; simulate the torn
    # state by truncating the snapshot to half a JSON document between
    # watch iterations (hooked through time.sleep).  The last good
    # snapshot must stay on screen under a "stale since" banner, and the
    # exit code stays 0 because a good state *was* seen.
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="serving", jobs_done=2, jobs_total=8)
    good = pub.path.read_text()

    calls = []

    def chaos_sleep(delay):
        calls.append(delay)
        if len(calls) == 1:
            pub.path.write_text(good[: len(good) // 2])  # torn write
        elif len(calls) == 3:
            pub.path.write_text(good)  # writer finishes; file heals

    monkeypatch.setattr(time, "sleep", chaos_sleep)
    out = io.StringIO()
    assert watch(pub.path, interval=0.01, iterations=5, stream=out,
                 max_interval=0.08) == 0
    text = out.getvalue()
    assert "phase: serving" in text            # last good state re-rendered
    assert "stale since" in text
    assert "retrying every" in text
    # Backoff doubled while unreadable, then reset on the good read.
    assert calls[0] == 0.01                    # good read
    assert calls[1] == 0.02 and calls[2] == 0.04   # torn: 2x backoff
    assert calls[3] == 0.01                    # healed: reset
    # The banner is gone from the final (healed) rendering.
    assert text.rstrip().endswith("ago")


def test_watch_torn_file_never_healing_returns_one(tmp_path, monkeypatch):
    torn = tmp_path / "run-status.json"
    torn.write_text('{"schema": "repro-stat')
    monkeypatch.setattr(time, "sleep", lambda _d: None)
    out = io.StringIO()
    assert watch(torn, interval=0.0, iterations=3, stream=out) == 1
    assert "waiting for" in out.getvalue()


# ----------------------------------------------------------------------
# Serving dashboard renderer (the `repro obs top` backend).
# ----------------------------------------------------------------------
def serving_status(**overrides):
    status = {
        "schema": STATUS_SCHEMA,
        "kind": "serve",
        "run_id": "serve-1",
        "phase": "serving",
        "final": False,
        "started_at": 100.0,
        "updated_at": 101.0,
        "serving": {
            "window_accesses": 4096,
            "windows_closed": 6,
            "windows": [
                {"index": 5, "hit_rate": 0.91, "shed_ratio": 0.0,
                 "throughput": 2.5e6, "queue_depth": 1},
            ],
            "latency": {"p50": 2e-7, "p90": 3e-7, "p99": 9e-7,
                        "p99_9": 4e-6},
            "shards": [
                {"shard": 0, "batches": 10, "p99": 1.5e-3,
                 "queue_depth": 0},
                {"shard": 1, "batches": 9, "p99": 1.2e-3,
                 "queue_depth": 2},
            ],
            "drift": {"events": [], "state": {}},
            "slo": {
                "ok": False,
                "burn_rates": {"hit_rate": {"short": 3.3, "long": 1.1}},
            },
            "metrics_port": 9464,
        },
    }
    status["serving"].update(overrides)
    return status


def test_render_top_shows_serving_dashboard():
    text = render_top(serving_status(), now=102.0)
    assert "p99 900ns" in text
    assert "window    #5  hit 91.0%" in text
    assert "tp 2.50M/s" in text
    assert "0: p99 1.50ms q0 | 1: p99 1.20ms q2" in text
    assert "drift     none" in text
    assert "hit_rate 3.30/1.10" in text and "[VIOLATED]" in text
    assert "http://127.0.0.1:9464/metrics" in text


def test_render_top_shows_last_drift_event():
    status = serving_status(drift={
        "events": [{"series": "hit_rate", "direction": "down",
                    "window_index": 4}],
        "state": {},
    })
    text = render_top(status, now=102.0)
    assert "1 event(s); last: hit_rate down @window 4" in text


def test_render_top_falls_back_without_serving_section():
    status = {
        "schema": STATUS_SCHEMA, "kind": "ga", "run_id": "ga-1",
        "phase": "evolve", "final": False,
        "started_at": 100.0, "updated_at": 101.0,
    }
    assert render_top(status, now=102.0) == render_status(status, now=102.0)


def test_watch_with_render_top(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0, kind="serve")
    pub.finalize(phase="done", serving=serving_status()["serving"])
    out = io.StringIO()
    assert watch(pub.path, interval=0.0, iterations=1, stream=out,
                 render=render_top) == 0
    assert "shards    0:" in out.getvalue()
