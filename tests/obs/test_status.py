"""Live run status: publisher semantics, reader tolerance, renderer, watch."""

import io
import json

from repro.obs.status import (
    STATUS_SCHEMA,
    StatusPublisher,
    read_status,
    render_status,
    watch,
)


def _publisher(tmp_path, **kwargs):
    kwargs.setdefault("kind", "test")
    return StatusPublisher(tmp_path / "run-status.json", **kwargs)


# ----------------------------------------------------------------------
# Publisher.
# ----------------------------------------------------------------------
def test_update_merges_fields_over_previous_state(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate", jobs_done=1, jobs_total=10)
    pub.update(jobs_done=5)  # phase not repeated: must persist

    status = read_status(pub.path)
    assert status["phase"] == "simulate"
    assert status["jobs_done"] == 5
    assert status["jobs_total"] == 10
    assert status["schema"] == STATUS_SCHEMA
    assert status["final"] is False


def test_throttle_skips_writes_force_bypasses(tmp_path):
    pub = _publisher(tmp_path, min_interval=60.0)
    assert pub.update(force=True, phase="a")
    assert not pub.update(phase="b")  # throttled: no write...
    assert read_status(pub.path)["phase"] == "a"
    assert pub.update(force=True)  # ...but the merged state is not lost
    assert read_status(pub.path)["phase"] == "b"
    assert pub.writes == 2


def test_finalize_survives_and_marks_final(tmp_path):
    pub = _publisher(tmp_path, min_interval=60.0)
    pub.update(force=True, phase="simulate", jobs_done=3, jobs_total=3)
    assert pub.finalize(phase="done", eta_sec=0.0)  # ignores the throttle

    status = read_status(pub.path)
    assert status["final"] is True
    assert status["phase"] == "done"
    assert status["finished_at"] >= status["started_at"]
    # The file stays on disk as the post-mortem record.
    assert pub.path.exists()


def test_unwritable_path_degrades_to_noop(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("")  # a *file* where the parent dir should be
    pub = StatusPublisher(target / "run-status.json", kind="test")
    assert not pub.update(force=True, phase="x")
    assert not pub.finalize()
    assert pub.writes == 0


# ----------------------------------------------------------------------
# Reader tolerance.
# ----------------------------------------------------------------------
def test_read_status_none_on_missing_torn_or_alien(tmp_path):
    assert read_status(tmp_path / "missing.json") is None

    torn = tmp_path / "torn.json"
    torn.write_text('{"schema": "repro-stat')
    assert read_status(torn) is None

    alien = tmp_path / "alien.json"
    alien.write_text(json.dumps({"schema": "other/9", "phase": "x"}))
    assert read_status(alien) is None


# ----------------------------------------------------------------------
# Renderer.
# ----------------------------------------------------------------------
def test_render_status_shows_progress_and_workers(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(
        phase="simulate", jobs_done=6, jobs_total=12, throughput=3.5,
        throughput_unit="sims/s", eta_sec=90.0, cache_hit_rate=0.25,
        best_fitness=1.0625,
        workers={
            "w0": {"alive": True, "stalled": False},
            "w1": {"alive": False, "stalled": True},
        },
    )
    text = render_status(read_status(pub.path))
    assert "phase: simulate" in text
    assert "6/12 (50%)" in text
    assert "3.50 sims/s" in text
    assert "1m30s" in text  # formatted ETA
    assert "25% hit rate" in text
    assert "1.0625 fitness so far" in text
    assert "1/2 alive, STALLED: w1" in text
    assert "FINISHED" not in text


def test_render_final_status_hides_eta_marks_finished(tmp_path):
    pub = _publisher(tmp_path)
    pub.finalize(phase="done", eta_sec=0.0, jobs_done=3, jobs_total=3)
    text = render_status(read_status(pub.path))
    assert "[FINISHED]" in text
    assert "eta" not in text


def test_render_flags_stale_running_status(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate")
    status = read_status(pub.path)
    assert "stale?" in render_status(status, now=status["updated_at"] + 120)
    assert "stale?" not in render_status(status, now=status["updated_at"] + 1)


# ----------------------------------------------------------------------
# Watch loop (bounded-iteration mode — the `--once` CLI backend).
# ----------------------------------------------------------------------
def test_watch_returns_zero_on_final_status(tmp_path):
    pub = _publisher(tmp_path)
    pub.finalize(phase="done")
    out = io.StringIO()
    assert watch(pub.path, interval=0.0, iterations=3, stream=out) == 0
    assert "[FINISHED]" in out.getvalue()


def test_watch_returns_one_when_file_never_appears(tmp_path):
    out = io.StringIO()
    rc = watch(tmp_path / "nope.json", interval=0.0, iterations=2, stream=out)
    assert rc == 1
    assert "waiting for" in out.getvalue()


def test_watch_nonfinal_bounded_iterations_returns_zero(tmp_path):
    pub = _publisher(tmp_path, min_interval=0.0)
    pub.update(phase="simulate", jobs_done=1, jobs_total=4)
    out = io.StringIO()
    assert watch(pub.path, interval=0.0, iterations=1, stream=out) == 0
    assert "phase: simulate" in out.getvalue()
