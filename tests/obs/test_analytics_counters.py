"""Columnar-engine counters: reconciliation, flush surfaces, sampling."""

import random

import pytest

from repro.kernels import tables as ktables

numpy_missing = ktables.numpy_or_none() is None
needs_numpy = pytest.mark.skipif(
    numpy_missing, reason="columnar engine requires numpy"
)

NUM_SETS = 8
ASSOC = 8


def make_stream(n, seed=0):
    rng = random.Random(seed)
    footprint = 2 * NUM_SETS * ASSOC
    return [rng.randrange(footprint) for _ in range(n)]


def lanes():
    from repro.core.ipv import lip_ipv, lru_ipv

    rng = random.Random(5)
    return [
        tuple(lru_ipv(ASSOC).entries),
        tuple(lip_ipv(ASSOC).entries),
        tuple(rng.randrange(ASSOC) for _ in range(ASSOC + 1)),
    ]


@pytest.fixture
def batch_run():
    from repro.engine.columnar import BatchSimulator

    stream = make_stream(4_000, seed=1)
    simulator = BatchSimulator(NUM_SETS, ASSOC, lanes())
    misses, miss_indices = simulator.run(
        stream, collect_miss_indices=True, counters=True
    )
    return stream, simulator, misses, miss_indices


@needs_numpy
class TestBatchCounters:
    def test_reconciles_with_scalar_cache(self, batch_run):
        from repro.cache import SetAssociativeCache
        from repro.core.ipv import IPV
        from repro.obs.analytics import reconcile_with_stats
        from repro.policies import GIPPRPolicy

        stream, simulator, misses, _ = batch_run
        counters = simulator.counters
        for lane, entries in enumerate(lanes()):
            policy = GIPPRPolicy(
                NUM_SETS, ASSOC, ipv=IPV(list(entries)), kernel="walk"
            )
            cache = SetAssociativeCache(
                NUM_SETS, ASSOC, policy, block_size=1
            )
            for address in stream:
                cache.access(address)
            assert reconcile_with_stats(counters, lane, cache.stats) == []
            totals = counters.totals(lane)
            assert totals["measured_misses"] == int(misses[lane])
            assert totals["fills"] == totals["misses"]
            assert totals["hit_rate"] == pytest.approx(
                totals["hits"] / totals["accesses"]
            )

    def test_counters_do_not_perturb_misses(self):
        from repro.engine.columnar import BatchSimulator

        stream = make_stream(3_000, seed=2)
        simulator = BatchSimulator(NUM_SETS, ASSOC, lanes())
        plain = simulator.run(stream)
        assert simulator.counters is None
        counted = simulator.run(stream, counters=True)
        assert (plain == counted).all()
        assert simulator.counters is not None

    def test_set_accesses_match_bincount(self, batch_run):
        stream, simulator, _, _ = batch_run
        counters = simulator.counters
        mask = NUM_SETS - 1
        expected = [0] * NUM_SETS
        for address in stream:
            expected[address & mask] += 1
        assert list(counters.set_accesses) == expected

    def test_depth_histogram_sums_to_hits_when_exhaustive(self):
        from repro.engine.columnar import BatchSimulator

        stream = make_stream(2_000, seed=3)
        simulator = BatchSimulator(NUM_SETS, ASSOC, lanes())
        simulator.run(stream, counters=True, depth_sample=1)
        counters = simulator.counters
        for lane in range(len(lanes())):
            assert (
                sum(counters.hit_depth_histogram(lane))
                == counters.totals(lane)["hits"]
            )

    def test_rejects_bad_depth_sample(self):
        from repro.engine.columnar import BatchSimulator

        simulator = BatchSimulator(NUM_SETS, ASSOC, lanes())
        with pytest.raises(ValueError, match="depth_sample"):
            simulator.run(make_stream(100), counters=True, depth_sample=0)

    def test_reconcile_reports_mismatch(self, batch_run):
        from repro.obs.analytics import reconcile_with_stats

        _, simulator, _, _ = batch_run

        class FakeStats:
            accesses = hits = misses = evictions = 0

        with pytest.raises(ValueError, match="does not reconcile"):
            reconcile_with_stats(simulator.counters, 0, FakeStats())
        problems = reconcile_with_stats(
            simulator.counters, 0, FakeStats(), raise_on_mismatch=False
        )
        assert problems and problems[0].startswith("accesses")


@needs_numpy
class TestDuelCounters:
    def test_reconciles_with_dgippr(self):
        from repro.cache import SetAssociativeCache
        from repro.core.ipv import IPV
        from repro.engine.columnar import DuelBatchSimulator
        from repro.obs.analytics import reconcile_with_stats
        from repro.policies import DGIPPRPolicy

        stream = make_stream(3_000, seed=4)
        all_lanes = lanes()
        pairs = [(all_lanes[0], all_lanes[1]), (all_lanes[1], all_lanes[2])]
        simulator = DuelBatchSimulator(NUM_SETS, ASSOC, pairs)
        misses = simulator.run(stream, counters=True)
        counters = simulator.counters
        assert counters.kind == "duel"
        for lane, (a, b) in enumerate(pairs):
            policy = DGIPPRPolicy(
                NUM_SETS, ASSOC,
                ipvs=[IPV(list(a), name="a"), IPV(list(b), name="b")],
                kernel="walk",
            )
            cache = SetAssociativeCache(
                NUM_SETS, ASSOC, policy, block_size=1
            )
            for address in stream:
                cache.access(address)
            assert reconcile_with_stats(counters, lane, cache.stats) == []
            assert int(misses[lane]) == cache.stats.misses
            assert int(counters.psel[lane]) == policy.selector.psel.value
            assert counters.duel_flips[lane] >= 0

    def test_empty_stream(self):
        from repro.engine.columnar import DuelBatchSimulator

        all_lanes = lanes()
        simulator = DuelBatchSimulator(
            NUM_SETS, ASSOC, [(all_lanes[0], all_lanes[1])]
        )
        misses = simulator.run([], counters=True)
        assert int(misses[0]) == 0
        assert simulator.counters.totals(0)["accesses"] == 0


@needs_numpy
class TestFlushSurfaces:
    def test_publish_gauges_and_histogram(self, batch_run):
        from repro.obs.analytics import publish_batch_counters
        from repro.obs.metrics import MetricsRegistry, parse_prometheus

        _, simulator, _, _ = batch_run
        counters = simulator.counters
        registry = MetricsRegistry()
        publish_batch_counters(counters, registry, lane_names=["a", "b", "c"])
        publish_batch_counters(counters, registry, lane_names=["a", "b", "c"])
        parsed = parse_prometheus(registry.to_prometheus())
        lane_a = (("engine", "batch"), ("lane", "a"))
        totals = counters.totals(0)
        # Republishing sets gauges, so totals must not have doubled.
        assert parsed[("repro_engine_hits", lane_a)] == totals["hits"]
        assert parsed[("repro_engine_misses", lane_a)] == totals["misses"]
        assert parsed[("repro_engine_accesses", (("engine", "batch"),))] == (
            counters.accesses
        )

    def test_publish_rejects_wrong_lane_count(self, batch_run):
        from repro.obs.analytics import publish_batch_counters
        from repro.obs.metrics import MetricsRegistry

        _, simulator, _, _ = batch_run
        with pytest.raises(ValueError, match="lane names"):
            publish_batch_counters(
                simulator.counters, MetricsRegistry(), lane_names=["x"]
            )

    def test_manifest_extra_is_json_safe(self, batch_run):
        import json

        from repro.obs.analytics.counters import counters_manifest_extra

        _, simulator, _, _ = batch_run
        extra = counters_manifest_extra(simulator.counters)
        assert extra["schema"] == "repro-engine-counters/1"
        assert len(extra["lanes"]) == 3
        for entry in extra["lanes"]:
            assert entry["hits"] + entry["misses"] == entry["accesses"]
        json.dumps(extra)

    def test_sampled_events_validate_and_locate(self, batch_run):
        from repro.obs.analytics.counters import sampled_miss_events

        stream, simulator, _, miss_indices = batch_run
        events = sampled_miss_events(
            stream, miss_indices[0], NUM_SETS, sample=8, policy=0
        )
        assert events
        mask = NUM_SETS - 1
        for event in events:
            payload = event.to_dict()
            assert payload["kind"] == "miss"
            assert payload["block"] == stream[payload["access"]]
            assert payload["set"] == payload["block"] & mask
            assert payload["policy"] == 0

    def test_sampled_events_limit_and_validation(self, batch_run):
        from repro.obs.analytics.counters import sampled_miss_events

        stream, _, _, miss_indices = batch_run
        events = sampled_miss_events(
            stream, miss_indices[0], NUM_SETS, sample=1, limit=5
        )
        assert len(events) == 5
        with pytest.raises(ValueError):
            sampled_miss_events(stream, [], NUM_SETS, sample=0)
        with pytest.raises(ValueError):
            sampled_miss_events(stream, [], 3, sample=1)
