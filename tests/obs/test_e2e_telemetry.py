"""End-to-end multiprocess telemetry.

The acceptance contract for the observability layer, exercised for real
(spawned worker processes, no mocks):

* a ``workers=2`` matrix run with an explicit telemetry directory leaves
  a merged spool state behind whose parent-side registry equals the sum
  of the workers' published deltas;
* the run's status file survives finalization with the terminal state;
* a profiled ``workers=2`` GA run emits a Chrome trace that validates,
  contains spans from at least two worker processes, and nests
  ``ga.generation`` over ``ga.evaluate``.

These spawn real processes, so they are the slowest tests in the obs
suite — kept to one small matrix and one tiny GA.
"""

import pytest

from repro.eval import default_config
from repro.eval.parallel import ParallelRunner
from repro.ga import FitnessEvaluator, evolve_ipv
from repro.obs.spans import (
    SpanRecorder,
    install_recorder,
    uninstall_recorder,
    validate_chrome_trace,
)
from repro.obs.status import read_status

QUICK = default_config(trace_length=3_000)
BENCHES = ["429.mcf", "462.libquantum", "482.sphinx3"]
POLICIES = [("LRU", "lru"), ("PLRU", "plru")]


@pytest.fixture(autouse=True)
def clean_recorder():
    uninstall_recorder()
    yield
    uninstall_recorder()


def test_matrix_merges_worker_deltas_and_finalizes_status(tmp_path):
    spool_base = tmp_path / "telemetry"
    status_path = tmp_path / "run-status.json"
    recorder = install_recorder(SpanRecorder(process_label="parent"))

    runner = ParallelRunner(
        workers=2, progress=False,
        telemetry=spool_base, status_path=status_path,
    )
    matrix = runner.run_matrix(POLICIES, config=QUICK, benchmarks=BENCHES)

    # Every job simulated (no cache), every result present.
    n_jobs = runner.metrics.jobs_total
    assert n_jobs >= 6  # 3 benchmarks x 2 policies, >=1 simpoint each
    assert runner.metrics.simulated == n_jobs
    assert matrix.get("LRU", "429.mcf").misses > 0

    # The merged spool state covers the workers that actually ran.
    state = runner.last_spool_state
    assert state is not None
    assert state.corrupt == 0
    assert len(state.worker_pids()) >= 1

    # Parent registry totals == sum of the workers' published deltas:
    # every simulated job increments repro_worker_jobs_total exactly once
    # in its worker, and the parent merges each cumulative snapshot once.
    jobs_by_worker = [
        s["jobs_done"] for s in state.snapshots.values()
    ]
    assert sum(jobs_by_worker) == n_jobs
    merged_jobs = runner.metrics.registry.counter("repro_worker_jobs_total")
    assert merged_jobs.value == n_jobs
    merged_secs = runner.metrics.registry.gauge(
        "repro_worker_sim_seconds_total"
    )
    assert merged_secs.value > 0.0

    # Worker spans were shipped into the parent recorder.
    worker_spans = recorder.spans_named("job.simulate")
    assert len(worker_spans) == n_jobs
    assert set(s["pid"] for s in worker_spans).isdisjoint({recorder._pid})

    # The explicit telemetry dir is retained for post-mortems.
    assert runner.last_spool_dir is not None
    assert runner.last_spool_dir.is_dir()

    # Status file survives with the terminal state.
    status = read_status(status_path)
    assert status is not None
    assert status["final"] is True
    assert status["phase"] == "done"
    assert status["jobs_done"] == status["jobs_total"] == n_jobs


def test_profiled_parallel_ga_emits_multiprocess_chrome_trace(tmp_path):
    recorder = install_recorder(SpanRecorder(process_label="ga-parent"))
    status_path = tmp_path / "ga-status.json"

    evaluator = FitnessEvaluator(
        benchmarks=["429.mcf", "462.libquantum"],
        config=default_config(trace_length=2_000),
    )
    result = evolve_ipv(
        evaluator, population_size=8, initial_population_size=8,
        generations=2, seed=3, workers=2,
        telemetry=tmp_path / "ga-telemetry",
        status_path=status_path,
    )
    assert result.best_fitness > 0

    # Spans from >=2 processes: the parent plus at least one worker (two
    # workers in practice; the pool splits an 8-chunk map between them).
    pids = recorder.pids()
    assert len(pids) >= 2
    assert recorder._pid in pids

    # Nesting: generation spans wrap the evaluate spans in the parent.
    paths = {r["path"] for r in recorder.records}
    assert any(p.endswith("ga.generation;ga.evaluate") for p in paths), paths
    assert any("ga.run" in p for p in paths)
    gens = recorder.spans_named("ga.generation")
    assert len(gens) == 2
    assert all("best_fitness" in g["args"] for g in gens)

    # Worker-side evaluate spans arrived via the spool.
    worker_evals = recorder.spans_named("ga.worker_evaluate")
    assert worker_evals
    assert all(r["pid"] != recorder._pid for r in worker_evals)

    # The combined timeline renders as a valid Chrome trace with one
    # process-name metadata entry per pid.
    trace = recorder.to_chrome_trace()
    complete_events = validate_chrome_trace(trace)
    assert complete_events == len(recorder.records)
    meta_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "M"}
    assert meta_pids == set(pids)

    # GA status finalized with the best fitness.
    status = read_status(status_path)
    assert status is not None
    assert status["final"] is True
    assert status["best_fitness"] == pytest.approx(result.best_fitness)
