"""Perf-trend history: recording, direction convention, comparator, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.trend import (
    DEFAULT_THRESHOLD,
    TREND_SCHEMA,
    compare_entries,
    flatten_bench_kernels,
    format_deltas,
    latest_deltas,
    lower_is_better,
    read_history,
    record_bench_kernels,
    record_entry,
)


def _entry(metrics):
    return {"schema": TREND_SCHEMA, "metrics": metrics}


# ----------------------------------------------------------------------
# Recording + reading.
# ----------------------------------------------------------------------
def test_record_entry_appends_keyed_by_revision(tmp_path, monkeypatch):
    from repro.obs.provenance import _reset_git_revision_memo

    _reset_git_revision_memo()  # revision is memoized per process
    monkeypatch.setenv("REPRO_GIT_REVISION", "cafebabe" * 5)
    try:
        history = tmp_path / "hist.jsonl"
        entry = record_entry(history, {"sim.k16.lut_accesses_per_sec": 1e6,
                                       "skipped": float("nan")},
                             source="bench-kernels", extra={"note": "x"})
        assert entry["git_revision"].startswith("cafebabe")
        assert "skipped" not in entry["metrics"]  # NaN dropped

        entries = read_history(history)
        assert len(entries) == 1
        assert entries[0]["source"] == "bench-kernels"
        assert entries[0]["extra"] == {"note": "x"}
    finally:
        _reset_git_revision_memo()  # drop the fake revision for later tests


def test_read_history_skips_malformed_and_alien_lines(tmp_path):
    history = tmp_path / "hist.jsonl"
    record_entry(history, {"m_sec": 1.0}, source="a")
    with open(history, "a") as handle:
        handle.write('{"schema": "other/1"}\n')  # alien schema
        handle.write("not json at all\n")
    record_entry(history, {"m_sec": 2.0}, source="b")
    with open(history, "a") as handle:
        handle.write('{"schema": "repro-tre')  # machine died mid-append

    entries = read_history(history)
    assert [e["source"] for e in entries] == ["a", "b"]
    assert read_history(history, source="b")[0]["metrics"] == {"m_sec": 2.0}


def test_read_history_missing_file_is_empty(tmp_path):
    assert read_history(tmp_path / "nope.jsonl") == []


# ----------------------------------------------------------------------
# Direction convention.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric,expected", [
    ("ga.lut_sec_per_generation", True),
    ("suite_wall_sec", True),
    ("total_seconds", True),
    ("latency_ms", True),
    ("peak_bytes", True),
    # Rate metrics must win over the `_sec` suffix they also end in.
    ("sim.k16.lut_accesses_per_sec", False),
    ("sim.k16.speedup", False),
    ("ga.speedup", False),
    ("some_count", False),
])
def test_lower_is_better_direction_convention(metric, expected):
    assert lower_is_better(metric) is expected


# ----------------------------------------------------------------------
# Comparator.
# ----------------------------------------------------------------------
def test_compare_entries_direction_aware():
    prev = _entry({"thr_per_sec": 100.0, "wall_sec": 10.0, "gone": 1.0})
    cur = _entry({"thr_per_sec": 50.0, "wall_sec": 8.0, "new": 2.0})
    deltas = {d["metric"]: d for d in compare_entries(prev, cur)}

    assert set(deltas) == {"thr_per_sec", "wall_sec", "gone", "new"}
    # Throughput halved: worse, and past the 15% default threshold.
    assert deltas["thr_per_sec"]["direction"] == "worse"
    assert deltas["thr_per_sec"]["regression"] is True
    assert deltas["thr_per_sec"]["delta_frac"] == pytest.approx(-0.5)
    # Wall time dropped 20%: better.
    assert deltas["wall_sec"]["direction"] == "better"
    assert deltas["wall_sec"]["regression"] is False
    # A vanished metric is a regression (a collapsed series must not
    # evade the gate by disappearing); a new one is informational.
    assert deltas["gone"]["direction"] == "removed"
    assert deltas["gone"]["regression"] is True
    assert deltas["gone"] == {
        "metric": "gone", "prev": 1.0, "cur": None,
        "delta_frac": None, "direction": "removed", "regression": True,
    }
    assert deltas["new"] == {
        "metric": "new", "prev": None, "cur": 2.0,
        "delta_frac": None, "direction": "added", "regression": False,
    }


def test_compare_entries_orders_common_then_removed_then_added():
    prev = _entry({"b_sec": 1.0, "a_sec": 2.0, "zap": 1.0})
    cur = _entry({"b_sec": 1.0, "a_sec": 2.0, "arrival": 3.0})
    order = [d["metric"] for d in compare_entries(prev, cur)]
    assert order == ["a_sec", "b_sec", "zap", "arrival"]


def test_compare_entries_threshold_and_flat():
    prev = _entry({"wall_sec": 10.0, "same_sec": 5.0})
    cur = _entry({"wall_sec": 11.0, "same_sec": 5.0})  # +10% rise
    deltas = {d["metric"]: d
              for d in compare_entries(prev, cur, threshold=0.15)}
    assert deltas["wall_sec"]["direction"] == "worse"
    assert deltas["wall_sec"]["regression"] is False  # under threshold
    assert deltas["same_sec"]["direction"] == "flat"

    tight = {d["metric"]: d
             for d in compare_entries(prev, cur, threshold=0.05)}
    assert tight["wall_sec"]["regression"] is True


def test_compare_entries_skips_zero_baseline_and_rejects_bad_threshold():
    prev = _entry({"wall_sec": 0.0})
    assert compare_entries(prev, _entry({"wall_sec": 5.0})) == []
    with pytest.raises(ValueError):
        compare_entries(prev, prev, threshold=-0.1)


def test_latest_deltas_needs_two_entries(tmp_path):
    history = tmp_path / "hist.jsonl"
    assert latest_deltas(history) is None
    record_entry(history, {"wall_sec": 10.0}, source="bench-kernels")
    assert latest_deltas(history) is None
    record_entry(history, {"wall_sec": 20.0}, source="bench-kernels")

    summary = latest_deltas(history)
    assert summary["threshold"] == DEFAULT_THRESHOLD
    assert len(summary["regressions"]) == 1
    assert summary["regressions"][0]["metric"] == "wall_sec"
    # Source filtering ignores entries from other recorders.
    record_entry(history, {"wall_sec": 1.0}, source="other")
    filtered = latest_deltas(history, source="bench-kernels")
    assert filtered["regressions"][0]["cur"] == 20.0


def test_latest_deltas_pairs_entries_from_the_same_source(tmp_path):
    """Interleaved recorders must not be compared against each other.

    A ``bench-serving`` row landing between two ``bench-kernels`` rows
    would otherwise make every kernel metric look removed/added.
    """
    history = tmp_path / "hist.jsonl"
    record_entry(history, {"k_sec": 10.0}, source="bench-kernels")
    record_entry(history, {"serving_throughput": 1e6},
                 source="bench-serving")
    record_entry(history, {"k_sec": 11.0}, source="bench-kernels")

    summary = latest_deltas(history)
    assert summary["source"] == "bench-kernels"
    assert [d["metric"] for d in summary["deltas"]] == ["k_sec"]
    assert summary["deltas"][0]["prev"] == 10.0
    assert summary["deltas"][0]["cur"] == 11.0
    assert not any(d["direction"] in ("removed", "added")
                   for d in summary["deltas"])

    # Pinning the source picks the newest entry of *that* series.
    serving = latest_deltas(history, source="bench-serving")
    assert serving is None  # only one serving row so far
    record_entry(history, {"serving_throughput": 2e6},
                 source="bench-serving")
    serving = latest_deltas(history, source="bench-serving")
    assert serving["source"] == "bench-serving"
    assert serving["deltas"][0]["cur"] == 2e6


def test_format_deltas_marks_regressions():
    deltas = compare_entries(_entry({"wall_sec": 10.0}),
                             _entry({"wall_sec": 20.0}))
    text = format_deltas(deltas)
    assert "!! REGRESSION" in text
    assert "+100.0%" in text


def test_format_deltas_renders_removed_and_added():
    deltas = compare_entries(_entry({"gone_sec": 3.0}),
                             _entry({"new_per_sec": 7.0}))
    text = format_deltas(deltas)
    assert "gone_sec" in text and "(absent)" in text
    assert "!! REGRESSION" in text  # the removal
    assert "new_per_sec" in text and "(added)" in text
    assert format_deltas([]) == "(no comparable metrics)"


# ----------------------------------------------------------------------
# BENCH_kernels.json flattening.
# ----------------------------------------------------------------------
def test_flatten_and_record_bench_kernels(tmp_path):
    bench = {
        "created_at": "2026-08-06T00:00:00",
        "stream": {"accesses": 1000},
        "sim_throughput": [
            {"assoc": 16, "lut_accesses_per_sec": 2e6,
             "walk_accesses_per_sec": 1e6, "speedup": 2.0},
        ],
        "ga_generation": {"lut_sec_per_generation": 0.5, "speedup": 3.0},
    }
    bench_path = tmp_path / "BENCH_kernels.json"
    bench_path.write_text(json.dumps(bench))
    history = tmp_path / "hist.jsonl"

    entry = record_bench_kernels(bench_path, history)
    assert entry["metrics"] == {
        "sim.k16.lut_accesses_per_sec": 2e6,
        "sim.k16.walk_accesses_per_sec": 1e6,
        "sim.k16.speedup": 2.0,
        "ga.lut_sec_per_generation": 0.5,
        "ga.speedup": 3.0,
    }
    assert entry["extra"]["accesses"] == 1000
    assert len(read_history(history)) == 1


def test_flatten_population_surrogate_block():
    bench = {
        "population_surrogate": {
            "surrogate_score_per_sec": 12000.0,
            "feature_sec": 0.02,
            "simulate_all_sec": 18.0,
            "prefiltered_sec": 4.0,
            "generation_speedup": 4.5,
            "audit_rho": None,  # degenerate audit sample: must be dropped
        },
    }
    metrics = flatten_bench_kernels(bench)
    assert metrics == {
        "population_surrogate.surrogate_score_per_sec": 12000.0,
        "population_surrogate.feature_sec": 0.02,
        "population_surrogate.simulate_all_sec": 18.0,
        "population_surrogate.prefiltered_sec": 4.0,
        "population_surrogate.generation_speedup": 4.5,
    }
    # Direction convention: speedups regress down, wall times regress up.
    assert not lower_is_better("population_surrogate.generation_speedup")
    assert lower_is_better("population_surrogate.simulate_all_sec")


def test_record_bench_kernels_rejects_empty_payload(tmp_path):
    bench_path = tmp_path / "empty.json"
    bench_path.write_text("{}")
    with pytest.raises(ValueError):
        record_bench_kernels(bench_path, tmp_path / "hist.jsonl")
    assert flatten_bench_kernels({}) == {}


# ----------------------------------------------------------------------
# CLI gate: `repro obs trend --check`.
# ----------------------------------------------------------------------
def test_cli_trend_check_exits_nonzero_on_regression(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    record_entry(history, {"sim.k16.lut_accesses_per_sec": 2e6},
                 source="bench-kernels")
    record_entry(history, {"sim.k16.lut_accesses_per_sec": 1e6},
                 source="bench-kernels")
    rc = cli_main(["obs", "trend", "--history", str(history), "--check"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "REGRESSION" in captured.err


def test_cli_trend_check_passes_on_improvement(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    record_entry(history, {"sim.k16.lut_accesses_per_sec": 1e6},
                 source="bench-kernels")
    record_entry(history, {"sim.k16.lut_accesses_per_sec": 2e6},
                 source="bench-kernels")
    rc = cli_main(["obs", "trend", "--history", str(history), "--check"])
    assert rc == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_trend_check_tolerates_short_history(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    record_entry(history, {"wall_sec": 1.0}, source="bench-kernels")
    rc = cli_main(["obs", "trend", "--history", str(history), "--check"])
    assert rc == 0  # one entry: nothing to compare, not a failure
