"""Disabled-tracing overhead budget and reference-path freshness.

The strict 5% budget is enforced by ``make smoke-obs`` on a quiet
machine; the unit test uses a generous ceiling so CI noise cannot flake
it, while still catching anything structurally expensive sneaking into
the hot path (the regression this guards against costs 2x, not 1.1x).
"""

from repro.obs import disabled_overhead_ratio
from repro.obs.overhead import measure_overhead

import pytest

# Generous: the hot-path regression this catches (extra work per access)
# costs tens of percent; scheduler noise on shared CI does not.
CI_BUDGET = 1.25


class TestOverhead:
    def test_reference_and_instrumented_paths_agree(self):
        inst, ref, ratio, stats_match = measure_overhead(
            accesses=20_000, repeats=2
        )
        assert stats_match, (
            "the _UninstrumentedCache copy of the hot path has rotted"
        )
        assert inst > 0 and ref > 0 and ratio > 0

    def test_disabled_tracing_within_budget(self):
        ratio = disabled_overhead_ratio(accesses=60_000, repeats=3)
        assert ratio <= CI_BUDGET, (
            f"tracing-disabled hot path is {ratio:.2f}x the reference; "
            f"budget {CI_BUDGET}x (strict 1.05x enforced by make smoke-obs)"
        )

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_overhead(accesses=10, repeats=0)
