"""Span profiler: zero-cost disabled, nesting, exports, merge."""

import json
import threading

import pytest

from repro.obs.spans import (
    SPAN_SCHEMA,
    SpanRecorder,
    current_recorder,
    install_recorder,
    profiled,
    span,
    uninstall_recorder,
    validate_chrome_trace,
    validate_chrome_trace_file,
)


@pytest.fixture(autouse=True)
def no_leaked_recorder():
    """Every test starts and ends with profiling disabled."""
    uninstall_recorder()
    yield
    uninstall_recorder()


@pytest.fixture()
def recorder():
    return install_recorder(SpanRecorder(process_label="test"))


# ----------------------------------------------------------------------
# Disabled path.
# ----------------------------------------------------------------------
def test_disabled_span_is_shared_noop_singleton():
    assert current_recorder() is None
    a = span("anything", x=1)
    b = span("else")
    assert a is b  # no allocation per call

    with span("nested"):
        with span("deeper", y=2) as s:
            s.set(z=3)  # no-op, must not raise


def test_install_uninstall_roundtrip():
    rec = SpanRecorder()
    assert install_recorder(rec) is rec
    assert current_recorder() is rec
    assert uninstall_recorder() is rec
    assert current_recorder() is None
    assert uninstall_recorder() is None  # idempotent


# ----------------------------------------------------------------------
# Recording and nesting.
# ----------------------------------------------------------------------
def test_nested_spans_record_parent_paths(recorder):
    with span("outer", run=1):
        with span("middle"):
            with span("inner"):
                pass
        with span("middle"):
            pass

    assert len(recorder) == 4
    paths = sorted(r["path"] for r in recorder.records)
    assert paths == [
        "outer",
        "outer;middle",
        "outer;middle",
        "outer;middle;inner",
    ]
    outer = recorder.spans_named("outer")[0]
    assert outer["args"] == {"run": 1}
    assert outer["dur_us"] >= outer["self_us"] >= 0.0


def test_span_set_attaches_attributes(recorder):
    with span("ga.generation", gen=0) as s:
        s.set(best_fitness=1.25)
    rec = recorder.spans_named("ga.generation")[0]
    assert rec["args"] == {"gen": 0, "best_fitness": 1.25}


def test_exception_closes_span_and_tags_error(recorder):
    with pytest.raises(RuntimeError):
        with span("outer"):
            with span("failing"):
                raise RuntimeError("boom")

    failing = recorder.spans_named("failing")[0]
    assert failing["args"]["error"] == "RuntimeError"
    outer = recorder.spans_named("outer")[0]
    assert "error" in outer["args"]  # propagated through the outer exit
    # The stack is clean: a fresh span nests at top level again.
    with span("after"):
        pass
    assert recorder.spans_named("after")[0]["path"] == "after"


def test_threads_keep_independent_stacks(recorder):
    barrier = threading.Barrier(2)

    def work(name):
        with span(name):
            barrier.wait(timeout=5)
            with span("child"):
                pass

    threads = [
        threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    children = recorder.spans_named("child")
    assert sorted(c["path"] for c in children) == ["t0;child", "t1;child"]
    assert len({c["tid"] for c in children}) == 2


# ----------------------------------------------------------------------
# Chrome trace export + validation.
# ----------------------------------------------------------------------
def test_chrome_trace_validates_and_round_trips(tmp_path, recorder):
    with span("phase.a", k=16):
        with span("phase.b"):
            pass
    out = tmp_path / "trace.json"
    recorder.write_chrome_trace(out)
    assert validate_chrome_trace_file(out) == 2

    trace = json.loads(out.read_text())
    names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
    assert sorted(names) == ["phase.a", "phase.b"]
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"] == "test"


@pytest.mark.parametrize(
    "bad",
    [
        {},  # no traceEvents
        {"traceEvents": [{"ph": "X"}]},  # missing name
        {"traceEvents": [{"name": "a", "ph": "Q", "pid": 1, "tid": 1}]},
        {"traceEvents": [{"name": "a", "ph": "X", "pid": 1, "tid": 1,
                          "ts": -5, "dur": 1}]},
        {"traceEvents": [{"name": "a", "ph": "M", "pid": 1, "tid": 1,
                          "args": {}}]},
    ],
)
def test_validate_chrome_trace_rejects_malformed(bad):
    with pytest.raises(ValueError):
        validate_chrome_trace(bad)


# ----------------------------------------------------------------------
# Folded stacks.
# ----------------------------------------------------------------------
def test_folded_output_uses_self_time(recorder):
    with span("root"):
        with span("leaf"):
            for _ in range(1000):
                pass
    folded = recorder.to_folded()
    lines = dict(
        line.rsplit(" ", 1) for line in folded.strip().splitlines()
    )
    assert "root;leaf" in lines
    root = recorder.spans_named("root")[0]
    # Parent self time excludes the child's duration.
    assert root["self_us"] <= root["dur_us"]


# ----------------------------------------------------------------------
# Payload shipping.
# ----------------------------------------------------------------------
def test_payload_merge_roundtrip_preserves_pids(recorder):
    with span("local"):
        pass
    worker = SpanRecorder(process_label="worker")
    worker._pid = 99999  # simulate another process
    worker.record(name="remote", path="remote", ts_us=0, dur_us=5.0,
                  self_us=5.0, args={})

    merged = recorder.merge_payload(worker.payload())
    assert merged == 1
    assert 99999 in recorder.pids()
    trace = recorder.to_chrome_trace()
    assert validate_chrome_trace(trace) == 2
    labels = {
        e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    assert labels == {"test", "worker-99999"}


def test_merge_payload_rejects_wrong_schema(recorder):
    with pytest.raises(ValueError):
        recorder.merge_payload({"schema": "bogus/9", "records": []})
    assert SPAN_SCHEMA == "repro-spans/1"


def test_profiled_writes_exports_and_restores(tmp_path):
    outer = install_recorder(SpanRecorder())
    chrome = tmp_path / "p.trace.json"
    folded = tmp_path / "p.folded"
    with profiled(chrome, folded=folded) as rec:
        assert current_recorder() is rec
        with span("inside"):
            # Burn enough time to clear the folded-output noise floor
            # (sub-microsecond self time is dropped as clock noise).
            for _ in range(10_000):
                pass
    assert current_recorder() is outer  # previous recorder restored
    assert validate_chrome_trace_file(chrome) == 1
    assert "inside" in folded.read_text()
