"""Central logging configuration."""

import io
import logging

import pytest

from repro.obs import configure_logging
from repro.obs.logconfig import verbosity_to_level


def _cli_handlers():
    return [h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli", False)]


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers, logger.level, logger.propagate = (
        saved[0], saved[1], saved[2]
    )


class TestConfigureLogging:
    def test_default_level_is_info(self):
        logger = configure_logging()
        assert logger.level == logging.INFO

    def test_verbose_raises_to_debug(self):
        assert configure_logging(verbose=1).level == logging.DEBUG
        assert verbosity_to_level(0) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG

    def test_string_level(self):
        assert configure_logging(level="warning").level == logging.WARNING
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_idempotent_no_duplicate_handlers(self):
        configure_logging()
        configure_logging()
        configure_logging(verbose=1)
        assert len(_cli_handlers()) == 1

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        logging.getLogger("repro.eval.parallel").info("hello matrix")
        out = stream.getvalue()
        assert "hello matrix" in out
        assert "repro.eval.parallel" in out

    def test_debug_suppressed_at_info(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        logging.getLogger("repro.obs").debug("invisible")
        assert stream.getvalue() == ""
