"""Metrics registry: instruments, exporters, round-trips."""

import math

import pytest

from repro.obs import MetricsRegistry, parse_prometheus


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("jobs_total", "jobs")
        b = registry.counter("jobs_total")
        assert a is b
        a.inc()
        a.inc(4)
        assert b.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        hits = registry.counter("events_total", labels={"kind": "hit"})
        misses = registry.counter("events_total", labels={"kind": "miss"})
        assert hits is not misses
        hits.inc(2)
        assert misses.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 4.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("9starts-with-digit")

    def test_histogram_buckets(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 2, 4])
        for value in (0, 1, 2, 3, 10):
            hist.observe(value)
        # buckets: <=1 gets 0 and 1; <=2 gets 2; <=4 gets 3; +Inf gets 10.
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == 16

    def test_histogram_rejects_bad_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("empty", bounds=[])
        with pytest.raises(ValueError):
            registry.histogram("dupes", bounds=[1, 1])

    def test_histogram_weighted_observe(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 2, 4])
        hist.observe(1, weight=3)
        hist.observe(3, weight=2)
        assert hist.bucket_counts == [3, 0, 2, 0]
        assert hist.count == 5
        assert hist.sum == 9
        # weight=0 is a no-op, not an error (empty bins flush cleanly).
        hist.observe(100, weight=0)
        assert hist.count == 5

    def test_histogram_rejects_nan_value(self):
        hist = MetricsRegistry().histogram("h", bounds=[1])
        with pytest.raises(ValueError, match="NaN"):
            hist.observe(math.nan)

    @pytest.mark.parametrize("weight", [-1, -0.5, math.nan])
    def test_histogram_rejects_bad_weight(self, weight):
        hist = MetricsRegistry().histogram("h", bounds=[1])
        with pytest.raises(ValueError):
            hist.observe(1, weight=weight)

    def test_merge_raw_validates_bounds(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 2])
        hist.merge_raw([1, 0, 0], 1, 0.5, bounds=[1, 2])
        assert hist.count == 1
        with pytest.raises(ValueError, match="bounds"):
            hist.merge_raw([1, 0, 0], 1, 0.5, bounds=[1, 3])


class TestHistogramQuantile:
    def test_exact_on_retained_raw_samples(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 10, 100],
                                           retain=16)
        for v in (5, 3, 9, 1, 7):
            hist.observe(v)
        assert hist.quantile(0.0) == 1
        assert hist.quantile(0.5) == 5      # nearest-rank median, exact
        assert hist.quantile(1.0) == 9
        # exact even for values that share a bucket
        assert hist.quantile(0.2) == 1

    def test_weighted_raw_samples(self):
        hist = MetricsRegistry().histogram("h", bounds=[10], retain=100)
        hist.observe(2, weight=9)
        hist.observe(8, weight=1)
        assert hist.quantile(0.9) == 2
        assert hist.quantile(0.95) == 8

    def test_interpolates_after_retention_drops(self):
        hist = MetricsRegistry().histogram("h", bounds=[0, 10, 20],
                                           retain=2)
        for v in (2.0, 4.0, 6.0, 8.0):      # > retain: raw dropped
            hist.observe(v)
        # All four observations sit in the (0, 10] bucket: linear
        # interpolation on its bounds, not an exact sample.
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_bucket_resolves_to_highest_finite_bound(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 2])
        hist.observe(100)
        assert hist.quantile(0.99) == 2

    def test_first_bucket_lower_bound(self):
        hist = MetricsRegistry().histogram("h", bounds=[4])
        hist.observe(2, weight=2)
        # lo = min(0, 4) = 0: the median interpolates to the midpoint.
        assert hist.quantile(0.5) == pytest.approx(2.0)

    def test_empty_and_range_checks(self):
        hist = MetricsRegistry().histogram("h", bounds=[1])
        assert hist.quantile(0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(-0.1)

    def test_merge_raw_drops_raw_samples(self):
        hist = MetricsRegistry().histogram("h", bounds=[1, 2],
                                           retain=100)
        hist.observe(1.5)
        hist.merge_raw([0, 1, 0], 1, 1.5)
        # A merged-in snapshot has no raw samples: quantiles must fall
        # back to interpolation rather than trust a partial raw list.
        assert hist.quantile(1.0) == pytest.approx(2.0)


class TestRegistryFromJson:
    def test_round_trips_every_instrument_kind(self):
        registry = MetricsRegistry("repro")
        registry.counter("jobs_total", "jobs").inc(5)
        registry.gauge("wall_seconds", "wall").set(2.5)
        registry.counter("events_total", labels={"kind": "hit"}).inc(7)
        hist = registry.histogram("job_seconds", bounds=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(5.0)

        from repro.obs.metrics import registry_from_json

        rebuilt = registry_from_json(registry.to_json())
        assert rebuilt.to_json() == registry.to_json()
        # Exposition order may differ (rebuild sorts by name); the
        # parsed series must match exactly.
        assert parse_prometheus(rebuilt.to_prometheus()) == \
            parse_prometheus(registry.to_prometheus())

    def test_rejects_unknown_instrument_type(self):
        from repro.obs.metrics import registry_from_json

        with pytest.raises(ValueError, match="unknown instrument"):
            registry_from_json(
                {"x": {"type": "summary", "series": [{"value": 1}]}}
            )


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "jobs run").inc(3)
        registry.gauge("repro_wall_seconds").set(1.5)
        hist = registry.histogram("repro_job_seconds", bounds=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        registry.counter(
            "repro_events_total", labels={"kind": "hit"}
        ).inc(7)
        return registry

    def test_prometheus_round_trip(self):
        registry = self._populated()
        text = registry.to_prometheus()
        assert "# TYPE repro_jobs_total counter" in text
        assert "# HELP repro_jobs_total jobs run" in text
        parsed = parse_prometheus(text)
        assert parsed[("repro_jobs_total", ())] == 3
        assert parsed[("repro_wall_seconds", ())] == 1.5
        assert parsed[("repro_events_total", (("kind", "hit"),))] == 7
        # Histogram buckets are cumulative in the exposition format.
        assert parsed[("repro_job_seconds_bucket", (("le", "0.1"),))] == 1
        assert parsed[("repro_job_seconds_bucket", (("le", "1"),))] == 2
        assert parsed[("repro_job_seconds_bucket", (("le", "+Inf"),))] == 3
        assert parsed[("repro_job_seconds_count", ())] == 3
        assert parsed[("repro_job_seconds_sum", ())] == pytest.approx(5.55)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")

    def test_parse_handles_special_values(self):
        parsed = parse_prometheus("a 1\nb +Inf\nc NaN\n")
        assert parsed[("a", ())] == 1.0
        assert math.isinf(parsed[("b", ())])
        assert math.isnan(parsed[("c", ())])

    def test_json_export(self):
        registry = self._populated()
        out = registry.to_json()
        assert out["repro_jobs_total"]["type"] == "counter"
        assert out["repro_jobs_total"]["series"][0]["value"] == 3
        hist = out["repro_job_seconds"]["series"][0]["value"]
        assert hist["count"] == 3
        series = out["repro_events_total"]["series"][0]
        assert series["labels"] == {"kind": "hit"}

    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("jobs").inc()
        assert ("repro_jobs", ()) in parse_prometheus(
            registry.to_prometheus()
        )


class TestThreadSafety:
    """Concurrent writers must not lose updates (inc is read-modify-write)."""

    THREADS = 8
    PER_THREAD = 10_000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait(timeout=10)
            for _ in range(self.PER_THREAD):
                work()

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_concurrent_total")
        self._hammer(counter.inc)
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_concurrent_gauge_incs_are_exact(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_concurrent_gauge")
        self._hammer(lambda: gauge.inc(0.5))
        assert gauge.value == pytest.approx(
            0.5 * self.THREADS * self.PER_THREAD
        )

    def test_concurrent_histogram_observes_are_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_concurrent_hist", (1.0, 2.0))
        self._hammer(lambda: hist.observe(1.5))
        total = self.THREADS * self.PER_THREAD
        assert hist.count == total
        assert hist.sum == pytest.approx(1.5 * total)

    def test_concurrent_get_or_create_returns_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait(timeout=10)
            counter = registry.counter("repro_shared_total")
            counter.inc()
            seen.append(counter)

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert registry.counter("repro_shared_total").value == self.THREADS
