"""TraceEvent schema, serialization, and validation."""

import pytest

from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    TraceEvent,
    event_from_dict,
    validate_event_dict,
)


class TestTraceEvent:
    def test_to_dict_omits_none_fields(self):
        event = TraceEvent("miss", 7, set=3, policy=1, block=42)
        d = event.to_dict()
        assert d == {
            "kind": "miss", "access": 7, "set": 3, "policy": 1, "block": 42
        }
        assert "way" not in d and "pos_before" not in d

    def test_round_trip(self):
        event = TraceEvent(
            "hit", 11, set=2, way=5, pos_before=9, pos_after=0, policy=0,
            block=1234,
        )
        assert event_from_dict(event.to_dict()) == event

    def test_round_trip_all_kinds(self):
        for kind in EVENT_KINDS:
            event = TraceEvent(kind, 1, set=0, way=0, pos_before=1,
                               pos_after=0, value=0, label="psel")
            again = event_from_dict(event.to_dict())
            assert again.kind == kind
            assert again == event

    def test_equality_differs_on_fields(self):
        a = TraceEvent("miss", 1, set=0)
        b = TraceEvent("miss", 1, set=1)
        assert a != b


class TestSchema:
    def test_every_kind_has_schema(self):
        assert set(EVENT_KINDS) == set(EVENT_SCHEMA["kinds"])

    def test_valid_event_passes(self):
        validate_event_dict({"kind": "miss", "access": 3, "set": 0})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            validate_event_dict({"kind": "warp", "access": 3})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="access"):
            validate_event_dict({"kind": "miss", "set": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            validate_event_dict(
                {"kind": "miss", "access": 3, "set": 0, "bogus": 1}
            )

    def test_type_checked(self):
        with pytest.raises(ValueError):
            validate_event_dict(
                {"kind": "miss", "access": "three", "set": 0}
            )


class TestTelemetryKinds:
    """``drift`` / ``slo_violation`` carry a float value, unlike the
    replacement-policy kinds, whose ``value`` stays integer-only."""

    def test_drift_with_float_value_passes(self):
        validate_event_dict(
            {"kind": "drift", "access": 65536, "label": "hit_rate",
             "value": 0.4375}
        )

    def test_slo_violation_with_int_value_passes(self):
        validate_event_dict(
            {"kind": "slo_violation", "access": 1000, "label": "latency",
             "value": 1}
        )

    def test_requires_label_and_value(self):
        with pytest.raises(ValueError, match="value"):
            validate_event_dict(
                {"kind": "drift", "access": 1, "label": "hit_rate"}
            )
        with pytest.raises(ValueError, match="label"):
            validate_event_dict(
                {"kind": "slo_violation", "access": 1, "value": 0.5}
            )

    def test_bool_value_rejected(self):
        with pytest.raises(ValueError):
            validate_event_dict(
                {"kind": "drift", "access": 1, "label": "hit_rate",
                 "value": True}
            )

    def test_float_value_still_rejected_for_policy_kinds(self):
        with pytest.raises(ValueError):
            validate_event_dict(
                {"kind": "psel_sample", "access": 1, "set": 0,
                 "label": "psel", "value": 0.5}
            )

    def test_round_trip(self):
        event = TraceEvent("drift", 4096, label="throughput",
                           value=123456.78)
        again = event_from_dict(event.to_dict())
        assert again == event
        assert again.value == pytest.approx(123456.78)
