"""Unit tests for :mod:`repro.serve.telemetry`.

ServeTelemetry is the hub tying HDR histograms, sliding windows, drift
and SLO evaluation to the front-end drain loop; these tests drive it
directly with synthetic batches so every surface (snapshot, publish,
report_section, tracer events) is checked without a full serving run.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import ListSink
from repro.obs.slo import HdrHistogram, SLOSpec
from repro.obs.tracer import Tracer
from repro.serve.frontend import ShardedFrontend
from repro.serve.telemetry import DEFAULT_WINDOW_ACCESSES, ServeTelemetry


def feed(telem, batches, shard=0, accesses=1000, hit_rate=0.8,
         wall=1e-3):
    for _ in range(batches):
        telem.record_batch(shard, accesses,
                           accesses - int(accesses * hit_rate), wall)


class TestRecordBatch:
    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ServeTelemetry(0)

    def test_empty_batch_is_noop(self):
        telem = ServeTelemetry(1)
        telem.record_batch(0, 0, 0, 1e-3)
        assert telem.batches == 0
        assert len(telem.access_latency) == 0

    def test_batch_feeds_every_surface(self):
        telem = ServeTelemetry(2, window_accesses=1000)
        telem.record_batch(0, 600, 120, 6e-4, queue_depth=3)
        telem.record_batch(1, 400, 100, 4e-4, queue_depth=1)
        assert telem.batches == 2
        assert telem.shard_batches == [1, 1]
        assert telem.shard_queue_depth == [3, 1]
        # batch latency goes to the owning shard's histogram
        assert len(telem.batch_latency[0]) == 1
        assert len(telem.batch_latency[1]) == 1
        # amortized latency is weighted by batch size
        assert len(telem.access_latency) == 1000
        assert telem.access_latency.mean == pytest.approx(1e-6, rel=1e-3)
        # the 1000-access window closed with combined counts
        assert telem.windows.windows_closed == 1
        window = telem.last_window()
        assert window["accesses"] == 1000
        assert window["hits"] == 780
        assert window["queue_depth"] == 4
        assert window["latency"] is not None

    def test_cross_shard_merge_bit_exact_vs_single_shard(self):
        # The same batch stream recorded through 4 shards and merged
        # must equal a single-shard recording, bucket for bucket.
        multi = ServeTelemetry(4, window_accesses=1 << 20)
        single = ServeTelemetry(1, window_accesses=1 << 20)
        walls = [(i % 17 + 1) * 3.7e-5 for i in range(200)]
        for i, wall in enumerate(walls):
            multi.record_batch(i % 4, 500, 100, wall)
            single.record_batch(0, 500, 100, wall)
        merged = multi.merged_batch_latency()
        alone = single.batch_latency[0]
        assert merged.counts == alone.counts
        assert merged.count == alone.count
        assert merged.min_value == alone.min_value
        assert merged.max_value == alone.max_value
        assert multi.access_latency.counts == single.access_latency.counts

    def test_shed_closes_windows_without_latency(self):
        telem = ServeTelemetry(1, window_accesses=100)
        telem.record_shed(250)
        assert telem.windows.windows_closed == 2
        window = telem.last_window()
        assert window["shed_ratio"] == 1.0
        assert window["accesses"] == 0
        assert len(telem.access_latency) == 0

    def test_finalize_flushes_partial_window(self):
        telem = ServeTelemetry(1, window_accesses=1000)
        telem.record_batch(0, 300, 60, 3e-4)
        assert telem.windows.windows_closed == 0
        telem.finalize()
        assert telem.windows.windows_closed == 1
        assert telem.last_window()["accesses"] == 300


class TestEventsThroughTracer:
    def test_drift_event_emitted(self):
        sink = ListSink()
        telem = ServeTelemetry(1, window_accesses=100,
                               tracer=Tracer(sink=sink),
                               warmup_windows=2)
        feed(telem, 2, accesses=100, hit_rate=0.9)
        feed(telem, 6, accesses=100, hit_rate=0.2)
        kinds = [e.kind for e in sink.events]
        assert "drift" in kinds
        event = next(e for e in sink.events if e.kind == "drift")
        assert event.label == "hit_rate"
        assert event.value == pytest.approx(0.2)

    def test_slo_violation_event_emitted(self):
        sink = ListSink()
        slo = SLOSpec(min_hit_rate=0.95, short_windows=2, long_windows=4,
                      budget=0.1)
        telem = ServeTelemetry(1, window_accesses=100, slo=slo,
                               tracer=Tracer(sink=sink))
        feed(telem, 4, accesses=100, hit_rate=0.5)
        events = [e for e in sink.events if e.kind == "slo_violation"]
        assert len(events) == 1
        assert events[0].label == "hit_rate"
        assert events[0].value == pytest.approx(0.5)

    def test_disabled_slo_spec_is_dropped(self):
        telem = ServeTelemetry(1, slo=SLOSpec())
        assert telem.slo is None

    def test_window_latency_slice_resets(self):
        # SLO latency must be judged per window: a slow first window
        # must not poison the second window's quantile.
        slo = SLOSpec(latency_target=1e-5, short_windows=1,
                      long_windows=2, budget=0.5)
        telem = ServeTelemetry(1, window_accesses=100, slo=slo)
        telem.record_batch(0, 100, 20, 1e-2)    # 1e-4 s/access: bad
        telem.record_batch(0, 100, 20, 1e-7)    # 1e-9 s/access: good
        lats = telem.window_latencies
        assert len(lats) == 2
        assert lats[0] > slo.latency_target
        assert lats[1] < slo.latency_target


class TestReadSurfaces:
    def test_snapshot_shape(self):
        telem = ServeTelemetry(2, window_accesses=500)
        feed(telem, 4, shard=0, accesses=500)
        feed(telem, 2, shard=1, accesses=500)
        snap = telem.snapshot(last_windows=3)
        assert snap["window_accesses"] == 500
        assert snap["windows_closed"] == 6
        assert len(snap["windows"]) == 3
        assert set(snap["latency"]) == {"p50", "p90", "p99", "p99_9"}
        assert [s["shard"] for s in snap["shards"]] == [0, 1]
        assert snap["shards"][0]["batches"] == 4
        assert snap["shards"][0]["p99"] > 0
        assert snap["drift"]["events"] == []
        assert snap["slo"] is None

    def test_publish_gauges(self):
        registry = MetricsRegistry("repro_serve")
        slo = SLOSpec(min_hit_rate=0.99, short_windows=2, long_windows=4)
        telem = ServeTelemetry(2, window_accesses=500, slo=slo)
        feed(telem, 4, shard=0, accesses=500, hit_rate=0.5)
        feed(telem, 2, shard=1, accesses=500, hit_rate=0.5)
        telem.publish(registry)
        values = {
            name: instrument.as_json()
            for name, _, instrument in registry.instruments()
        }
        assert values["repro_serve_windows_closed"] == 6
        assert values["repro_serve_window_hit_rate"] == pytest.approx(0.5)
        assert values["repro_serve_shed_ratio"] == 0.0
        assert values["repro_serve_slo_violations"] >= 1
        text = registry.to_prometheus()
        assert 'shard_latency_seconds{quantile="0.99",shard="0"}' in text
        assert 'shard_queue_depth{shard="1"}' in text
        assert 'access_latency_seconds{quantile="0.999"}' in text

    def test_report_section_shape(self):
        telem = ServeTelemetry(2, window_accesses=500)
        feed(telem, 3, shard=0, accesses=500)
        section = telem.report_section()
        assert section["windows_closed"] == 3
        assert len(section["windows"]) == 3
        assert section["latency_histogram"]["schema"] == "repro-hdr/1"
        hist = HdrHistogram.from_dict(section["latency_histogram"])
        assert hist.count == 1500
        assert section["batch_latency"]["p50"] > 0
        assert section["shards"][1]["batches"] == 0
        assert section["drift_events"] == []
        assert section["slo"] is None


class TestFrontendIntegration:
    def test_frontend_feeds_telemetry_per_batch(self):
        telem = ServeTelemetry(2, window_accesses=1 << 20)
        plain = ShardedFrontend(32, 4, (0, 1, 2, 3, 0), shards=2)
        wired = ShardedFrontend(32, 4, (0, 1, 2, 3, 0), shards=2,
                                telemetry=telem)
        batch = [i * 7 for i in range(4096)]
        want = plain.process(batch)
        got = wired.process(batch)
        assert got == want                      # bit-identical misses
        assert telem.batches >= 2               # one per shard sub-batch
        assert len(telem.access_latency) == 4096
        telem.finalize()
        window = telem.last_window()
        assert window["accesses"] == 4096
        assert window["hits"] == 4096 - want

    def test_frontend_shed_reaches_telemetry(self):
        telem = ServeTelemetry(2, window_accesses=1 << 20)
        frontend = ShardedFrontend(32, 4, (0, 1, 2, 3, 0), shards=2,
                                   max_queue_batches=1, telemetry=telem)
        batch = list(range(32 * 4))
        for _ in range(6):
            frontend.ingest(batch)
        assert frontend.shed_accesses > 0
        telem.finalize()
        assert telem.last_window()["shed"] == frontend.shed_accesses

    def test_default_window_size_export(self):
        assert DEFAULT_WINDOW_ACCESSES == 1 << 16
