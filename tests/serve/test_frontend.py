"""Unit tests for the sharded serving front-end.

Covers the queueing contract (ingest sheds on full queues, drain bounds
work per call, process is lossless), the accounting surfaces
(``ShardResult`` snapshots, ``totals`` passing ``sanity_check``) and the
geometry/engine validation — the bit-identity contract itself lives in
``tests/verify/test_serving_goldens.py`` and the soak battery.
"""

import pytest

from repro.cache.stats import CacheStats
from repro.core.ipv import lru_ipv
from repro.engine.columnar import columnar_supported
from repro.serve.frontend import (
    DEFAULT_MAX_QUEUE_BATCHES,
    ShardedFrontend,
    ShardResult,
)

NUM_SETS = 16
ASSOC = 4
ENTRIES = tuple(lru_ipv(ASSOC).entries)


def make(shards=4, engine="scalar", **kw):
    return ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=shards, engine=engine, **kw
    )


def batch_hitting_all_shards(n=64):
    """Addresses 0..n-1 walk every set, hence every shard."""
    return list(range(n))


class TestValidation:
    def test_num_sets_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            ShardedFrontend(12, ASSOC, ENTRIES)

    def test_shards_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="shards"):
            make(shards=3)

    def test_shards_cannot_exceed_sets(self):
        with pytest.raises(ValueError, match="split"):
            make(shards=2 * NUM_SETS)

    def test_engine_name_checked(self):
        with pytest.raises(ValueError, match="engine"):
            make(engine="quantum")

    def test_queue_bound_positive(self):
        with pytest.raises(ValueError, match="max_queue_batches"):
            make(max_queue_batches=0)

    def test_auto_engine_resolves(self):
        fe = make(engine="auto")
        expected = "columnar" if columnar_supported(ASSOC) else "scalar"
        assert fe.engine == expected


class TestBackpressure:
    def test_ingest_sheds_when_queue_full(self):
        fe = make(shards=1, max_queue_batches=2)
        batch = batch_hitting_all_shards()
        assert fe.ingest(batch) == 0
        assert fe.ingest(batch) == 0
        shed = fe.ingest(batch)  # third sub-batch overflows the queue
        assert shed == len(batch)
        assert fe.shed_accesses == len(batch)
        assert fe.queued_batches == 2

    def test_shed_is_per_shard(self):
        fe = make(shards=4, max_queue_batches=1)
        batch = batch_hitting_all_shards()
        assert fe.ingest(batch) == 0
        assert fe.ingest(batch) == len(batch)  # all four queues full
        results = fe.shard_results()
        assert [r.shed_accesses for r in results] == [16, 16, 16, 16]

    def test_shed_batches_are_not_simulated(self):
        fe = make(shards=1, max_queue_batches=1)
        batch = batch_hitting_all_shards()
        fe.ingest(batch)
        fe.ingest(batch)  # shed
        fe.drain()
        assert fe.accesses == len(batch)
        assert fe.shed_accesses == len(batch)

    def test_default_queue_bound(self):
        fe = make()
        assert fe.max_queue_batches == DEFAULT_MAX_QUEUE_BATCHES


class TestDrain:
    def test_drain_max_batches_bounds_work(self):
        fe = make(shards=4, max_queue_batches=8)
        batch = batch_hitting_all_shards()
        fe.ingest(batch)
        fe.ingest(batch)  # 8 queued sub-batches total
        assert fe.queued_batches == 8
        fe.drain(max_batches=3)
        assert fe.queued_batches == 5
        fe.drain()
        assert fe.queued_batches == 0
        assert fe.accesses == 2 * len(batch)

    def test_drain_returns_misses(self):
        fe = make(shards=2)
        batch = batch_hitting_all_shards()
        fe.ingest(batch)
        misses = fe.drain()
        # 64 distinct lines into 16x4 = exactly capacity: all cold.
        assert misses == len(batch)

    def test_drain_empty_is_noop(self):
        fe = make()
        assert fe.drain() == 0
        assert fe.accesses == 0


class TestProcessAndAccounting:
    def test_process_is_lossless_even_with_tiny_queues(self):
        fe = make(shards=4, max_queue_batches=1)
        batch = batch_hitting_all_shards()
        for _ in range(5):
            fe.process(batch)
        assert fe.shed_accesses == 0
        assert fe.accesses == 5 * len(batch)

    def test_shard_results_snapshot_shape(self):
        fe = make(shards=2)
        fe.process(batch_hitting_all_shards())
        results = fe.shard_results()
        assert [r.shard for r in results] == [0, 1]
        for r in results:
            assert isinstance(r, ShardResult)
            snap = r.snapshot()
            assert snap["shard"] == r.shard
            assert snap["queued_batches"] == 0
            assert snap["shed_accesses"] == 0
            assert snap["accesses"] == 32

    def test_shard_stats_pass_sanity_check(self):
        fe = make(shards=4)
        for _ in range(3):
            fe.process(batch_hitting_all_shards())
        for r in fe.shard_results():
            r.stats.sanity_check()
        totals = fe.totals()
        totals.sanity_check()
        assert isinstance(totals, CacheStats)
        assert totals.accesses == fe.accesses == 3 * 64
        assert totals.misses == fe.misses
        # Second and third passes hit (working set == capacity, LRU).
        assert totals.hits == 2 * 64

    def test_evictions_counted_after_capacity(self):
        fe = make(shards=1)
        fe.process(list(range(128)))  # 2x capacity: second half evicts
        totals = fe.totals()
        totals.sanity_check()
        assert totals.misses == 128
        assert totals.evictions == 64

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_scalar_sharding_is_bit_identical(self, shards):
        stream = [(i * 0x9E3779B97F4A7C15) & ((1 << 62) - 1)
                  for i in range(2000)] * 2
        ref = make(shards=1)
        ref.process(stream)
        fe = make(shards=shards)
        fe.process(stream)
        assert fe.misses == ref.misses
        assert fe.accesses == ref.accesses


@pytest.mark.skipif(
    not columnar_supported(ASSOC), reason="columnar engine unavailable"
)
class TestColumnarParity:
    def test_columnar_frontend_matches_scalar(self):
        import numpy as np

        rng = np.random.default_rng(42)
        stream = rng.integers(0, 1 << 20, size=5000, dtype=np.int64)
        scalar = make(shards=1, engine="scalar")
        scalar.process(list(int(a) for a in stream))
        columnar = make(shards=4, engine="columnar")
        for lo in range(0, len(stream), 1024):
            columnar.process(stream[lo:lo + 1024])
        assert columnar.misses == scalar.misses
        a, b = columnar.totals().snapshot(), scalar.totals().snapshot()
        for field in ("accesses", "hits", "misses", "evictions",
                      "bypasses", "miss_rate"):
            assert a[field] == b[field], field
