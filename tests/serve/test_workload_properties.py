"""Property tests for the streaming Zipf serving workload generator.

The three contracts the ISSUE pins, plus the backend mirror:

* **Chunk invariance** — the address sequence is a pure function of the
  spec: any two ``chunk_accesses`` values yield the identical
  concatenated stream.
* **Zipf monotonicity** — on a 100k-access sample the empirical key
  frequencies are monotone in Zipf rank (bucketed: rank buckets are
  geometric so the assertion is statistically solid, and the top rank
  is the single most frequent key outright).
* **Churn permanence** — a churned-out key's address never reappears
  after its retirement block.
* **Backend bit-identity** — the pure-Python mirror emits the same
  addresses as the numpy backend.

Every draw goes through hypothesis so the spec space (alpha, keys,
tenants, churn, flash phases, seed) is explored rather than spot-checked.
"""

from collections import Counter

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.serve.workload import (  # noqa: E402
    ADDR_MASK,
    ADDR_MULT,
    GEN_BLOCK,
    FlashPhase,
    ServingSpec,
    ServingStream,
    auto_flash_phases,
    zipf_cdf,
)

# -- strategies --------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)
alphas = st.floats(min_value=0.0, max_value=1.6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def serving_specs(draw, max_accesses=3 * GEN_BLOCK):
    """A small-but-structured spec: churn, tenants and flash phases all
    get exercised, with stream lengths that straddle block boundaries."""
    accesses = draw(st.integers(min_value=1, max_value=max_accesses))
    phases = ()
    if draw(st.booleans()):
        phases = auto_flash_phases(
            accesses,
            draw(st.integers(min_value=1, max_value=3)),
            share=draw(st.floats(min_value=0.1, max_value=0.9)),
            hot_keys=draw(st.integers(min_value=1, max_value=32)),
        )
    return ServingSpec(
        keys=draw(st.sampled_from([64, 256, 1024])),
        alpha=draw(alphas),
        tenants=draw(st.integers(min_value=1, max_value=3)),
        accesses=accesses,
        churn_per_million=draw(st.sampled_from([0, 10_000, 200_000])),
        phases=phases,
        seed=draw(st.one_of(st.none(), seeds)),
    )


def flat(spec, chunk_accesses, backend="auto"):
    stream = ServingStream(spec, backend=backend)
    out = []
    for chunk in stream.chunks(chunk_accesses):
        out.extend(int(a) for a in chunk)
    return out


# -- chunk invariance --------------------------------------------------

class TestChunkInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        spec=serving_specs(),
        chunk_a=st.integers(min_value=1, max_value=2 * GEN_BLOCK + 7),
        chunk_b=st.integers(min_value=1, max_value=2 * GEN_BLOCK + 7),
    )
    def test_identical_seed_identical_stream_across_chunk_sizes(
        self, spec, chunk_a, chunk_b
    ):
        a = flat(spec, chunk_a)
        b = flat(spec, chunk_b)
        assert len(a) == spec.accesses
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(spec=serving_specs(max_accesses=GEN_BLOCK), seed=seeds)
    def test_different_seeds_different_streams(self, spec, seed):
        base = spec.resolved_seed()
        other = ServingSpec(
            keys=spec.keys, alpha=spec.alpha, tenants=spec.tenants,
            accesses=spec.accesses,
            churn_per_million=spec.churn_per_million,
            phases=spec.phases, seed=base + seed + 1,
        )
        if spec.accesses >= 16 and spec.keys > 1:
            assert flat(spec, GEN_BLOCK) != flat(other, GEN_BLOCK)

    @settings(max_examples=20, deadline=None)
    @given(spec=serving_specs(max_accesses=2 * GEN_BLOCK))
    def test_restart_is_stateless(self, spec):
        stream = ServingStream(spec)
        first = [int(a) for c in stream.chunks(1000) for a in c]
        second = [int(a) for c in stream.chunks(1000) for a in c]
        assert first == second


# -- backend bit-identity ----------------------------------------------

class TestBackendIdentity:
    @settings(max_examples=15, deadline=None)
    @given(spec=serving_specs(max_accesses=GEN_BLOCK + 100))
    def test_python_mirror_matches_auto_backend(self, spec):
        assert flat(spec, 997, backend="python") == flat(spec, 997)


# -- Zipf rank monotonicity --------------------------------------------

def rank_counts(spec, sample):
    """Empirical per-rank access counts on ``sample`` accesses.

    Single tenant, no churn: slot uids never move, so rank ``r`` is
    exactly the address ``(r * ADDR_MULT) & ADDR_MASK``.
    """
    addr_to_rank = {
        (r * ADDR_MULT) & ADDR_MASK: r for r in range(spec.keys)
    }
    counts = Counter()
    for chunk in ServingStream(spec).chunks(1 << 14):
        for a in chunk:
            counts[addr_to_rank[int(a)]] += 1
    assert sum(counts.values()) == sample
    return counts


class TestZipfMonotonicity:
    SAMPLE = 100_000

    @settings(max_examples=8, deadline=None)
    @given(
        alpha=st.floats(min_value=0.9, max_value=1.5),
        seed=seeds,
    )
    def test_bucketed_rank_frequencies_are_monotone(self, alpha, seed):
        spec = ServingSpec(
            keys=512, alpha=alpha, accesses=self.SAMPLE, seed=seed
        )
        counts = rank_counts(spec, self.SAMPLE)
        # Geometric rank buckets: mean per-key frequency must fall from
        # each bucket to the next (expected ratio >= 2 at alpha >= 0.9,
        # far outside sampling noise on a 100k sample).
        buckets = [(0, 4), (4, 16), (16, 64), (64, 256), (256, 512)]
        means = [
            sum(counts[r] for r in range(lo, hi)) / (hi - lo)
            for lo, hi in buckets
        ]
        for upper, lower in zip(means, means[1:]):
            assert upper > lower, (means, alpha)

    @settings(max_examples=8, deadline=None)
    @given(
        alpha=st.floats(min_value=0.9, max_value=1.5),
        seed=seeds,
    )
    def test_top_rank_is_the_most_frequent_key(self, alpha, seed):
        spec = ServingSpec(
            keys=512, alpha=alpha, accesses=self.SAMPLE, seed=seed
        )
        counts = rank_counts(spec, self.SAMPLE)
        assert counts[0] == max(counts.values())

    def test_alpha_zero_is_uniform(self):
        spec = ServingSpec(keys=64, alpha=0.0, accesses=self.SAMPLE,
                           seed=7)
        counts = rank_counts(spec, self.SAMPLE)
        expected = self.SAMPLE / spec.keys
        assert all(
            abs(counts[r] - expected) < 6 * expected**0.5
            for r in range(spec.keys)
        )


# -- churn permanence --------------------------------------------------

class TestChurnPermanence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        tenants=st.integers(min_value=1, max_value=3),
        churn=st.sampled_from([50_000, 200_000, 500_000]),
        backend=st.sampled_from(["auto", "python"]),
    )
    def test_churned_out_keys_never_reappear(
        self, seed, tenants, churn, backend
    ):
        spec = ServingSpec(
            keys=128, alpha=1.1, tenants=tenants,
            accesses=5 * GEN_BLOCK, churn_per_million=churn, seed=seed,
        )
        stream = ServingStream(spec, backend=backend,
                               track_retired=True)
        for chunk in stream.chunks(GEN_BLOCK):
            # After a chunk is generated, ``retired_addresses`` holds
            # every retirement up to and including its blocks; none may
            # occur in the chunk (retirement precedes generation).
            live = {int(a) for a in chunk}
            assert not (live & stream.retired_addresses)
        assert stream.retired > 0, "spec must actually churn"

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_retired_count_is_chunk_invariant(self, seed):
        spec = ServingSpec(
            keys=64, accesses=3 * GEN_BLOCK,
            churn_per_million=300_000, seed=seed,
        )
        a = ServingStream(spec, track_retired=True)
        for _ in a.chunks(777):
            pass
        b = ServingStream(spec, track_retired=True)
        for _ in b.chunks(GEN_BLOCK):
            pass
        assert a.retired == b.retired
        assert a.retired_addresses == b.retired_addresses


# -- spec/address invariants -------------------------------------------

class TestSpecInvariants:
    @settings(max_examples=25, deadline=None)
    @given(spec=serving_specs(max_accesses=GEN_BLOCK))
    def test_addresses_are_int64_compatible(self, spec):
        for a in flat(spec, 2048):
            assert 0 <= a <= ADDR_MASK

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.integers(min_value=1, max_value=2048),
        alpha=alphas,
    )
    def test_zipf_cdf_shape(self, keys, alpha):
        cdf = zipf_cdf(keys, alpha)
        assert len(cdf) == keys
        assert cdf[-1] == 1.0
        assert all(x <= y for x, y in zip(cdf, cdf[1:]))

    def test_flash_phase_validation(self):
        with pytest.raises(ValueError):
            FlashPhase(-1, 10)
        with pytest.raises(ValueError):
            FlashPhase(0, 10, share=1.5)
        with pytest.raises(ValueError):
            FlashPhase(0, 10, hot_keys=0)

    def test_spec_validation(self):
        for bad in (
            dict(keys=0),
            dict(tenants=0),
            dict(accesses=-1),
            dict(alpha=-0.1),
            dict(churn_per_million=-1),
        ):
            with pytest.raises(ValueError):
                ServingSpec(**bad)

    def test_flash_phase_concentrates_traffic(self):
        n = 4 * GEN_BLOCK
        quiet = ServingSpec(keys=4096, alpha=0.4, accesses=n, seed=3)
        flash = ServingSpec(
            keys=4096, alpha=0.4, accesses=n, seed=3,
            phases=(FlashPhase(0, n, share=0.9, hot_keys=8),),
        )
        hot = {(r * ADDR_MULT) & ADDR_MASK for r in range(8)}
        quiet_hot = sum(a in hot for a in flat(quiet, n))
        flash_hot = sum(a in hot for a in flat(flash, n))
        assert flash_hot > 10 * max(quiet_hot, 1)
