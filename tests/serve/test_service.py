"""Unit tests for ``run_serving``: report, obs wiring, provenance.

One small spec drives the full path — generator, sharded front-end,
status publisher, metrics gauges, JSON report and provenance manifest —
and every surface is checked against the direct front-end numbers.
"""

import json

import pytest

from repro.core.ipv import lip_ipv, lru_ipv
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import manifest_path_for
from repro.obs.slo import SLOSpec
from repro.obs.status import read_status
from repro.obs.tracer import Tracer, replay_counts
from repro.obs.sinks import ListSink
from repro.serve.frontend import ShardedFrontend
from repro.serve.service import resolve_policy_entries, run_serving
from repro.serve.workload import ServingSpec, ServingStream

NUM_SETS = 32
ASSOC = 4

SPEC = ServingSpec(
    keys=512, alpha=1.2, tenants=2, accesses=20_000,
    churn_per_million=50_000, seed=9,
)


def reference_misses(spec=SPEC, policy="lru"):
    _, entries = resolve_policy_entries(policy, ASSOC)
    fe = ShardedFrontend(NUM_SETS, ASSOC, entries, shards=1,
                         engine="scalar")
    misses = 0
    for chunk in ServingStream(spec, backend="python").chunks(4096):
        misses += fe.process(chunk)
    return misses


class TestResolvePolicyEntries:
    def test_named_policies(self):
        assert resolve_policy_entries("lru", 4) == (
            "lru", tuple(lru_ipv(4).entries)
        )
        assert resolve_policy_entries("LIP", 4) == (
            "lip", tuple(lip_ipv(4).entries)
        )

    def test_explicit_vector(self):
        name, entries = resolve_policy_entries((0, 1, 2, 3, 0), 4)
        assert name == "ipv4"
        assert entries == (0, 1, 2, 3, 0)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown serving policy"):
            resolve_policy_entries("belady", 4)

    def test_gippr_demands_its_assoc(self):
        with pytest.raises(ValueError, match="gippr"):
            resolve_policy_entries("gippr", 4)


class TestRunServing:
    def test_report_matches_reference(self):
        report = run_serving(SPEC, NUM_SETS, ASSOC, policy="lru",
                             shards=4)
        assert report.accesses == SPEC.accesses
        assert report.misses == reference_misses()
        assert report.shed == 0
        assert 0.0 < report.miss_rate < 1.0
        assert report.throughput > 0

    def test_report_dict_schema(self):
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2)
        payload = report.to_dict()
        assert payload["schema"] == "repro-serving-report/2"
        assert payload["spec_digest"] == SPEC.digest()
        assert payload["seed"] == SPEC.resolved_seed()
        assert payload["seed_derived"] is False
        assert payload["shards"] == 2
        assert payload["accesses"] == SPEC.accesses
        assert payload["misses"] == report.misses
        assert len(payload["shards_detail"]) == 2
        assert payload["totals"]["accesses"] == SPEC.accesses
        assert payload["retired_keys"] > 0

    def test_gauges_land_in_registry(self):
        registry = MetricsRegistry("repro_serve")
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             registry=registry)
        values = {
            name: instrument.as_json()
            for name, _, instrument in registry.instruments()
        }
        assert values["repro_serve_accesses"] == SPEC.accesses
        assert values["repro_serve_misses"] == report.misses
        assert values["repro_serve_shards"] == 2
        assert values["repro_serve_shed_accesses"] == 0
        assert values["repro_serve_retired_keys"] == report.retired
        assert values["repro_serve_throughput_accesses_per_sec"] > 0

    def test_status_file_published_and_finalized(self, tmp_path):
        status_path = tmp_path / "serve.status.json"
        run_serving(SPEC, NUM_SETS, ASSOC, status_path=status_path,
                    chunk_accesses=4096)
        status = read_status(status_path)
        assert status is not None
        assert status["phase"] == "done"
        assert status["accesses_done"] == SPEC.accesses
        assert status["accesses_total"] == SPEC.accesses
        assert status["throughput"] > 0

    def test_report_path_writes_json_and_manifest(self, tmp_path):
        report_path = tmp_path / "out" / "serving.json"
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             report_path=report_path)
        on_disk = json.loads(report_path.read_text())
        assert on_disk["misses"] == report.misses
        manifest_path = manifest_path_for(report_path)
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["serving_spec_digest"] == SPEC.digest()
        assert manifest["serving_seed"] == SPEC.resolved_seed()
        assert manifest["serving_seed_derived"] is False
        assert manifest["serving_run"]["shards"] == 2
        assert manifest["seed"] == SPEC.resolved_seed()

    def test_derived_seed_recorded_in_manifest(self, tmp_path):
        spec = ServingSpec(keys=256, alpha=1.0, accesses=4096,
                           seed=None)
        report_path = tmp_path / "serving.json"
        run_serving(spec, NUM_SETS, ASSOC, report_path=report_path)
        manifest = json.loads(
            manifest_path_for(report_path).read_text()
        )
        assert manifest["serving_seed_derived"] is True
        assert manifest["serving_seed"] == spec.resolved_seed()
        assert manifest["seed"] == spec.resolved_seed()

    def test_geometry_validated(self):
        with pytest.raises(ValueError, match="powers of two"):
            run_serving(SPEC, 48, ASSOC)

    def test_engine_choice_does_not_change_misses(self):
        scalar = run_serving(SPEC, NUM_SETS, ASSOC, engine="scalar",
                             shards=1)
        auto = run_serving(SPEC, NUM_SETS, ASSOC, engine="auto",
                           shards=4)
        assert auto.misses == scalar.misses

    def test_chunk_size_does_not_change_misses(self):
        a = run_serving(SPEC, NUM_SETS, ASSOC, chunk_accesses=1 << 12)
        b = run_serving(SPEC, NUM_SETS, ASSOC, chunk_accesses=7777)
        assert a.misses == b.misses

    def test_telemetry_does_not_change_misses(self):
        with_telem = run_serving(SPEC, NUM_SETS, ASSOC, shards=2)
        without = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                              telemetry=False)
        assert with_telem.misses == without.misses
        assert without.telemetry is None
        assert without.slo_summary is None
        assert without.slo_ok is True


class TestServingTelemetry:
    def test_report_carries_telemetry_block(self):
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             window_accesses=4096,
                             chunk_accesses=4096)
        telem = report.telemetry
        assert telem is not None
        # 4 full windows plus the flushed partial trailing one.
        assert telem["windows_closed"] == SPEC.accesses // 4096 + 1
        total_acc = sum(w["accesses"] for w in telem["windows"])
        total_hits = sum(w["hits"] for w in telem["windows"])
        assert total_acc == SPEC.accesses
        assert total_hits == SPEC.accesses - report.misses
        assert telem["latency"]["p99"] > 0
        assert telem["latency_histogram"]["schema"] == "repro-hdr/1"
        assert len(telem["shards"]) == 2
        assert sum(s["batches"] for s in telem["shards"]) > 0
        payload = report.to_dict()
        assert payload["telemetry"] is telem
        assert payload["shed_ratio"] == 0.0

    def test_slo_violation_surfaces_in_report_and_tracer(self):
        # An unreachable hit-rate target must violate once the short
        # burn horizon fills, flip slo_ok, and emit tracer events.
        sink = ListSink()
        tracer = Tracer(sink=sink)
        slo = SLOSpec(min_hit_rate=0.999, short_windows=2,
                      long_windows=4, budget=0.01)
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             window_accesses=2048, chunk_accesses=4096,
                             slo=slo, tracer=tracer)
        assert report.slo_summary is not None
        assert report.slo_summary["ok"] is False
        assert report.slo_ok is False
        labels = {v["objective"] for v in report.slo_summary["violations"]}
        assert "hit_rate" in labels
        counts = replay_counts(sink.events)
        assert counts["slo_violations"] >= 1

    def test_spec_slo_used_and_excluded_from_digest(self):
        slo = SLOSpec(min_hit_rate=0.999, short_windows=2,
                      long_windows=4, budget=0.01)
        spec = ServingSpec(
            keys=512, alpha=1.2, tenants=2, accesses=20_000,
            churn_per_million=50_000, seed=9, slo=slo,
        )
        # The SLO is an operational overlay: same digest, same seed,
        # same stream as the SLO-free spec.
        assert spec.digest() == SPEC.digest()
        assert spec.resolved_seed() == SPEC.resolved_seed()
        report = run_serving(spec, NUM_SETS, ASSOC, shards=2,
                             window_accesses=2048)
        assert report.slo_summary is not None
        assert report.slo_ok is False
        assert report.misses == reference_misses()

    def test_telemetry_gauges_published(self):
        registry = MetricsRegistry("repro_serve")
        run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                    window_accesses=4096, registry=registry)
        values = {
            name: instrument.as_json()
            for name, _, instrument in registry.instruments()
        }
        assert values["repro_serve_windows_closed"] >= 1
        assert "repro_serve_window_hit_rate" in values
        assert values["repro_serve_shed_ratio_total"] == 0.0
        text = registry.to_prometheus()
        assert 'repro_serve_shard_latency_seconds{' in text

    def test_metrics_port_serves_openmetrics(self, tmp_path):
        # Ephemeral port; the bound port lands in the status file and a
        # scrape during-run state is covered by smoke_slo -- here we
        # check the port is published and freed after the run.
        status_path = tmp_path / "status.json"
        run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                    status_path=status_path, metrics_port=0)
        status = read_status(status_path)
        assert status["serving"]["metrics_port"] > 0
