"""Unit tests for ``run_serving``: report, obs wiring, provenance.

One small spec drives the full path — generator, sharded front-end,
status publisher, metrics gauges, JSON report and provenance manifest —
and every surface is checked against the direct front-end numbers.
"""

import json

import pytest

from repro.core.ipv import lip_ipv, lru_ipv
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import manifest_path_for
from repro.obs.status import read_status
from repro.serve.frontend import ShardedFrontend
from repro.serve.service import resolve_policy_entries, run_serving
from repro.serve.workload import ServingSpec, ServingStream

NUM_SETS = 32
ASSOC = 4

SPEC = ServingSpec(
    keys=512, alpha=1.2, tenants=2, accesses=20_000,
    churn_per_million=50_000, seed=9,
)


def reference_misses(spec=SPEC, policy="lru"):
    _, entries = resolve_policy_entries(policy, ASSOC)
    fe = ShardedFrontend(NUM_SETS, ASSOC, entries, shards=1,
                         engine="scalar")
    misses = 0
    for chunk in ServingStream(spec, backend="python").chunks(4096):
        misses += fe.process(chunk)
    return misses


class TestResolvePolicyEntries:
    def test_named_policies(self):
        assert resolve_policy_entries("lru", 4) == (
            "lru", tuple(lru_ipv(4).entries)
        )
        assert resolve_policy_entries("LIP", 4) == (
            "lip", tuple(lip_ipv(4).entries)
        )

    def test_explicit_vector(self):
        name, entries = resolve_policy_entries((0, 1, 2, 3, 0), 4)
        assert name == "ipv4"
        assert entries == (0, 1, 2, 3, 0)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown serving policy"):
            resolve_policy_entries("belady", 4)

    def test_gippr_demands_its_assoc(self):
        with pytest.raises(ValueError, match="gippr"):
            resolve_policy_entries("gippr", 4)


class TestRunServing:
    def test_report_matches_reference(self):
        report = run_serving(SPEC, NUM_SETS, ASSOC, policy="lru",
                             shards=4)
        assert report.accesses == SPEC.accesses
        assert report.misses == reference_misses()
        assert report.shed == 0
        assert 0.0 < report.miss_rate < 1.0
        assert report.throughput > 0

    def test_report_dict_schema(self):
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2)
        payload = report.to_dict()
        assert payload["schema"] == "repro-serving-report/1"
        assert payload["spec_digest"] == SPEC.digest()
        assert payload["seed"] == SPEC.resolved_seed()
        assert payload["seed_derived"] is False
        assert payload["shards"] == 2
        assert payload["accesses"] == SPEC.accesses
        assert payload["misses"] == report.misses
        assert len(payload["shards_detail"]) == 2
        assert payload["totals"]["accesses"] == SPEC.accesses
        assert payload["retired_keys"] > 0

    def test_gauges_land_in_registry(self):
        registry = MetricsRegistry("repro_serve")
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             registry=registry)
        values = {
            name: instrument.as_json()
            for name, _, instrument in registry.instruments()
        }
        assert values["repro_serve_accesses"] == SPEC.accesses
        assert values["repro_serve_misses"] == report.misses
        assert values["repro_serve_shards"] == 2
        assert values["repro_serve_shed_accesses"] == 0
        assert values["repro_serve_retired_keys"] == report.retired
        assert values["repro_serve_throughput_accesses_per_sec"] > 0

    def test_status_file_published_and_finalized(self, tmp_path):
        status_path = tmp_path / "serve.status.json"
        run_serving(SPEC, NUM_SETS, ASSOC, status_path=status_path,
                    chunk_accesses=4096)
        status = read_status(status_path)
        assert status is not None
        assert status["phase"] == "done"
        assert status["accesses_done"] == SPEC.accesses
        assert status["accesses_total"] == SPEC.accesses
        assert status["throughput"] > 0

    def test_report_path_writes_json_and_manifest(self, tmp_path):
        report_path = tmp_path / "out" / "serving.json"
        report = run_serving(SPEC, NUM_SETS, ASSOC, shards=2,
                             report_path=report_path)
        on_disk = json.loads(report_path.read_text())
        assert on_disk["misses"] == report.misses
        manifest_path = manifest_path_for(report_path)
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["serving_spec_digest"] == SPEC.digest()
        assert manifest["serving_seed"] == SPEC.resolved_seed()
        assert manifest["serving_seed_derived"] is False
        assert manifest["serving_run"]["shards"] == 2
        assert manifest["seed"] == SPEC.resolved_seed()

    def test_derived_seed_recorded_in_manifest(self, tmp_path):
        spec = ServingSpec(keys=256, alpha=1.0, accesses=4096,
                           seed=None)
        report_path = tmp_path / "serving.json"
        run_serving(spec, NUM_SETS, ASSOC, report_path=report_path)
        manifest = json.loads(
            manifest_path_for(report_path).read_text()
        )
        assert manifest["serving_seed_derived"] is True
        assert manifest["serving_seed"] == spec.resolved_seed()
        assert manifest["seed"] == spec.resolved_seed()

    def test_geometry_validated(self):
        with pytest.raises(ValueError, match="powers of two"):
            run_serving(SPEC, 48, ASSOC)

    def test_engine_choice_does_not_change_misses(self):
        scalar = run_serving(SPEC, NUM_SETS, ASSOC, engine="scalar",
                             shards=1)
        auto = run_serving(SPEC, NUM_SETS, ASSOC, engine="auto",
                           shards=4)
        assert auto.misses == scalar.misses

    def test_chunk_size_does_not_change_misses(self):
        a = run_serving(SPEC, NUM_SETS, ASSOC, chunk_accesses=1 << 12)
        b = run_serving(SPEC, NUM_SETS, ASSOC, chunk_accesses=7777)
        assert a.misses == b.misses
