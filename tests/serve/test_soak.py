"""Soak battery: long streams, flat memory, exact sharded bit-identity.

The headline test (``-m slow``) pushes a 5M-access churning Zipf stream
through the sharded front-end and asserts two things at once:

* **Flat memory** — after a warm-up prefix, tracemalloc-observed heap
  growth stays bounded (a leak of per-access state — O(accesses)
  anywhere in generator, binning or engines — would add tens of MB);
* **Exact miss equality** — the sharded run's miss count equals the
  single-shard pure-scalar reference, bit for bit.

A scaled-down mini-soak runs in the default suite so the property is
exercised on every push, not only when someone remembers ``-m slow``.
"""

import tracemalloc

import pytest

from repro.core.ipv import lru_ipv
from repro.serve.frontend import ShardedFrontend
from repro.serve.workload import ServingSpec, ServingStream

NUM_SETS = 1024
ASSOC = 8
ENTRIES = tuple(lru_ipv(ASSOC).entries)

#: Observed flat-memory ceiling is well under 1 MiB of growth; the bound
#: leaves headroom for allocator noise while still catching any
#: O(accesses) materialization (5M accesses = 40 MB of int64 alone).
GROWTH_LIMIT_BYTES = 8 << 20


def soak_spec(accesses):
    return ServingSpec(
        keys=1 << 14, alpha=1.2, tenants=2, accesses=accesses,
        churn_per_million=20_000,
        phases=((accesses // 4, accesses // 10, 0.6, 64),),
        seed=1234,
    )


def run_soak(spec, shards, engine, chunk_accesses=1 << 16,
             measure_memory=False):
    """Stream ``spec`` through a front-end; return (misses, growth)."""
    frontend = ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=shards, engine=engine
    )
    stream = ServingStream(spec)
    growth = 0
    baseline = None
    warm_accesses = max(chunk_accesses, spec.accesses // 8)
    done = 0
    if measure_memory:
        tracemalloc.start()
    try:
        for chunk in stream.chunks(chunk_accesses):
            frontend.process(chunk)
            done += len(chunk)
            if measure_memory and done >= warm_accesses:
                current, _ = tracemalloc.get_traced_memory()
                if baseline is None:
                    baseline = current
                else:
                    growth = max(growth, current - baseline)
    finally:
        if measure_memory:
            tracemalloc.stop()
    assert frontend.shed_accesses == 0
    assert frontend.accesses == spec.accesses
    totals = frontend.totals()
    totals.sanity_check()
    assert stream.retired > 0, "soak spec must churn"
    return frontend.misses, growth


class TestMiniSoak:
    """Always-on scaled-down soak: every push exercises the contract."""

    ACCESSES = 300_000

    def test_sharded_soak_flat_memory_and_exact_misses(self):
        spec = soak_spec(self.ACCESSES)
        misses, growth = run_soak(
            spec, shards=4, engine="auto", chunk_accesses=1 << 15,
            measure_memory=True,
        )
        reference, _ = run_soak(spec, shards=1, engine="scalar")
        assert misses == reference
        assert growth < GROWTH_LIMIT_BYTES, (
            f"heap grew {growth / 2**20:.1f} MiB after warm-up"
        )


@pytest.mark.slow
class TestFullSoak:
    """The ISSUE's 5M-access soak (run with ``pytest -m slow``)."""

    ACCESSES = 5_000_000

    def test_five_million_access_soak(self):
        spec = soak_spec(self.ACCESSES)
        misses, growth = run_soak(
            spec, shards=4, engine="auto", measure_memory=True
        )
        reference, _ = run_soak(spec, shards=1, engine="scalar")
        assert misses == reference
        assert growth < GROWTH_LIMIT_BYTES, (
            f"heap grew {growth / 2**20:.1f} MiB after warm-up"
        )

    def test_chunk_size_invariance_at_scale(self):
        spec = soak_spec(self.ACCESSES // 5)
        a, _ = run_soak(spec, shards=4, engine="auto",
                        chunk_accesses=1 << 16)
        b, _ = run_soak(spec, shards=8, engine="auto",
                        chunk_accesses=99_991)
        assert a == b
