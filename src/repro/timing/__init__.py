"""Timing models: linear CPI (the paper's fitness), MLP-aware CPI, and a
CMP$im-like pipeline interval model."""

from .cpi import LinearCPIModel
from .mlp import MLPAwareCPIModel
from .pipeline import PipelineModel, PipelineResult, simulate_ipc

__all__ = [
    "LinearCPIModel",
    "MLPAwareCPIModel",
    "PipelineModel",
    "PipelineResult",
    "simulate_ipc",
]
