"""CMP$im-like pipeline timing model.

The paper's performance numbers come from CMP$im (Section 4.5): a 4-wide,
8-stage out-of-order core with a 128-entry instruction window, reported to
track a cycle-accurate simulator within 4%.  This module implements the
same *class* of model via interval analysis (Karkhanis/Smith-style):

* non-memory work retires ``width`` instructions per cycle;
* an isolated LLC miss stalls the core for
  ``dram_latency - window/width`` cycles — the window hides the first
  ``window/width`` cycles of the latency;
* misses whose instruction positions fall within one reorder window of the
  *first* miss of their episode (and within MSHR capacity) overlap: the
  whole episode pays a single stall.  This is the memory-level parallelism
  the paper's linear fitness cannot see (Sections 4.3, 5.2.1).

It is deliberately not cycle-accurate (neither is CMP$im); it produces IPC
estimates whose *ratios* between replacement policies are meaningful, which
is all replacement studies need.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["PipelineModel", "PipelineResult", "simulate_ipc"]


class PipelineResult:
    """IPC estimate plus the breakdown of where cycles went."""

    __slots__ = ("instructions", "cycles", "base_cycles", "stall_cycles",
                 "miss_episodes", "total_misses")

    def __init__(self, instructions, cycles, base_cycles, stall_cycles,
                 miss_episodes, total_misses):
        self.instructions = instructions
        self.cycles = cycles
        self.base_cycles = base_cycles
        self.stall_cycles = stall_cycles
        self.miss_episodes = miss_episodes
        self.total_misses = total_misses

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def mlp(self) -> float:
        """Average misses per miss episode (1.0 = no overlap)."""
        if not self.total_misses:
            return 0.0
        return self.total_misses / max(self.miss_episodes, 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PipelineResult(ipc={self.ipc:.3f}, mlp={self.mlp:.2f}, "
            f"stall={self.stall_cycles:.0f}/{self.cycles:.0f})"
        )


class PipelineModel:
    """A reorder-window core model (CMP$im's machine, Section 4.5).

    Parameters mirror the paper: ``width`` 4, ``window`` 128 entries,
    ``dram_latency`` 200 cycles, plus the LLC hit latency charged when an
    access misses L2 but hits L3 (hidden whenever it fits under the
    window, which at 30 < 128/4 it does — kept for configurability).
    """

    def __init__(
        self,
        width: int = 4,
        window: int = 128,
        dram_latency: int = 200,
        llc_hit_latency: int = 30,
        mshrs: int = 16,
    ):
        if width < 1 or window < 1 or mshrs < 1:
            raise ValueError("width, window and mshrs must be positive")
        if dram_latency < llc_hit_latency:
            raise ValueError("DRAM cannot be faster than an LLC hit")
        self.width = width
        self.window = window
        self.dram_latency = dram_latency
        self.llc_hit_latency = llc_hit_latency
        self.mshrs = mshrs

    @property
    def window_drain_cycles(self) -> float:
        """Cycles of progress the window buys past a blocking miss."""
        return self.window / self.width

    @property
    def miss_episode_penalty(self) -> float:
        return max(0.0, self.dram_latency - self.window_drain_cycles)

    @property
    def hit_penalty(self) -> float:
        return max(0.0, self.llc_hit_latency - self.window_drain_cycles)

    def simulate(
        self,
        instructions: int,
        accesses: int,
        outcomes: Sequence[bool],
    ) -> PipelineResult:
        """Estimate cycles for a region with the given LLC outcome stream.

        ``outcomes[i]`` is True when the i-th LLC access hit.  Memory
        accesses are assumed evenly spread through the instruction stream
        (trace records carry no per-instruction positions; CMP$im's traces
        force the same simplification).
        """
        if accesses != len(outcomes):
            raise ValueError("one outcome per access required")
        if instructions < accesses:
            raise ValueError("instructions cannot be fewer than accesses")
        spacing = instructions / max(accesses, 1)
        base_cycles = instructions / self.width
        penalty = self.miss_episode_penalty

        episodes = 0
        misses = 0
        hits = 0
        episode_start = None  # instruction position of the episode head
        episode_size = 0
        for i, hit in enumerate(outcomes):
            if hit:
                hits += 1
                continue
            misses += 1
            position = i * spacing
            in_window = (
                episode_start is not None
                and position - episode_start <= self.window
                and episode_size < self.mshrs
            )
            if in_window:
                episode_size += 1
            else:
                episodes += 1
                episode_start = position
                episode_size = 1

        stall = episodes * penalty + hits * self.hit_penalty
        return PipelineResult(
            instructions=instructions,
            cycles=base_cycles + stall,
            base_cycles=base_cycles,
            stall_cycles=stall,
            miss_episodes=episodes,
            total_misses=misses,
        )


def simulate_ipc(
    instructions: int,
    accesses: int,
    outcomes: Sequence[bool],
    model: PipelineModel = None,
) -> PipelineResult:
    """Convenience wrapper: simulate with a default 4-wide/128-entry core."""
    return (model or PipelineModel()).simulate(instructions, accesses, outcomes)
