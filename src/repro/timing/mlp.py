"""MLP-aware CPI model.

The paper's fitness function "cannot take into account the effects of
memory-level parallelism" (Sections 4.3 and 5.2.1) and lists MLP-awareness
as future work.  This model adds the first-order out-of-order effect: misses
whose instructions fall within one reorder-window of each other overlap
their DRAM latencies, so a burst of B clustered misses costs roughly one
serialized latency plus a small per-miss increment rather than B full
latencies — the behaviour Qureshi et al.'s MLP-aware replacement work
measures.

The driver must record the *instruction position* of every miss (see
``collect_miss_positions`` in :mod:`repro.eval.runner`).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["MLPAwareCPIModel"]


class MLPAwareCPIModel:
    """Cluster-overlap CPI model.

    Misses within ``window`` instructions of the previous miss join its
    cluster.  A cluster of size B costs
    ``miss_penalty * (1 + (B - 1) * serial_fraction)`` cycles: the first
    miss pays full latency and each overlapped miss adds only the
    non-overlapped fraction.
    """

    def __init__(
        self,
        base_cpi: float = 0.5,
        miss_penalty: float = 200.0,
        window: int = 128,
        serial_fraction: float = 0.3,
    ):
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if window < 1:
            raise ValueError("window must be positive")
        self.base_cpi = base_cpi
        self.miss_penalty = miss_penalty
        self.window = window
        self.serial_fraction = serial_fraction

    def miss_cycles(self, miss_positions: Sequence[int]) -> float:
        """Total stall cycles given per-miss instruction positions."""
        total = 0.0
        cluster_start = None
        cluster_size = 0
        last = None
        for pos in miss_positions:
            if last is not None and pos < last:
                raise ValueError("miss positions must be non-decreasing")
            if last is None or pos - last > self.window:
                if cluster_size:
                    total += self.miss_penalty * (
                        1.0 + (cluster_size - 1) * self.serial_fraction
                    )
                cluster_size = 1
            else:
                cluster_size += 1
            last = pos
        if cluster_size:
            total += self.miss_penalty * (
                1.0 + (cluster_size - 1) * self.serial_fraction
            )
        return total

    def cycles(self, instructions: int, miss_positions: Sequence[int]) -> float:
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return instructions * self.base_cpi + self.miss_cycles(miss_positions)

    def cpi(self, instructions: int, miss_positions: Sequence[int]) -> float:
        return self.cycles(instructions, miss_positions) / instructions

    def speedup(
        self,
        instructions: int,
        baseline_positions: Sequence[int],
        policy_positions: Sequence[int],
    ) -> float:
        return self.cycles(instructions, baseline_positions) / self.cycles(
            instructions, policy_positions
        )
