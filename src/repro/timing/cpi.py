"""Linear CPI model (the paper's GA fitness function, Section 4.3).

The paper estimates cycles-per-instruction as a linear function of LLC miss
count: every miss charges the DRAM latency on top of a base CPI.  Speedups
are ratios of estimated CPIs.  The paper notes this ignores memory-level
parallelism — the MLP-aware model in :mod:`repro.timing.mlp` addresses
exactly that (the paper's future-work item 2).
"""

from __future__ import annotations

__all__ = ["LinearCPIModel"]


class LinearCPIModel:
    """``cycles = instructions * base_cpi + misses * miss_penalty``.

    Defaults follow the paper's simulated machine (Section 4.5): a 4-wide
    out-of-order core (base CPI of 0.5 reflects issue constraints and
    upper-level misses) and 200-cycle DRAM.
    """

    def __init__(self, base_cpi: float = 0.5, miss_penalty: float = 200.0):
        if base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if miss_penalty < 0:
            raise ValueError("miss_penalty cannot be negative")
        self.base_cpi = base_cpi
        self.miss_penalty = miss_penalty

    def cycles(self, instructions: int, misses: int) -> float:
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return instructions * self.base_cpi + misses * self.miss_penalty

    def cpi(self, instructions: int, misses: int) -> float:
        return self.cycles(instructions, misses) / instructions

    def speedup(
        self,
        instructions: int,
        baseline_misses: int,
        policy_misses: int,
    ) -> float:
        """Speedup of the policy over the baseline, as a CPI ratio (>1 wins)."""
        return self.cycles(instructions, baseline_misses) / self.cycles(
            instructions, policy_misses
        )
