"""Pure-Python streaming scalar simulator for tree-PLRU IPV policies.

The scalar kernels in :mod:`repro.ga.fitness` are one-shot functions: a
trace in, a miss count out, state discarded.  The serving front-end
(:mod:`repro.serve`) needs the *streaming* shape instead — feed bounded
batches forever, carry the cache state across batches — and it needs it
without numpy, because the scalar path is the engine-of-last-resort when
:class:`~repro.engine.columnar.BatchSimulator` is unavailable.

:class:`ScalarStreamSimulator` is that shape.  Per batch it performs
exactly the transitions of ``kernel="lut"`` (table lookups when
:func:`repro.kernels.tables.compile_tables` succeeds) or the inlined
Figure 5/7/9 bit-walk reference otherwise, so miss counts are
bit-identical to both the one-shot scalar kernels and the columnar
``feed`` stream over the same concatenated accesses — pinned by
``tests/engine/test_streaming_feed.py`` and the serving conformance
cells.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.plru import is_power_of_two
from ..kernels import tables as _tables

__all__ = ["ScalarStreamSimulator"]


class ScalarStreamSimulator:
    """One IPV lane over one cache geometry, fed in batches.

    State (PLRU words, tag maps, fill counts) persists across
    :meth:`feed` calls; :meth:`reset` returns to cold.  ``warmup`` is
    interpreted against the global stream position, exactly like the
    one-shot kernels interpret it against the access index — feeding a
    trace in any chunking yields the same measured miss count as one
    cold pass over the whole trace.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        entries: Sequence[int],
        warmup: int = 0,
    ):
        if not is_power_of_two(num_sets):
            raise ValueError(
                f"num_sets must be a power of two, got {num_sets}"
            )
        if not is_power_of_two(assoc):
            raise ValueError(f"assoc must be a power of two, got {assoc}")
        entries = tuple(int(e) for e in entries)
        if len(entries) != assoc + 1:
            raise ValueError(
                f"IPV needs {assoc + 1} entries for {assoc}-way sets, "
                f"got {len(entries)}"
            )
        if any(e < 0 or e >= assoc for e in entries):
            raise ValueError(f"IPV entries must lie in [0, {assoc}), "
                             f"got {entries}")
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.entries = entries
        self.warmup = warmup
        # LUT stepping when tables compile (powers of two <= 16; k > 8
        # needs numpy to build tables, in which case compile_tables
        # returns None and the bit-walk below takes over).
        self._lut = _tables.compile_tables(assoc, entries)
        self.reset()

    def reset(self) -> "ScalarStreamSimulator":
        """Return to cold state and stream position 0."""
        self._states: List[int] = [0] * self.num_sets
        self._tag_to_way: List[Dict[int, int]] = [
            dict() for _ in range(self.num_sets)
        ]
        self._way_to_tag: List[List[int]] = [
            [-1] * self.assoc for _ in range(self.num_sets)
        ]
        self.pos = 0
        self.accesses = 0
        self.misses = 0
        self.measured_misses = 0
        self.cold_fills = 0
        return self

    @property
    def hits(self) -> int:
        """Whole-stream hit count (warmup included)."""
        return self.accesses - self.misses

    @property
    def evictions(self) -> int:
        """Whole-stream eviction count (misses minus cold fills)."""
        return self.misses - self.cold_fills

    def feed(self, addresses: Sequence[int]) -> int:
        """Apply one batch; return its *measured* miss count.

        Addresses must be non-negative ints (numpy integer scalars are
        fine).  Summing the per-batch returns over a stream equals the
        one-shot kernel's measured misses over the concatenation.
        """
        # numpy arrays iterate as np.int64 scalars whose arithmetic is
        # several times slower than Python ints in this loop; one bulk
        # tolist() up front is far cheaper.
        tolist = getattr(addresses, "tolist", None)
        if tolist is not None:
            addresses = tolist()
        if self._lut is not None:
            return self._feed_lut(addresses)
        return self._feed_walk(addresses)

    def _feed_lut(self, addresses: Sequence[int]) -> int:
        t = self._lut
        victim, hit, fill, shift = t.victim, t.hit, t.fill, t.log2k
        mask = self.num_sets - 1
        assoc = self.assoc
        states = self._states
        tag_to_way = self._tag_to_way
        way_to_tag = self._way_to_tag
        warmup = self.warmup
        i = self.pos
        batch_misses = 0
        measured = 0
        cold_fills = 0
        for addr in addresses:
            addr = int(addr)
            si = addr & mask
            ways = tag_to_way[si]
            way = ways.get(addr)
            state = states[si]
            if way is None:
                batch_misses += 1
                if i >= warmup:
                    measured += 1
                tags = way_to_tag[si]
                if len(ways) < assoc:
                    way = len(ways)  # cold fill: ways fill in order
                    cold_fills += 1
                else:
                    way = victim[state]
                    del ways[tags[way]]
                tags[way] = addr
                ways[addr] = way
                states[si] = fill[(state << shift) | way]
            else:
                states[si] = hit[(state << shift) | way]
            i += 1
        n = i - self.pos
        self.pos = i
        self.accesses += n
        self.misses += batch_misses
        self.measured_misses += measured
        self.cold_fills += cold_fills
        return measured

    def _feed_walk(self, addresses: Sequence[int]) -> int:
        assoc = self.assoc
        promo = list(self.entries[:assoc])
        insert = self.entries[assoc]
        mask = self.num_sets - 1
        states = self._states
        tag_to_way = self._tag_to_way
        way_to_tag = self._way_to_tag
        warmup = self.warmup
        i = self.pos
        batch_misses = 0
        measured = 0
        cold_fills = 0
        for addr in addresses:
            addr = int(addr)
            si = addr & mask
            ways = tag_to_way[si]
            state = states[si]
            way = ways.get(addr)
            if way is None:
                batch_misses += 1
                if i >= warmup:
                    measured += 1
                tags = way_to_tag[si]
                if len(ways) < assoc:
                    way = len(ways)  # cold fill: ways fill in order
                    cold_fills += 1
                else:
                    # find_plru walk (Figure 5)
                    n = 1
                    while n < assoc:
                        n = (n << 1) | ((state >> (n - 1)) & 1)
                    way = n - assoc
                    del ways[tags[way]]
                tags[way] = addr
                ways[addr] = way
                new_pos = insert
            else:
                # position decode (Figure 7)
                q = assoc + way
                pos = 0
                b = 0
                while q > 1:
                    parent = q >> 1
                    bit = (state >> (parent - 1)) & 1
                    if not (q & 1):
                        bit ^= 1
                    pos |= bit << b
                    q = parent
                    b += 1
                new_pos = promo[pos]
            # set_position (Figure 9)
            q = assoc + way
            b = 0
            while q > 1:
                parent = q >> 1
                bit = (new_pos >> b) & 1
                if not (q & 1):
                    bit ^= 1
                pmask = 1 << (parent - 1)
                state = (state | pmask) if bit else (state & ~pmask)
                q = parent
                b += 1
            states[si] = state
            i += 1
        n = i - self.pos
        self.pos = i
        self.accesses += n
        self.misses += batch_misses
        self.measured_misses += measured
        self.cold_fills += cold_fills
        return measured

    def totals(self) -> Dict[str, int]:
        """Whole-stream totals (CacheStats-comparable, fills == misses)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.misses,
            "cold_fills": self.cold_fills,
            "evictions": self.evictions,
            "measured_misses": self.measured_misses,
        }
