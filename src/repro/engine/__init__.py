"""Vectorized simulation engines.

:mod:`repro.engine.columnar` is the numpy-columnar batch simulator: all
cache sets (and many IPV/config lanes) advance in lockstep over an access
trace, with the per-access policy math served by the precompiled
transition tables of :mod:`repro.kernels`.  The scalar simulators in
:mod:`repro.ga.fitness` remain the bit-exact reference.

:mod:`repro.engine.scalar` adds a numpy-free *streaming* scalar
simulator (:class:`ScalarStreamSimulator`) whose per-batch ``feed``
matches both the one-shot scalar kernels and the columnar ``feed``
stream bit-for-bit — the serving front-end's engine of last resort.
"""

from .columnar import (
    BatchSimulator,
    ColumnarTrace,
    ColumnarUnavailable,
    DuelBatchSimulator,
    columnar_supported,
    require_numpy,
    simulate_misses_plru_columnar,
)
from .scalar import ScalarStreamSimulator

__all__ = [
    "BatchSimulator",
    "ColumnarTrace",
    "ColumnarUnavailable",
    "DuelBatchSimulator",
    "ScalarStreamSimulator",
    "columnar_supported",
    "require_numpy",
    "simulate_misses_plru_columnar",
]
