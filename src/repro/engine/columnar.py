"""Columnar numpy batch simulation engine for tree-PLRU IPV policies.

The PR-3 transition-table kernels made the per-access policy math O(1),
which left the Python interpreter loop over accesses as the hot-path
bottleneck.  This module removes that loop: tags, PLRU state words and
per-set fill counts live in 2-D/3-D numpy arrays indexed
``[lane, set(, way)]`` — a *lane* is one (IPV, config) combination — and
whole batches of accesses are applied with ``np.take``/fancy indexing
against the exact same ``array('H')`` transition tables the scalar LUT
kernel uses.  Because the tables *are* the scalar walks (memoized), every
miss count produced here is bit-identical to the bit-walk reference in
:mod:`repro.ga.fitness`; the differential/golden suites in
``tests/engine`` and ``tests/verify`` pin that.

Lockstep-over-sets scheduling
-----------------------------
Accesses to *different* sets never interact (each set's PLRU state, tags
and fill count evolve independently), so the stream can be re-ordered
set-major without changing any outcome.  :class:`ColumnarTrace`
preprocesses a trace once (shared by every lane that replays it):

1. bin accesses by set index (stable, so each set keeps its own order),
2. order set *columns* by descending per-set depth, and
3. transpose into step-major layout: step ``j`` holds the ``j``-th access
   of every set that has one.

Ordering columns by depth makes the active sets of step ``j`` a
contiguous *prefix* of the column axis, so the simulation kernel works on
plain array slices — no per-step gather of the state arrays.  Warmup is
handled with the original global access indices, which ride along in the
transposed layout.  Ragged tails (sets with fewer accesses than the
deepest set, and a final short chunk) fall out of the prefix widths.

The one piece of state this scheduling *cannot* reorder is anything
updated in global access order across sets — the PSEL counter of
set-dueling.  :class:`DuelBatchSimulator` therefore runs access-serial
but *lane-parallel*: one vectorized update over all duelling lanes per
access, bit-identical to :class:`~repro.policies.plru.DGIPPRPolicy`
driven through :class:`~repro.cache.cache.SetAssociativeCache`.

numpy is a hard requirement here.  When it is absent the engine raises
:class:`ColumnarUnavailable` — it must never silently degrade to a
scalar path the caller did not ask for (the scalar fallbacks live behind
``kernel="auto"`` in :mod:`repro.ga.fitness`, not here).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dueling import assign_leader_sets
from ..core.plru import is_power_of_two
from ..kernels import tables as _tables

__all__ = [
    "DEFAULT_BATCH_ACCESSES",
    "DEFAULT_DEPTH_SAMPLE",
    "BatchCounters",
    "BatchSimulator",
    "ColumnarTrace",
    "ColumnarUnavailable",
    "DuelBatchSimulator",
    "columnar_config",
    "columnar_supported",
    "require_numpy",
    "resolve_batch_accesses",
    "resolve_min_lanes",
    "simulate_misses_plru_columnar",
]

#: Accesses per preprocessing chunk.  Bounds the transposed layout's
#: working memory to O(chunk) regardless of trace length (the streaming
#: ingestion path feeds chunks of this size), while keeping the per-chunk
#: numpy call overhead amortized.  Chosen from the bench-kernels chunk
#: sweep: throughput is flat from ~16k up (the transpose is
#: bincount/argsort-bound), so the smallest flat point wins on memory.
DEFAULT_BATCH_ACCESSES = 1 << 16

#: ``kernel="auto"`` batches through the columnar engine only at or above
#: this many lanes — below it the per-run numpy setup outweighs the
#: amortized trace pass and the scalar LUT path wins (bench-kernels
#: ``population_scaling`` row: the crossover sits between 2 and 8 lanes
#: on every host measured).
DEFAULT_AUTO_MIN_LANES = 4


def _env_positive_int(name: str) -> Optional[int]:
    """``$name`` as a positive int, or ``None`` (unset/blank/invalid)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def resolve_batch_accesses(value: Optional[int] = None) -> int:
    """Columnar chunk size: kwarg > ``$REPRO_COLUMNAR_BATCH_ACCESSES`` >
    :data:`DEFAULT_BATCH_ACCESSES`.  Pure env parsing — works (and is
    recorded in build manifests) even when numpy is absent."""
    if value is not None:
        if value < 1:
            raise ValueError("batch_accesses must be positive")
        return int(value)
    env = _env_positive_int("REPRO_COLUMNAR_BATCH_ACCESSES")
    return env if env is not None else DEFAULT_BATCH_ACCESSES


def resolve_min_lanes(
    value: Optional[int] = None, default: int = DEFAULT_AUTO_MIN_LANES
) -> int:
    """Auto-batch lane threshold: kwarg > ``$REPRO_COLUMNAR_MIN_LANES`` >
    ``default`` (:data:`DEFAULT_AUTO_MIN_LANES`, or the caller's own
    fallback — :class:`~repro.ga.fitness.FitnessEvaluator` passes its
    overridable class attribute)."""
    if value is not None:
        if value < 1:
            raise ValueError("columnar_min_lanes must be positive")
        return int(value)
    env = _env_positive_int("REPRO_COLUMNAR_MIN_LANES")
    return env if env is not None else default


def columnar_config() -> dict:
    """The effective columnar tuning knobs (for build manifests)."""
    return {
        "batch_accesses": resolve_batch_accesses(),
        "min_lanes": resolve_min_lanes(),
    }

#: Default hit-depth sampling stride for :class:`BatchCounters`: depths
#: are decoded on every ``depth_sample``-th lockstep step (a systematic
#: sample over per-set access ranks).  1 is exhaustive; the default keeps
#: the counters-enabled overhead inside the ``make smoke-analytics``
#: budget on the lockstep engine.
DEFAULT_DEPTH_SAMPLE = 8

#: Scalar-spill tuning for collapsed traces.  Run collapsing flattens
#: single-hot-key columns, but a set where *two* hot keys interleave
#: (A,B,A,B -- period-2, which per-run collapsing cannot merge) still
#: yields a column hundreds of entries deep, and the lockstep loop then
#: burns thousands of thin numpy steps on a handful of sets.  Steps at
#: or past the first step narrower than the break-even
#: width are instead *spilled* to a per-access scalar loop over those
#: few columns (same tables, same state arrays -- bit-identical).  A
#: lockstep step costs roughly one fixed batch of numpy calls regardless
#: of width, while the scalar loop costs ~1 us per (lane, access); the
#: break-even step *population* is therefore a constant, so the width
#: threshold is ``_SPILL_ENTRIES // lanes`` (floored at _SPILL_WIDTH).
#: Spilling only kicks in when at least _SPILL_MIN_STEPS lockstep steps
#: are saved and the vectorized prefix keeps at least _SPILL_MIN_CAP
#: steps (tiny chunks stay fully lockstep).
_SPILL_WIDTH = 8
_SPILL_ENTRIES = 24
_SPILL_MIN_STEPS = 32
_SPILL_MIN_CAP = 16


class BatchCounters:
    """Per-lane/per-set counters accumulated during one engine run.

    All arrays are numpy ``int64``.  Counters cover the **entire**
    stream — warmup included — so for a ``warmup=0`` run the per-lane
    totals reconcile exactly with a scalar
    :class:`~repro.cache.stats.CacheStats` over the same trace
    (``fills == misses`` here: this engine never bypasses).
    ``measured_misses`` repeats the simulator's warmup-filtered return
    value so one object carries both views.

    ``hit_depth[lane, d]`` counts hits whose pre-promotion recency
    position was ``d``, sampled every ``depth_sample`` steps
    (``depth_sample == 1`` means exhaustive, in which case each row sums
    to the lane's hit count).  Duel runs add ``duel_flips`` (follower
    selection sign changes of PSEL) and the final ``psel`` values.
    """

    __slots__ = ("kind", "lanes", "num_sets", "assoc", "warmup",
                 "accesses", "set_accesses", "hits", "misses", "evictions",
                 "cold_fills", "hit_depth", "depth_sample",
                 "measured_misses", "duel_flips", "psel")

    def __init__(self, kind, lanes, num_sets, assoc, warmup, accesses,
                 set_accesses, misses, cold_fills, hit_depth, depth_sample,
                 measured_misses, duel_flips=None, psel=None):
        self.kind = kind
        self.lanes = lanes
        self.num_sets = num_sets
        self.assoc = assoc
        self.warmup = warmup
        self.accesses = accesses
        self.set_accesses = set_accesses
        self.misses = misses
        self.hits = set_accesses[None, :] - misses
        self.cold_fills = cold_fills
        self.evictions = misses - cold_fills
        self.hit_depth = hit_depth
        self.depth_sample = depth_sample
        self.measured_misses = measured_misses
        self.duel_flips = duel_flips
        self.psel = psel

    def totals(self, lane: int) -> Dict[str, int]:
        """Whole-stream totals for one lane (CacheStats-comparable)."""
        hits = int(self.hits[lane].sum())
        misses = int(self.misses[lane].sum())
        out = {
            "accesses": self.accesses,
            "hits": hits,
            "misses": misses,
            "fills": misses,
            "cold_fills": int(self.cold_fills[lane].sum()),
            "evictions": int(self.evictions[lane].sum()),
            "hit_rate": hits / self.accesses if self.accesses else 0.0,
            "measured_misses": int(self.measured_misses[lane]),
        }
        if self.duel_flips is not None:
            out["duel_flips"] = int(self.duel_flips[lane])
        return out

    def hit_depth_histogram(self, lane: int):
        """Sampled pre-promotion recency-depth counts (length assoc)."""
        return [int(c) for c in self.hit_depth[lane]]


class ColumnarUnavailable(RuntimeError):
    """The columnar engine cannot run in this environment/geometry."""


def _np():
    """The numpy module, or ``None`` — one seam shared with the kernels.

    Routed through :func:`repro.kernels.tables.numpy_or_none` so a single
    monkeypatch (or ``REPRO_FORCE_NO_NUMPY=1``) disables numpy
    consistently for table compilation *and* the columnar engine.
    """
    return _tables.numpy_or_none()


def require_numpy():
    """Return numpy or raise a clear :class:`ColumnarUnavailable`."""
    np = _np()
    if np is None:
        raise ColumnarUnavailable(
            "the columnar engine requires numpy, which is not importable "
            "(or is disabled via REPRO_FORCE_NO_NUMPY); use the scalar "
            "kernels ('auto'/'lut'/'walk') instead"
        )
    return np


def columnar_supported(assoc: int) -> bool:
    """True when the engine can simulate ``assoc``-way sets here and now.

    Requires numpy and compiled transition tables (powers of two up to
    :data:`repro.kernels.MAX_TABLE_ASSOC`).
    """
    return _np() is not None and _tables.tables_supported(assoc)


def _check_geometry(num_sets: int, assoc: int) -> None:
    if not is_power_of_two(num_sets):
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")
    if not _tables.tables_supported(assoc):
        if _np() is None and is_power_of_two(assoc):
            require_numpy()
        raise ValueError(
            f"columnar engine unsupported for associativity {assoc} "
            f"(needs compiled tables: powers of two <= "
            f"{_tables.MAX_TABLE_ASSOC})"
        )


# ----------------------------------------------------------------------
# Trace preprocessing (shared by every lane batch over the same trace).
# ----------------------------------------------------------------------
class _Chunk:
    """Step-transposed layout of one slice of the access stream."""

    __slots__ = ("cols", "step_offsets", "addr_by_step", "gidx_by_step",
                 "max_depth", "rep_by_step")

    def __init__(self, cols, step_offsets, addr_by_step, gidx_by_step,
                 max_depth, rep_by_step=None):
        self.cols = cols
        self.step_offsets = step_offsets
        self.addr_by_step = addr_by_step
        self.gidx_by_step = gidx_by_step
        self.max_depth = max_depth
        self.rep_by_step = rep_by_step


#: Addresses below this fit int32 tag arrays — half the memory traffic of
#: the dominant per-step tag compare.  int64 is used above it.
_INT32_ADDR_LIMIT = 1 << 31


class ColumnarTrace:
    """Set-binned, step-transposed form of one access trace.

    Built once per ``(trace, num_sets)`` and replayed by any number of
    lanes — this is where GA populations amortize trace decoding.  The
    trace is processed in chunks of ``batch_accesses`` so working memory
    stays O(chunk) even for streams that never materialize fully.

    ``collapse_runs=True`` additionally collapses consecutive duplicate
    addresses within each set's column into ``(address, repeat)`` pairs.
    A run of ``n`` identical accesses is one access followed by ``n - 1``
    guaranteed hits whose promotions walk the IPV's promotion chain, and
    the way's path bits depend only on the *final* position
    (:func:`repro.kernels.tables.promotion_orbit`), so the simulator
    applies whole runs in O(1) — bit-identical misses, miss indices and
    final state.  This is the antidote to lockstep degeneration on
    Zipf-skewed streams, where a hot key turns its set's column into one
    long run and per-step widths collapse to 1.  Counters require the
    original per-access columns, so ``run(counters=True)`` rejects
    collapsed traces.
    """

    __slots__ = ("num_sets", "n", "batch_accesses", "chunks", "addr_dtype",
                 "collapsed")

    def __init__(
        self,
        addresses: Sequence[int],
        num_sets: int,
        batch_accesses: Optional[int] = None,
        collapse_runs: bool = False,
    ):
        np = require_numpy()
        if not is_power_of_two(num_sets):
            raise ValueError(
                f"num_sets must be a power of two, got {num_sets}"
            )
        batch_accesses = resolve_batch_accesses(batch_accesses)
        addrs = np.ascontiguousarray(addresses, dtype=np.int64)
        if addrs.ndim != 1:
            raise ValueError("addresses must be a flat sequence")
        if addrs.size and int(addrs.min()) < 0:
            raise ValueError("addresses must be non-negative")
        self.num_sets = num_sets
        self.n = int(addrs.size)
        self.batch_accesses = batch_accesses
        self.collapsed = bool(collapse_runs)
        self.addr_dtype = (
            np.int32
            if not addrs.size or int(addrs.max()) < _INT32_ADDR_LIMIT
            else np.int64
        )
        self.chunks: List[_Chunk] = []
        mask = num_sets - 1
        for base in range(0, self.n, batch_accesses):
            chunk = addrs[base:base + batch_accesses]
            self.chunks.append(self._transpose(np, chunk, base, mask))

    def _transpose(self, np, chunk, base: int, mask: int) -> _Chunk:
        m = chunk.size
        si = chunk & mask
        # Stable argsort picks radix for small int dtypes: an order of
        # magnitude faster than sorting the int64 set indices directly.
        sort_key = (
            si.astype(np.uint16) if self.num_sets <= (1 << 16) else si
        )
        order = np.argsort(sort_key, kind="stable")
        sorted_si = si[order]
        addr_sorted = chunk[order]
        gidx_sorted = base + order
        rep = None
        if self.collapsed and m:
            # Runs are consecutive equal addresses in set-major order.
            # Equal addresses imply equal sets, so address inequality
            # alone delimits runs — set boundaries fall out for free.
            new_run = np.empty(m, dtype=bool)
            new_run[0] = True
            np.not_equal(addr_sorted[1:], addr_sorted[:-1], out=new_run[1:])
            starts = np.flatnonzero(new_run)
            rep = np.diff(np.append(starts, m)).astype(np.int32)
            sorted_si = sorted_si[starts]
            addr_sorted = addr_sorted[starts]
            gidx_sorted = gidx_sorted[starts]
            m = int(starts.size)
        counts = np.bincount(sorted_si, minlength=self.num_sets)
        start = np.zeros(self.num_sets, dtype=np.int64)
        np.cumsum(counts[:-1], out=start[1:])
        rank = np.arange(m, dtype=np.int64) - start[sorted_si]
        # Columns ordered by descending depth: the sets active at step j
        # are then exactly the first `width[j]` columns.
        set_order = np.argsort(-counts, kind="stable")
        col_of_set = np.empty(self.num_sets, dtype=np.int64)
        col_of_set[set_order] = np.arange(self.num_sets, dtype=np.int64)
        counts_desc = counts[set_order]
        max_depth = int(counts_desc[0]) if m else 0
        widths = np.searchsorted(
            -counts_desc, -np.arange(max_depth, dtype=np.int64), side="left"
        )
        step_offsets = np.zeros(max_depth + 1, dtype=np.int64)
        np.cumsum(widths, out=step_offsets[1:])
        # Within a step the active columns appear in column order, so the
        # destination of sorted position p is a pure function of its
        # (rank, column) pair — one vectorized scatter transposes the lot.
        dest = step_offsets[rank] + col_of_set[sorted_si]
        addr_by_step = np.empty(m, dtype=self.addr_dtype)
        addr_by_step[dest] = addr_sorted
        gidx_by_step = np.empty(m, dtype=np.int64)
        gidx_by_step[dest] = gidx_sorted
        rep_by_step = None
        if rep is not None:
            rep_by_step = np.empty(m, dtype=np.int32)
            rep_by_step[dest] = rep
        ncols = int(widths[0]) if max_depth else 0
        return _Chunk(
            set_order[:ncols].copy(), step_offsets, addr_by_step,
            gidx_by_step, max_depth, rep_by_step,
        )


# ----------------------------------------------------------------------
# Compiled lane tables (deduplicated, stacked flat for np.take).
# ----------------------------------------------------------------------
class _LaneTables:
    """Per-unique-IPV hit/fill tables stacked into flat numpy vectors.

    Also carries the run-collapse tables (promotion orbits per unique IPV
    plus the per-``k`` path-write tables) so the kernel can apply a whole
    run of duplicate accesses as one state write.
    """

    __slots__ = ("assoc", "shift", "states", "victim", "pos",
                 "hit_flat", "fill_flat", "table_base", "unique",
                 "pos_i64", "orbit_flat", "entry_flat", "cycle_flat",
                 "orbit_base", "ec_base", "insert_lane",
                 "path_mask", "path_bits",
                 "scalar", "lane_unique", "mask_list", "bits_list")

    def __init__(self, assoc: int, entries_list: Sequence[Sequence[int]]):
        np = require_numpy()
        unique: Dict[Tuple[int, ...], int] = {}
        stacked_hit = []
        stacked_fill = []
        stacked_orbit = []
        stacked_entry = []
        stacked_cycle = []
        insert_of: List[int] = []
        base_of: List[int] = []
        victim = pos = None
        shift = states = 0
        # Per-unique scalar views for the spill path: the compiled
        # ``array('H')`` tables plus the raw (nested-list) orbit tables.
        # References only — the numpy stacks below share their buffers.
        scalar: List[tuple] = []
        for entries in entries_list:
            tables = _tables.compile_tables(assoc, entries)
            if tables is None:  # pragma: no cover - guarded by caller
                raise ValueError(
                    f"no transition tables for associativity {assoc}"
                )
            key = tables.entries
            index = unique.get(key)
            if index is None:
                index = len(unique)
                unique[key] = index
                stacked_hit.append(np.frombuffer(tables.hit, dtype=np.uint16))
                stacked_fill.append(
                    np.frombuffer(tables.fill, dtype=np.uint16)
                )
                orbit, entry, cycle = _tables.promotion_orbit(assoc, key)
                stacked_orbit.append(
                    np.asarray(orbit, dtype=np.int64).reshape(-1)
                )
                stacked_entry.append(np.asarray(entry, dtype=np.int64))
                stacked_cycle.append(np.asarray(cycle, dtype=np.int64))
                insert_of.append(key[assoc])
                scalar.append((tables, orbit, entry, cycle))
            base_of.append(index)
            if victim is None:
                victim = np.frombuffer(tables.victim, dtype=np.uint16)
                pos = np.frombuffer(tables.pos, dtype=np.uint16)
                shift = tables.log2k
                states = 1 << (assoc - 1)
        self.assoc = assoc
        self.shift = shift
        self.states = states
        # int32 working copies: uint16 lookups promote awkwardly in the
        # hot mixed-dtype where/compare chains, and the state words they
        # produce live in int32 arrays anyway.
        self.victim = victim.astype(np.int32)
        self.pos = pos
        self.pos_i64 = pos.astype(np.int64)
        self.hit_flat = np.concatenate(stacked_hit).astype(np.int32)
        self.fill_flat = np.concatenate(stacked_fill).astype(np.int32)
        stride = states * assoc
        bases = np.asarray(base_of, dtype=np.int64)
        self.table_base = bases * stride
        self.unique = len(unique)
        # Run-collapse tables: per-lane orbit/entry/cycle bases plus the
        # per-k path-write identity (tiny; see kernels.tables docs).
        self.orbit_flat = np.concatenate(stacked_orbit)
        self.entry_flat = np.concatenate(stacked_entry)
        self.cycle_flat = np.concatenate(stacked_cycle)
        self.orbit_base = (bases * (2 * assoc * assoc))[:, None]
        self.ec_base = (bases * assoc)[:, None]
        self.insert_lane = np.asarray(
            [insert_of[i] for i in base_of], dtype=np.int64
        )[:, None]
        mask, bits = _tables.path_write_tables(assoc)
        self.path_mask = np.asarray(mask, dtype=np.int32)
        self.path_bits = np.asarray(bits, dtype=np.int32).reshape(-1)
        self.scalar = scalar
        self.lane_unique = base_of
        self.mask_list = mask
        self.bits_list = bits


# ----------------------------------------------------------------------
# The batch simulator: many single-IPV lanes, lockstep over sets.
# ----------------------------------------------------------------------
class BatchSimulator:
    """Simulate many IPV lanes over one trace in a single columnar pass.

    Each lane is one IPV; all lanes share the geometry, the warmup window
    and — crucially — the preprocessed trace.  Identical IPVs share one
    compiled table set (GA populations routinely carry duplicates).
    Results are bit-identical to the scalar walk/LUT simulators of
    :mod:`repro.ga.fitness`, per lane.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        entries_list: Sequence[Sequence[int]],
        warmup: int = 0,
    ):
        require_numpy()
        _check_geometry(num_sets, assoc)
        if not entries_list:
            raise ValueError("BatchSimulator needs at least one IPV lane")
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.warmup = warmup
        self.lanes = len(entries_list)
        self._tables = _LaneTables(assoc, entries_list)
        #: :class:`BatchCounters` from the last ``run(counters=True)``.
        self.counters: Optional[BatchCounters] = None
        self._stream: Optional[dict] = None

    def run(
        self,
        trace,
        collect_miss_indices: bool = False,
        counters: bool = False,
        depth_sample: int = DEFAULT_DEPTH_SAMPLE,
    ):
        """Replay ``trace`` through every lane from cold state.

        ``trace`` is a :class:`ColumnarTrace` (reuse it across
        populations!) or a raw address sequence.  Returns the per-lane
        measured miss counts as an ``int64`` array of shape ``(lanes,)``;
        with ``collect_miss_indices`` a ``(misses, indices)`` tuple where
        ``indices[lane]`` is the sorted list of measured-miss access
        indices (exactly what the scalar ``miss_indices`` output yields).

        ``counters=True`` additionally accumulates a
        :class:`BatchCounters` on ``self.counters`` (hits, misses,
        evictions and cold fills per lane and set, plus a hit-depth
        histogram sampled every ``depth_sample`` steps).  The miss counts
        and final state are bit-identical with or without counters; the
        extra cost per step is one chunk-local accumulate and two list
        appends of arrays the kernel computes anyway.
        """
        np = require_numpy()
        from ..obs.spans import span

        if not isinstance(trace, ColumnarTrace):
            trace = ColumnarTrace(trace, self.num_sets)
        elif trace.num_sets != self.num_sets:
            raise ValueError(
                f"trace was binned for {trace.num_sets} sets, "
                f"simulator has {self.num_sets}"
            )
        if counters and depth_sample < 1:
            raise ValueError("depth_sample must be >= 1")
        if counters and trace.collapsed:
            raise ValueError(
                "counters need per-access columns; build the trace with "
                "collapse_runs=False"
            )
        self.counters = None
        with span("engine.columnar_run", lanes=self.lanes,
                  accesses=trace.n, counters=int(counters)):
            return self._run(np, trace, collect_miss_indices, counters,
                             depth_sample)

    def begin_stream(self) -> "BatchSimulator":
        """Reset to cold state and open an incremental feed.

        Unlike :meth:`run` — which always starts cold — a stream carries
        the tag/state/fill arrays across :meth:`feed` calls, so a long
        trace can be pushed through in bounded-memory chunks with results
        bit-identical to one cold :meth:`run` over the concatenation.
        Persistent tags are ``int64`` so chunks may mix address widths.
        """
        np = require_numpy()
        L, S, k = self.lanes, self.num_sets, self.assoc
        self._stream = {
            "state": np.zeros((L, S), dtype=np.int64),
            "tags": np.full((L, S, k), -1, dtype=np.int64),
            "nfill": np.zeros((L, S), dtype=np.int32),
            "pos": 0,
            "misses": np.zeros(L, dtype=np.int64),
        }
        return self

    def feed(self, addresses, batch_accesses: Optional[int] = None,
             collapse_runs: bool = False):
        """Push one batch of the stream through every lane.

        ``addresses`` is a raw address sequence or a pre-binned
        :class:`ColumnarTrace`.  Opens a stream implicitly on first call
        (:meth:`begin_stream` resets explicitly).  Returns the per-lane
        *measured* miss counts for this batch alone (``int64``, shape
        ``(lanes,)``) — the warmup window is interpreted against the
        global stream position, so summing the per-batch returns equals
        the single-shot :meth:`run` result exactly.

        ``collapse_runs=True`` builds the trace with duplicate-run
        collapsing (see :class:`ColumnarTrace`) — bit-identical results,
        large speedup on skewed streams.
        """
        np = require_numpy()
        from ..obs.spans import span

        if self._stream is None:
            self.begin_stream()
        if not isinstance(addresses, ColumnarTrace):
            trace = ColumnarTrace(
                addresses, self.num_sets, batch_accesses,
                collapse_runs=collapse_runs,
            )
        else:
            trace = addresses
            if trace.num_sets != self.num_sets:
                raise ValueError(
                    f"trace was binned for {trace.num_sets} sets, "
                    f"simulator has {self.num_sets}"
                )
        stream = self._stream
        with span("engine.columnar_feed", lanes=self.lanes,
                  accesses=trace.n):
            misses = self._run(
                np, trace, False,
                state=stream["state"], tags=stream["tags"],
                nfill=stream["nfill"], index_offset=stream["pos"],
            )
        stream["pos"] += trace.n
        stream["misses"] += misses
        return misses

    @property
    def stream_pos(self) -> int:
        """Accesses fed so far on the open stream (0 when none open)."""
        return 0 if self._stream is None else self._stream["pos"]

    def stream_misses(self):
        """Cumulative per-lane measured misses over the open stream."""
        if self._stream is None:
            raise RuntimeError("no stream open; call feed()/begin_stream()")
        return self._stream["misses"].copy()

    def end_stream(self):
        """Close the stream, returning cumulative per-lane misses."""
        misses = self.stream_misses()
        self._stream = None
        return misses

    def _run(self, np, trace: ColumnarTrace, collect_miss_indices: bool,
             counters: bool = False,
             depth_sample: int = DEFAULT_DEPTH_SAMPLE,
             state=None, tags=None, nfill=None, index_offset: int = 0):
        L, S, k = self.lanes, self.num_sets, self.assoc
        t = self._tables
        shift = t.shift
        # Access indices inside `trace` are local; against a stream prefix
        # of `index_offset` accesses the measured window starts at
        # local index `warmup - index_offset` (negative: all measured).
        warmup = self.warmup - index_offset
        victim_t, hit_t, fill_t = t.victim, t.hit_flat, t.fill_flat
        if state is None:
            state = np.zeros((L, S), dtype=np.int64)
            tags = np.full((L, S, k), -1, dtype=trace.addr_dtype)
            nfill = np.zeros((L, S), dtype=np.int32)
        misses = np.zeros(L, dtype=np.int64)
        lane_base = t.table_base[:, None]
        lane_rows = np.arange(L)[:, None]
        miss_lanes: List = []
        miss_gidx: List = []
        if counters:
            set_accesses = np.zeros(S, dtype=np.int64)
            miss_ls = np.zeros((L, S), dtype=np.int64)
            depth_counts = np.zeros(L * k + 1, dtype=np.int64)
            pos_i64 = t.pos.astype(np.int64)
            lane_k = (np.arange(L, dtype=np.int64) * k)[:, None]
        two_k = 2 * k
        orbit_t, entry_t, cycle_t = t.orbit_flat, t.entry_flat, t.cycle_flat
        for chunk in trace.chunks:
            cols = chunk.cols
            offsets = chunk.step_offsets
            addr_by_step = chunk.addr_by_step
            gidx_by_step = chunk.gidx_by_step
            rep_by_step = chunk.rep_by_step
            # Chunk-local copies in column order: every step below then
            # touches a contiguous prefix of the column axis.
            st = state[:, cols]
            tg = tags[:, cols, :]
            nf = nfill[:, cols]
            # Collapsed chunks with a pathologically deep tail (a couple
            # of interleaved hot keys in one set) cap the lockstep loop
            # at the first thin step and finish those columns scalar.
            depth_cap = chunk.max_depth
            spill_widths = None
            if (rep_by_step is not None and not counters
                    and chunk.max_depth >= _SPILL_MIN_CAP + _SPILL_MIN_STEPS):
                widths_all = np.diff(offsets)
                thin = np.flatnonzero(
                    widths_all <= max(_SPILL_WIDTH, _SPILL_ENTRIES // L)
                )
                if (thin.size and int(thin[0]) >= _SPILL_MIN_CAP
                        and chunk.max_depth - int(thin[0])
                        >= _SPILL_MIN_STEPS):
                    depth_cap = int(thin[0])
                    spill_widths = widths_all
            if counters:
                # Step-major miss buffer, one plane per lockstep step:
                # a slice write per step plus one vectorized sum over
                # the step axis at chunk end.  This beats a per-step
                # `+=` scatter (a numpy call per step) and a ragged
                # buffer + masked bincount (a fancy-index pass over
                # every access) — both blow the 5 % overhead budget.
                miss_buf = np.zeros(
                    (L, chunk.max_depth, cols.size), dtype=bool
                )
                sw_frames: List = []
                hit_frames: List = []
            col_ar = np.arange(cols.size, dtype=np.int64)[None, :]
            # One segment-max pass replaces a per-step rep reduce.
            rep_max = None
            if rep_by_step is not None and depth_cap:
                rep_max = np.maximum.reduceat(
                    rep_by_step, offsets[:depth_cap]
                ).tolist()
            for j in range(depth_cap):
                o0, o1 = int(offsets[j]), int(offsets[j + 1])
                w = o1 - o0
                addr = addr_by_step[o0:o1]
                gidx = gidx_by_step[o0:o1]
                tgj = tg[:, :w, :]
                stj = st[:, :w]
                nfj = nf[:, :w]
                # One [L, w, k] scan for the compare, then two cheap C
                # reduces.  (any/argmax beat a take_along_axis here: the
                # wrapper's Python-side index plumbing costs more than
                # the extra scan at lockstep widths.)
                eq = tgj == addr[None, :, None]
                is_hit = eq.any(axis=2)
                hit_way = eq.argmax(axis=2)
                miss = ~is_hit
                cold = miss & (nfj < k)
                way = np.where(
                    is_hit, hit_way,
                    np.where(cold, nfj, victim_t.take(stj)),
                )
                sw = (stj << shift) | way
                if rep_max is not None and rep_max[j] > 1:
                    rep_j = rep_by_step[o0:o1]
                    # Collapsed-run transition: a run of rep identical
                    # accesses advances the way's position n steps along
                    # the promotion orbit (n = rep for a hit-led run,
                    # rep - 1 past the insertion point for a miss-led
                    # one) and rewrites only its path bits — exactly the
                    # composed table semantics, applied once per run.
                    n = rep_j.astype(np.int64)[None, :] - miss
                    p0 = np.where(
                        is_hit, t.pos_i64.take(sw), t.insert_lane
                    )
                    ec = t.ec_base + p0
                    e = entry_t.take(ec)
                    c = cycle_t.take(ec)
                    idx = np.where(n < two_k, n, e + (n - e) % c)
                    pfin = orbit_t.take(t.orbit_base + p0 * two_k + idx)
                    new_state = (
                        (stj & ~t.path_mask.take(way))
                        | t.path_bits.take(way * k + pfin)
                    )
                else:
                    flat = lane_base + sw
                    new_state = np.where(
                        is_hit, hit_t.take(flat), fill_t.take(flat)
                    )
                if counters:
                    miss_buf[:, j, :w] = miss
                    if j % depth_sample == 0:
                        # On a hit, way == hit_way, so `sw` already
                        # indexes the pre-promotion (state, way) cell the
                        # pos table decodes; misses are masked out of the
                        # histogram at chunk end.
                        sw_frames.append(sw)
                        hit_frames.append(is_hit)
                # Hits rewrite the resident tag with itself, so the tag
                # scatter needs no mask at all.  One fancy assignment —
                # put_along_axis's Python-side plumbing is
                # step-dominating at this width (and `tg` need not be
                # contiguous: a sandwiched advanced index hands back a
                # transposed layout for L > 1).
                tg[lane_rows, col_ar[:, :w], way] = addr
                stj[...] = new_state
                nfj += cold
                measured = miss & (gidx >= warmup)[None, :]
                misses += np.count_nonzero(measured, axis=1)
                if collect_miss_indices:
                    rows, cells = np.nonzero(measured)
                    if rows.size:
                        miss_lanes.append(rows)
                        miss_gidx.append(gidx[cells])
            if spill_widths is not None:
                sp_misses, sp_rows, sp_gidx = self._spill_tail(
                    np, chunk, depth_cap, spill_widths, st, tg, nf,
                    warmup, collect_miss_indices,
                )
                misses += np.asarray(sp_misses, dtype=np.int64)
                if sp_rows:
                    miss_lanes.append(np.asarray(sp_rows, dtype=np.int64))
                    miss_gidx.append(np.asarray(sp_gidx, dtype=np.int64))
            state[:, cols] = st
            tags[:, cols, :] = tg
            nfill[:, cols] = nf
            if counters:
                # Per-set access counts without touching the address
                # arrays: column c of this chunk is active on exactly the
                # steps whose width exceeds c (widths are non-increasing).
                widths = np.diff(offsets)
                if widths.size:
                    per_col = np.searchsorted(
                        -widths, -np.arange(cols.size, dtype=np.int64),
                        side="left",
                    )
                    set_accesses[cols] += per_col
                if chunk.max_depth:
                    miss_ls[:, cols] += miss_buf.sum(
                        axis=1, dtype=np.int64
                    )
                if sw_frames:
                    sw_all = np.concatenate(sw_frames, axis=1)
                    hit_all = np.concatenate(hit_frames, axis=1)
                    sel = np.where(
                        hit_all, pos_i64.take(sw_all) + lane_k, L * k
                    )
                    depth_counts += np.bincount(
                        sel.ravel(), minlength=L * k + 1
                    )
        self.final_state = state
        if counters:
            self.counters = BatchCounters(
                "batch", L, S, k, warmup, trace.n, set_accesses, miss_ls,
                nfill.astype(np.int64), depth_counts[:L * k].reshape(L, k),
                depth_sample, misses.copy(),
            )
        if not collect_miss_indices:
            return misses
        indices: List[List[int]] = [[] for _ in range(L)]
        if miss_lanes:
            rows = np.concatenate(miss_lanes)
            gidx = np.concatenate(miss_gidx)
            order = np.lexsort((gidx, rows))
            rows = rows[order]
            gidx = gidx[order]
            bounds = np.searchsorted(rows, np.arange(L + 1))
            for lane in range(L):
                indices[lane] = gidx[bounds[lane]:bounds[lane + 1]].tolist()
        return misses, indices

    def _spill_tail(self, np, chunk, depth_cap, widths, st, tg, nf,
                    warmup, collect):
        """Finish pathologically deep columns with a per-access loop.

        Past ``depth_cap`` every lockstep step is at most ``_SPILL_WIDTH``
        columns wide, so the numpy per-call overhead dwarfs the work.
        This walks the surviving columns' remaining entries one access at
        a time against the same flat tables — the scalar mirror of the
        vectorized transition (including the run-orbit composition), so
        results stay bit-identical.  Mutates the chunk-local ``st``,
        ``tg``, ``nf`` views in place; returns per-lane measured-miss
        counts plus (lane, gidx) pairs when ``collect`` is set.
        """
        t = self._tables
        k = self.assoc
        two_k = 2 * k
        offsets = chunk.step_offsets
        mask_w, bits_w = t.mask_list, t.bits_list
        lane_misses = [0] * self.lanes
        rows: List[int] = []
        gidxs: List[int] = []
        # One bulk tolist() of the whole tail keeps the inner loop on
        # Python ints, like the scalar LUT simulator's feed loop.
        # Column ci is active on exactly the steps wider than ci
        # (widths are non-increasing), and its entry at step j sits at
        # ``offsets[j] + ci``.
        off0 = int(offsets[depth_cap])
        addrs = chunk.addr_by_step[off0:].tolist()
        gs = chunk.gidx_by_step[off0:].tolist()
        reps = chunk.rep_by_step[off0:].tolist()
        offs_rel = (offsets[depth_cap:-1] - off0).tolist()
        ncols = int(widths[depth_cap])
        col_depths = np.searchsorted(
            -widths, -np.arange(ncols, dtype=widths.dtype), side="left"
        ).tolist()
        for ci in range(ncols):
            steps_c = col_depths[ci] - depth_cap
            for lane in range(self.lanes):
                ct, orbit, entry, cycle = t.scalar[t.lane_unique[lane]]
                victim, hit, fill = ct.victim, ct.hit, ct.fill
                pos = ct.pos
                shift = ct.log2k
                insert = ct.entries[k]
                s = int(st[lane, ci])
                tag_list = tg[lane, ci].tolist()
                nfv = int(nf[lane, ci])
                missed = 0
                for jr in range(steps_c):
                    o = offs_rel[jr] + ci
                    a = addrs[o]
                    g = gs[o]
                    r = reps[o]
                    try:
                        w = tag_list.index(a)
                        is_hit = True
                    except ValueError:
                        is_hit = False
                        if g >= warmup:
                            missed += 1
                            if collect:
                                rows.append(lane)
                                gidxs.append(g)
                        if nfv < k:
                            w = nfv
                            nfv += 1
                        else:
                            w = victim[s]
                        tag_list[w] = a
                    sw = (s << shift) | w
                    if r > 1:
                        # Same composed run-orbit transition as the
                        # vectorized branch, one run at a time.
                        p0 = pos[sw] if is_hit else insert
                        n = r if is_hit else r - 1
                        if n >= two_k:
                            e = entry[p0]
                            n = e + (n - e) % cycle[p0]
                        s = (s & ~mask_w[w]) | bits_w[w][orbit[p0][n]]
                    elif is_hit:
                        s = hit[sw]
                    else:
                        s = fill[sw]
                st[lane, ci] = s
                tg[lane, ci] = tag_list
                nf[lane, ci] = nfv
                lane_misses[lane] += missed
        return lane_misses, rows, gidxs

    def positions(self, lane: int):
        """Recency positions ``[set, way]`` decoded from the final state
        of the most recent :meth:`run` (verification hook)."""
        np = require_numpy()
        state = self.final_state[lane]
        idx = (state[:, None] << self._tables.shift) | np.arange(
            self.assoc, dtype=np.int64
        )
        return self._tables.pos[idx]


def simulate_misses_plru_columnar(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
    batch_accesses: Optional[int] = None,
) -> int:
    """Single-lane columnar twin of the scalar PLRU-IPV simulators.

    Bit-identical miss counts (and ``miss_indices`` contents) to
    ``kernel="walk"``/``"lut"``; raises :class:`ColumnarUnavailable`
    without numpy rather than silently degrading.
    """
    simulator = BatchSimulator(num_sets, assoc, [entries], warmup)
    trace = ColumnarTrace(addresses, num_sets, batch_accesses)
    if miss_indices is None:
        return int(simulator.run(trace)[0])
    misses, indices = simulator.run(trace, collect_miss_indices=True)
    miss_indices.extend(indices[0])
    return int(misses[0])


# ----------------------------------------------------------------------
# Set-dueling lanes: lane-parallel, access-serial (PSEL is global-order
# state, so lockstep-over-sets reordering would change its trajectory).
# ----------------------------------------------------------------------
class DuelBatchSimulator:
    """Many 2-vector set-dueling (2-DGIPPR) lanes over one trace.

    Each lane duels its own ``(ipv_a, ipv_b)`` pair with a private PSEL
    counter; all lanes share the leader-set assignment (same
    ``(num_sets, seed)`` derivation as
    :class:`~repro.core.dueling.DuelSelector`).  Semantics — PSEL update
    *before* the fill-vector choice of the same missing access, saturation
    rails, follower selection ``0 if psel < 0 else 1`` — replicate
    :class:`~repro.policies.plru.DGIPPRPolicy` under
    :class:`~repro.cache.cache.SetAssociativeCache` exactly, which the
    conformance cells in ``tests/engine`` assert bit-for-bit.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        ipv_pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
        leaders_per_policy: Optional[int] = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
    ):
        np = require_numpy()
        _check_geometry(num_sets, assoc)
        if not ipv_pairs:
            raise ValueError("DuelBatchSimulator needs at least one lane")
        self.num_sets = num_sets
        self.assoc = assoc
        self.lanes = len(ipv_pairs)
        flattened = [entries for pair in ipv_pairs for entries in pair]
        if len(flattened) != 2 * self.lanes:
            raise ValueError("each duel lane needs exactly two IPVs")
        self._tables = _LaneTables(assoc, flattened)
        #: table_base reshaped to [lane, vector] for per-access selection.
        self._vector_base = self._tables.table_base.reshape(self.lanes, 2)
        self.leaders = assign_leader_sets(
            num_sets, 2, leaders_per_policy, seed=seed
        )
        self._psel_lo = -(1 << (counter_bits - 1))
        self._psel_hi = (1 << (counter_bits - 1)) - 1
        self.psel = np.zeros(self.lanes, dtype=np.int64)
        #: :class:`BatchCounters` from the last ``run(counters=True)``.
        self.counters: Optional[BatchCounters] = None

    def run(self, addresses: Sequence[int], warmup: int = 0,
            counters: bool = False):
        """Replay ``addresses`` through every duelling lane from cold
        state; returns per-lane measured miss counts (``int64``,
        shape ``(lanes,)``).

        ``counters=True`` additionally accumulates a
        :class:`BatchCounters` on ``self.counters``, including per-lane
        PSEL flip counts (sign changes of the selector) and an *exact*
        hit-depth histogram (``depth_sample == 1``: the access-serial
        loop makes per-access appends essentially free).
        """
        np = require_numpy()
        from ..obs.spans import span

        L, S, k = self.lanes, self.num_sets, self.assoc
        t = self._tables
        shift = t.shift
        mask = S - 1
        state = np.zeros((L, S), dtype=np.int64)
        tags = np.full((L, S, k), -1, dtype=np.int64)
        nfill = np.zeros((L, S), dtype=np.int64)
        misses = np.zeros(L, dtype=np.int64)
        psel = self.psel
        psel[:] = 0
        lanes = np.arange(L)
        leaders = self.leaders
        self.counters = None
        if counters:
            hits_set = np.zeros((L, S), dtype=np.int64)
            flips = np.zeros(L, dtype=np.int64)
            prev_sign = psel >= 0
            idx_frames: List = []
            hit_frames: List = []
        with span("engine.columnar_duel", lanes=L, accesses=len(addresses),
                  counters=int(counters)):
            for i, address in enumerate(addresses):
                address = int(address)
                si = address & mask
                leader = leaders[si]
                tg = tags[:, si, :]
                hitmask = tg == address
                is_hit = hitmask.any(axis=1)
                hit_way = hitmask.argmax(axis=1)
                miss = ~is_hit
                # Vector governing the hit promotion: PSEL *before* this
                # access's record_miss (hits never update PSEL anyway).
                if leader >= 0:
                    vec_hit = np.full(L, leader, dtype=np.int64)
                else:
                    vec_hit = (psel >= 0).astype(np.int64)
                # record_miss: leader-0 misses increment, leader-1 misses
                # decrement, saturating at the rails.
                if leader == 0:
                    psel[miss & (psel < self._psel_hi)] += 1
                elif leader == 1:
                    psel[miss & (psel > self._psel_lo)] -= 1
                # Fill vector: PSEL *after* the update (the cache calls
                # on_miss before on_fill).
                if leader >= 0:
                    vec_fill = vec_hit
                else:
                    vec_fill = (psel >= 0).astype(np.int64)
                st = state[:, si]
                nf = nfill[:, si]
                cold = miss & (nf < k)
                way = np.where(is_hit, hit_way,
                               np.where(cold, nf, t.victim[st]))
                idx = (st << shift) | way
                base = self._vector_base[
                    lanes, np.where(is_hit, vec_hit, vec_fill)
                ]
                state[:, si] = np.where(
                    is_hit, t.hit_flat[base + idx], t.fill_flat[base + idx]
                )
                tg[lanes, way] = address
                nfill[:, si] = nf + cold
                if i >= warmup:
                    misses += miss
                if counters:
                    hits_set[:, si] += is_hit
                    idx_frames.append(idx)
                    hit_frames.append(is_hit)
                    if leader >= 0:
                        # PSEL only moves on leader-set accesses, so the
                        # selector sign can only flip here.
                        sign = psel >= 0
                        flips += sign != prev_sign
                        prev_sign = sign
        self.final_state = state
        if counters:
            n = len(addresses)
            if n:
                addr_arr = np.fromiter(
                    (int(a) for a in addresses), dtype=np.int64, count=n
                )
                accesses_per_set = np.bincount(addr_arr & mask, minlength=S)
                idx_all = np.stack(idx_frames, axis=0)
                hit_all = np.stack(hit_frames, axis=0)
                depth = t.pos.astype(np.int64).take(idx_all)
                sel = np.where(
                    hit_all,
                    depth + (np.arange(L, dtype=np.int64) * k)[None, :],
                    L * k,
                )
                depth_counts = np.bincount(sel.ravel(), minlength=L * k + 1)
            else:
                accesses_per_set = np.zeros(S, dtype=np.int64)
                depth_counts = np.zeros(L * k + 1, dtype=np.int64)
            self.counters = BatchCounters(
                "duel", L, S, k, warmup, n, accesses_per_set,
                accesses_per_set[None, :] - hits_set, nfill.copy(),
                depth_counts[:L * k].reshape(L, k),
                1, misses.copy(), duel_flips=flips, psel=psel.copy(),
            )
        return misses

    def positions(self, lane: int):
        """Final recency positions ``[set, way]`` (verification hook)."""
        np = require_numpy()
        state = self.final_state[lane]
        idx = (state[:, None] << self._tables.shift) | np.arange(
            self.assoc, dtype=np.int64
        )
        return self._tables.pos[idx]
