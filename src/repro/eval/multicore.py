"""Multi-core shared-LLC evaluation (paper future work, item 4).

Section 7: "We have demonstrated the technique on single-threaded
workloads, but we are actively researching extending it to multi-core."

This module co-schedules several benchmarks on one shared LLC: each core
issues accesses from its own trace (address spaces are disjoint, as
separate physical pages would be) in round-robin order, and per-core miss
counts are tracked.  Reported metrics follow the multi-core cache
literature:

* *weighted speedup* — sum over cores of IPC_shared / IPC_alone, where
  "alone" runs the same trace through a private LLC of the same geometry;
* per-core miss counts and the shared cache's aggregate stats.

Set-dueling in the shared cache sees the union of all cores' traffic, so a
DGIPPR LLC adapts to the *mix* — exactly the open question the paper
raises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cache.cache import SetAssociativeCache
from ..policies.registry import make_policy
from ..trace.record import Trace
from ..trace.synthetic import REGION
from ..workloads.spec import SPEC_BENCHMARKS
from .config import ExperimentConfig, default_config

__all__ = ["CoreResult", "MulticoreResult", "run_multicore"]


class CoreResult:
    """Per-core outcome of a shared-cache run."""

    __slots__ = ("benchmark", "accesses", "misses", "alone_misses",
                 "instructions", "shared_cpi", "alone_cpi")

    def __init__(self, benchmark, accesses, misses, alone_misses,
                 instructions, timing):
        self.benchmark = benchmark
        self.accesses = accesses
        self.misses = misses
        self.alone_misses = alone_misses
        self.instructions = instructions
        self.shared_cpi = timing.cpi(instructions, misses)
        self.alone_cpi = timing.cpi(instructions, alone_misses)

    @property
    def slowdown(self) -> float:
        """CPI degradation from sharing (>= ~1)."""
        return self.shared_cpi / self.alone_cpi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CoreResult({self.benchmark}: shared {self.misses} vs "
            f"alone {self.alone_misses} misses)"
        )


class MulticoreResult:
    """Outcome of one co-scheduled run."""

    def __init__(self, policy_name: str, cores: List[CoreResult]):
        self.policy_name = policy_name
        self.cores = cores

    @property
    def weighted_speedup(self) -> float:
        """Sum of per-core IPC_shared / IPC_alone (max = core count)."""
        return sum(c.alone_cpi / c.shared_cpi for c in self.cores)

    @property
    def total_misses(self) -> float:
        return sum(c.misses for c in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MulticoreResult({self.policy_name}: "
            f"weighted speedup {self.weighted_speedup:.3f} "
            f"over {len(self.cores)} cores)"
        )


def _simpoint_zero(benchmark_name: str, config: ExperimentConfig) -> Trace:
    benchmark = SPEC_BENCHMARKS[benchmark_name]
    return benchmark.traces(
        config.trace_length, config.capacity_blocks, seed=config.seed
    )[0]


def run_multicore(
    policy_name: str,
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    policy_kwargs: Optional[Dict] = None,
    alone_policy: Optional[str] = None,
) -> MulticoreResult:
    """Co-schedule one simpoint of each benchmark on a shared LLC.

    The shared-cache geometry equals the single-core geometry — the usual
    methodology for stressing a shared LLC (capacity pressure scales with
    the core count).  "Alone" baselines run the identical trace through a
    private cache of the same geometry running ``alone_policy`` (default:
    the same policy).  To compare weighted speedups *across* policies, pin
    ``alone_policy="lru"`` so every run is normalized to the same baseline.
    """
    if not benchmarks:
        raise ValueError("need at least one core")
    config = config or default_config()
    kwargs = policy_kwargs or {}
    alone_name = alone_policy or policy_name
    alone_kwargs = kwargs if alone_name == policy_name else {}
    traces = [_simpoint_zero(name, config) for name in benchmarks]
    streams = []
    for core, trace in enumerate(traces):
        # Give each core a disjoint address space (like distinct pages).
        addresses = (trace.addresses + core * 64 * REGION).tolist()
        streams.append((addresses, trace.pc_list()))

    # Alone baselines.
    alone_misses = []
    for (addresses, pcs), name in zip(streams, benchmarks):
        policy = make_policy(
            alone_name, config.num_sets, config.assoc, **alone_kwargs
        )
        cache = SetAssociativeCache(
            config.num_sets, config.assoc, policy, block_size=1
        )
        misses = 0
        for address, pc in zip(addresses, pcs):
            if not cache.access(address, pc=pc):
                misses += 1
        alone_misses.append(misses)

    # Shared run: fine-grained round-robin interleave.
    policy = make_policy(policy_name, config.num_sets, config.assoc, **kwargs)
    shared = SetAssociativeCache(
        config.num_sets, config.assoc, policy, block_size=1
    )
    core_misses = [0] * len(streams)
    cursors = [0] * len(streams)
    live = list(range(len(streams)))
    while live:
        finished = []
        for core in live:
            addresses, pcs = streams[core]
            i = cursors[core]
            if not shared.access(addresses[i], pc=pcs[i]):
                core_misses[core] += 1
            cursors[core] = i + 1
            if cursors[core] >= len(addresses):
                finished.append(core)
        for core in finished:
            live.remove(core)

    cores = [
        CoreResult(
            name,
            len(streams[core][0]),
            core_misses[core],
            alone_misses[core],
            traces[core].instructions,
            config.timing,
        )
        for core, name in enumerate(benchmarks)
    ]
    return MulticoreResult(policy.name, cores)
