"""Aggregate metrics: geometric means, speedups, normalized misses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = [
    "geometric_mean",
    "speedup_map",
    "normalized_map",
    "memory_intensive_subset",
]


_RAISE = object()


def geometric_mean(values: Iterable[float], empty: float = _RAISE) -> float:
    """Geometric mean; raises on non-positive inputs (they are bugs here).

    An empty input raises by default.  Reporting paths that can
    legitimately see an empty set (e.g. the memory-intensive subset on a
    short config, see :func:`memory_intensive_subset`) pass ``empty=`` a
    sentinel value — typically ``float("nan")`` — to get that back instead
    of crashing.
    """
    values = list(values)
    if not values:
        if empty is _RAISE:
            raise ValueError("geometric mean of nothing")
        return empty
    log_sum = 0.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        log_sum += math.log(v)
    return math.exp(log_sum / len(values))


def speedup_map(
    baseline_misses: Dict[str, float],
    policy_misses: Dict[str, float],
    instructions: Dict[str, float],
    timing,
) -> Dict[str, float]:
    """Per-benchmark speedup of a policy over a baseline via the CPI model."""
    out = {}
    for bench, base in baseline_misses.items():
        out[bench] = timing.cycles(
            int(instructions[bench]), base
        ) / timing.cycles(int(instructions[bench]), policy_misses[bench])
    return out


def normalized_map(
    baseline: Dict[str, float], policy: Dict[str, float], floor: float = 1e-9
) -> Dict[str, float]:
    """Per-benchmark policy/baseline ratios (e.g. normalized MPKI).

    Benchmarks where the baseline value is ~0 (no misses beyond compulsory)
    are reported as 1.0 — the paper's plots do the same implicitly, since
    0/0 benchmarks show as parity.
    """
    out = {}
    for bench, base in baseline.items():
        if base <= floor:
            out[bench] = 1.0
        else:
            out[bench] = policy[bench] / base
    return out


def memory_intensive_subset(
    drrip_speedup: Dict[str, float], threshold: float = 1.01
) -> Sequence[str]:
    """The paper's memory-intensive subset: DRRIP speedup over LRU > 1 %."""
    return sorted(b for b, s in drrip_speedup.items() if s > threshold)
