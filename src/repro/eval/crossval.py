"""Workload-neutral (WN1) and workload-inclusive (WI) vector evolution.

Section 4.4: to avoid training bias, WN1 holds each benchmark out of the GA
training set used to produce the vectors it is evaluated with; WI trains on
everything.  The paper finds WI only marginally better (Figure 12) — the
shape this module's experiments reproduce.

Multi-vector evolution (for DGIPPR) is underspecified in the paper ("we
evolve several IPVs off-line").  We use the natural construction: partition
the training benchmarks into as many behaviour groups as vectors (by LRU
miss rate, the axis that separates thrash-prone from cache-friendly
workloads) and evolve one specialist vector per group.  This matches the
paper's observation that the published vector sets duel PLRU-insertion
against PMRU-insertion specialists (Section 5.3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.ipv import IPV, lru_ipv
from ..workloads.spec import SPEC_BENCHMARKS, benchmark_names
from .config import ExperimentConfig, default_config

# NOTE: repro.ga imports repro.eval.config, so importing repro.ga at module
# scope here would close an import cycle; the GA machinery is imported
# lazily inside the functions that need it.

__all__ = [
    "lru_miss_rates",
    "partition_benchmarks",
    "evolve_duel_vectors",
    "evolve_wn1_vectors",
]


def lru_miss_rates(
    benchmarks: Sequence[str], config: ExperimentConfig
) -> Dict[str, float]:
    """Measured-window LRU miss rate per benchmark (weighted by simpoint)."""
    from ..ga.fitness import simulate_misses_lru_ipv

    baseline = tuple(lru_ipv(config.assoc).entries)
    rates: Dict[str, float] = {}
    for name in benchmarks:
        benchmark = SPEC_BENCHMARKS[name]
        traces = benchmark.traces(
            config.trace_length, config.capacity_blocks, seed=config.seed
        )
        rate = 0.0
        for trace, weight in zip(traces, benchmark.weights()):
            addresses = trace.address_list()
            warmup = config.warmup_accesses
            misses = simulate_misses_lru_ipv(
                addresses, config.num_sets, config.assoc, baseline, warmup
            )
            measured = max(1, len(addresses) - warmup)
            rate += weight * misses / measured
        rates[name] = rate
    return rates


def partition_benchmarks(
    benchmarks: Sequence[str],
    num_groups: int,
    config: ExperimentConfig,
) -> List[List[str]]:
    """Split benchmarks into contiguous LRU-miss-rate bands, friendly first."""
    if num_groups < 1:
        raise ValueError("need at least one group")
    rates = lru_miss_rates(benchmarks, config)
    ordered = sorted(benchmarks, key=lambda b: rates[b])
    groups: List[List[str]] = [[] for _ in range(num_groups)]
    for i, name in enumerate(ordered):
        groups[i * num_groups // len(ordered)].append(name)
    return [g for g in groups if g]


def evolve_duel_vectors(
    benchmarks: Sequence[str],
    num_vectors: int,
    config: Optional[ExperimentConfig] = None,
    population_size: int = 24,
    generations: int = 6,
    seed: int = 0,
    workers: int = 0,
    substrate: str = "plru",
) -> List[IPV]:
    """Evolve ``num_vectors`` specialist IPVs over a training set."""
    from ..ga.fitness import FitnessEvaluator
    from ..ga.genetic import evolve_ipv

    config = config or default_config(trace_length=20_000)
    groups = partition_benchmarks(benchmarks, num_vectors, config)
    vectors: List[IPV] = []
    for index, group in enumerate(groups):
        evaluator = FitnessEvaluator(group, config=config, substrate=substrate)
        result = evolve_ipv(
            evaluator,
            population_size=population_size,
            generations=generations,
            seed=seed * 677 + index,
            workers=workers,
        )
        vectors.append(result.best.with_name(f"evolved-g{index}"))
    return vectors


def evolve_wn1_vectors(
    num_vectors: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    population_size: int = 24,
    generations: int = 6,
    seed: int = 0,
    workers: int = 0,
    substrate: str = "plru",
) -> Dict[str, List[IPV]]:
    """WN1 cross-validation: per benchmark, vectors trained without it.

    Returns ``{held_out_benchmark: [vectors trained on the other n-1]}``.
    This is the honest but expensive methodology; scale ``benchmarks`` or
    the GA parameters down for quick runs.
    """
    benchmarks = list(benchmarks or benchmark_names())
    out: Dict[str, List[IPV]] = {}
    for held_out in benchmarks:
        training = [b for b in benchmarks if b != held_out]
        out[held_out] = evolve_duel_vectors(
            training,
            num_vectors,
            config=config,
            population_size=population_size,
            generations=generations,
            seed=seed,
            workers=workers,
            substrate=substrate,
        )
    return out
