"""Text reporting: the paper's figures as aligned console tables.

The benches print per-benchmark rows sorted the way the paper sorts its bar
charts (ascending by the DRRIP statistic) followed by the geometric mean,
so runs can be compared side-by-side with the published figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .experiments import SuiteResult
from .metrics import geometric_mean

__all__ = [
    "format_table",
    "speedup_table",
    "normalized_mpki_table",
    "memory_intensive_summary",
    "format_overhead",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)),
        "  ".join("-" * widths[c] for c in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(row))))
    return "\n".join(lines)


def speedup_table(
    suite: SuiteResult,
    labels: Optional[Sequence[str]] = None,
    sort_by: Optional[str] = None,
) -> str:
    """Per-benchmark speedups over LRU plus the geomean row (Figures 4/13)."""
    labels = list(labels or [l for l in suite.labels if l != suite.baseline_label])
    sort_by = sort_by or ("DRRIP" if "DRRIP" in labels else labels[0])
    order = suite.sorted_benchmarks(sort_by, metric="speedup")
    speedups = {label: suite.speedups(label) for label in labels}
    rows = [[b] + [speedups[l][b] for l in labels] for b in order]
    rows.append(
        ["GEOMEAN"]
        + [
            geometric_mean(speedups[l].values(), empty=float("nan"))
            for l in labels
        ]
    )
    return format_table(["benchmark"] + list(labels), rows)


def normalized_mpki_table(
    suite: SuiteResult,
    labels: Optional[Sequence[str]] = None,
    sort_by: Optional[str] = None,
) -> str:
    """Per-benchmark MPKI normalized to LRU (Figures 10/11)."""
    labels = list(labels or [l for l in suite.labels if l != suite.baseline_label])
    sort_by = sort_by or ("DRRIP" if "DRRIP" in labels else labels[0])
    order = suite.sorted_benchmarks(sort_by, metric="normalized_mpki")
    norm = {label: suite.normalized_mpki(label) for label in labels}
    rows = [[b] + [norm[l][b] for l in labels] for b in order]
    rows.append(
        ["GEOMEAN"]
        + [
            geometric_mean(
                (max(v, 1e-6) for v in norm[l].values()), empty=float("nan")
            )
            for l in labels
        ]
    )
    return format_table(["benchmark"] + list(labels), rows)


def memory_intensive_summary(
    suite: SuiteResult,
    labels: Optional[Sequence[str]] = None,
    drrip_label: str = "DRRIP",
) -> str:
    """Per-policy geomean speedup on the memory-intensive subset.

    The subset (benchmarks where DRRIP beats LRU by > 1 %) can
    legitimately be *empty* on short/scaled-down configs; this renders an
    explanatory note instead of crashing on an empty geometric mean —
    every reporting path should use this rather than recomputing the
    subset by hand.
    """
    labels = list(
        labels or [l for l in suite.labels if l != suite.baseline_label]
    )
    subset = suite.memory_intensive(drrip_label=drrip_label)
    lines = [f"memory-intensive subset ({len(subset)} benchmarks)"]
    if not subset:
        lines.append(
            "  (empty: no benchmark gains >1% under "
            f"{drrip_label} at this config — lengthen traces or raise "
            "REPRO_SCALE)"
        )
        return "\n".join(lines)
    for label in labels:
        value = suite.geomean_speedup(label, benchmarks=subset)
        lines.append(f"  {label:<12} geomean speedup {value:.4f}")
    return "\n".join(lines)


def format_overhead(rows: Sequence[Dict[str, float]]) -> str:
    """Render :func:`repro.eval.overhead.overhead_table` output."""
    table_rows = [
        [
            r["policy"],
            r["bits_per_set"],
            r["bits_per_block"],
            r["global_bits"],
            r["total_kilobytes"],
        ]
        for r in rows
    ]
    return format_table(
        ["policy", "bits/set", "bits/block", "global bits", "total KB"],
        table_rows,
        float_format="{:.2f}",
    )
