"""Trace-driven simulation runner.

Mirrors the paper's methodology (Section 4.3): warm the cache on a prefix of
the trace, measure misses on the remainder, and estimate CPI from the miss
count with a linear model.  Results are aggregated across a benchmark's
simpoints by SimPoint weight (Section 4.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cache.cache import SetAssociativeCache
from ..policies.base import ReplacementPolicy
from ..policies.registry import make_policy
from ..trace.record import Trace, annotate_next_use
from ..workloads.spec import SpecBenchmark
from .config import ExperimentConfig

__all__ = ["RunResult", "BenchmarkResult", "run_trace", "run_benchmark"]


class RunResult:
    """Measured-window statistics for one trace under one policy."""

    __slots__ = (
        "trace_name",
        "policy_name",
        "accesses",
        "misses",
        "instructions",
        "mpki",
        "miss_positions",
    )

    def __init__(
        self,
        trace_name: str,
        policy_name: str,
        accesses: int,
        misses: int,
        instructions: int,
        miss_positions: Optional[List[int]] = None,
    ):
        self.trace_name = trace_name
        self.policy_name = policy_name
        self.accesses = accesses
        self.misses = misses
        self.instructions = instructions
        self.mpki = 1000.0 * misses / instructions if instructions else 0.0
        self.miss_positions = miss_positions

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunResult({self.trace_name} @ {self.policy_name}: "
            f"misses={self.misses}/{self.accesses}, mpki={self.mpki:.2f})"
        )


class BenchmarkResult:
    """Simpoint-weighted aggregate for one benchmark under one policy."""

    __slots__ = ("benchmark", "policy_name", "runs", "weights", "misses", "mpki", "instructions")

    def __init__(
        self,
        benchmark: str,
        policy_name: str,
        runs: Sequence[RunResult],
        weights: Sequence[float],
    ):
        if len(runs) != len(weights):
            raise ValueError("one weight per simpoint run required")
        self.benchmark = benchmark
        self.policy_name = policy_name
        self.runs = list(runs)
        self.weights = list(weights)
        # The weights are the fractions of total executed instructions each
        # simpoint represents, so misses and instructions are weighted sums.
        # MPKI is then defined as *weighted misses over weighted
        # instructions* — a single consistent ratio.  (Averaging per-run
        # MPKIs by weight is NOT equivalent when simpoints have different
        # instruction counts: it double-weights short simpoints and breaks
        # the ``1000 * misses / instructions == mpki`` invariant.)
        self.misses = sum(r.misses * w for r, w in zip(runs, weights))
        self.instructions = sum(
            r.instructions * w for r, w in zip(runs, weights)
        )
        self.mpki = (
            1000.0 * self.misses / self.instructions if self.instructions else 0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BenchmarkResult({self.benchmark} @ {self.policy_name}: "
            f"mpki={self.mpki:.2f})"
        )


def run_trace(
    policy: ReplacementPolicy,
    trace: Trace,
    config: ExperimentConfig,
    collect_miss_positions: bool = False,
    tracer=None,
    stats_sink: Optional[Dict] = None,
) -> RunResult:
    """Run one trace through a fresh cache built around ``policy``.

    The first ``config.warmup_fraction`` of accesses warm the cache
    (statistics are discarded), the rest are measured — the 500M-warm /
    1B-measure split of the paper, proportionally.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) is attached *after*
    warmup, so the event stream covers exactly the measured window: a
    full, unsampled trace replays to the same hit/miss/eviction counts as
    the returned :class:`RunResult` (see
    :func:`repro.obs.tracer.replay_counts`).

    ``stats_sink``, when given a dict, receives the full
    :meth:`~repro.cache.stats.CacheStats.snapshot` of the measured window
    (hits, evictions, writebacks, ... — more than :class:`RunResult`
    carries), which is what the trace-replay verification compares against.
    """
    cache = SetAssociativeCache(
        config.num_sets, config.assoc, policy, block_size=1, name=trace.name
    )
    addresses = trace.address_list()
    pcs = trace.pc_list()
    warmup = int(len(addresses) * config.warmup_fraction)
    access = cache.access
    needs_future = getattr(policy, "requires_future", False)
    next_use = annotate_next_use(trace) if needs_future else None

    if needs_future:
        for i in range(warmup):
            access(addresses[i], pcs[i], next_use=next_use[i])
    else:
        for i in range(warmup):
            access(addresses[i], pcs[i])
    cache.reset_stats()
    if tracer is not None:
        cache.attach_tracer(tracer)

    # Real instruction positions when the trace is annotated (see
    # repro.trace.assign_instruction_positions); uniform spacing otherwise.
    positions = trace.position_list()
    if positions is not None and warmup < len(addresses):
        # The measured window starts at the instruction position of the
        # first measured access and runs to the end of the trace.  Using
        # the uniform estimate here would make the MPKI denominator
        # disagree with the ``miss_positions`` timeline whenever the
        # annotation is non-uniform (bursty traces).
        measured_instructions = max(1, trace.instructions - positions[warmup])
    else:
        measured_instructions = max(
            1, int(trace.instructions * (1.0 - config.warmup_fraction))
        )
    instructions_per_access = trace.instructions / max(1, len(addresses))
    miss_positions: Optional[List[int]] = [] if collect_miss_positions else None

    def position_of(i: int) -> int:
        if positions is not None:
            return positions[i]
        return int(i * instructions_per_access)

    if needs_future:
        for i in range(warmup, len(addresses)):
            hit = access(addresses[i], pcs[i], next_use=next_use[i])
            if not hit and miss_positions is not None:
                miss_positions.append(position_of(i))
    elif miss_positions is not None:
        for i in range(warmup, len(addresses)):
            if not access(addresses[i], pcs[i]):
                miss_positions.append(position_of(i))
    else:
        for i in range(warmup, len(addresses)):
            access(addresses[i], pcs[i])

    stats = cache.stats
    if stats_sink is not None:
        stats.instructions = measured_instructions
        stats_sink.update(stats.snapshot())
    return RunResult(
        trace.name,
        policy.name,
        accesses=stats.accesses,
        misses=stats.misses,
        instructions=measured_instructions,
        miss_positions=miss_positions,
    )


def run_benchmark(
    policy_name: str,
    benchmark: SpecBenchmark,
    config: ExperimentConfig,
    policy_kwargs: Optional[Dict] = None,
    traces: Optional[Sequence[Trace]] = None,
    collect_miss_positions: bool = False,
) -> BenchmarkResult:
    """Run every simpoint of a benchmark; aggregate by SimPoint weight.

    A fresh policy instance is built per simpoint (simpoints are independent
    program phases simulated separately, as in the paper).
    """
    if traces is None:
        traces = benchmark.traces(
            config.trace_length, config.capacity_blocks, seed=config.seed
        )
    runs = []
    for trace in traces:
        policy = make_policy(
            policy_name, config.num_sets, config.assoc, **(policy_kwargs or {})
        )
        runs.append(
            run_trace(policy, trace, config, collect_miss_positions)
        )
    return BenchmarkResult(
        benchmark.name, policy_name, runs, benchmark.weights()
    )
