"""Replacement-state overhead accounting (Section 3.6).

Reproduces the paper's storage comparison: for a 4 MB 16-way LLC,
GIPPR/DGIPPR spend 15 bits per set (~7 KB), LRU 64 bits per set (32 KB),
DRRIP 32 bits per set (16 KB) and PDP 64 bits per set (32 KB) plus a
microcontroller.  DGIPPR additionally spends 11 or 33 bits of PSEL counters
for the whole cache.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..policies.registry import make_policy

__all__ = ["overhead_row", "overhead_table", "PAPER_LLC_SETS", "PAPER_LLC_ASSOC"]

PAPER_LLC_SETS = 4096
PAPER_LLC_ASSOC = 16


def overhead_row(
    policy_name: str,
    num_sets: int = PAPER_LLC_SETS,
    assoc: int = PAPER_LLC_ASSOC,
    **policy_kwargs,
) -> Dict[str, float]:
    """Storage overhead of one policy at a given geometry."""
    policy = make_policy(policy_name, num_sets, assoc, **policy_kwargs)
    per_set = policy.state_bits_per_set()
    global_bits = policy.global_state_bits()
    if math.isnan(per_set):
        total_kb = float("nan")
        per_block = float("nan")
    else:
        total_kb = (per_set * num_sets + global_bits) / 8.0 / 1024.0
        per_block = per_set / assoc
    return {
        "policy": policy.name,
        "bits_per_set": per_set,
        "bits_per_block": per_block,
        "global_bits": global_bits,
        "total_kilobytes": total_kb,
    }


def overhead_table(
    policy_names: Optional[Sequence[str]] = None,
    num_sets: int = PAPER_LLC_SETS,
    assoc: int = PAPER_LLC_ASSOC,
) -> List[Dict[str, float]]:
    """The Section 3.6 comparison table, smallest overhead first."""
    if policy_names is None:
        policy_names = ["gippr", "dgippr", "drrip", "pdp", "ship", "lru", "dip"]
    rows = [overhead_row(name, num_sets, assoc) for name in policy_names]
    rows.sort(key=lambda r: (math.isnan(r["total_kilobytes"]), r["total_kilobytes"]))
    return rows
