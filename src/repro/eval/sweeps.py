"""Parameter sweeps: miss-ratio curves and geometry studies.

Miss-ratio curves (miss rate as a function of cache size) are the standard
lens for the behaviour the paper's policies exploit: a thrash loop has a
cliff at its working-set size — LRU sits above the cliff until capacity
covers the whole loop, while insertion-adaptive policies cut through it.
``miss_ratio_curve`` sweeps the set count at fixed associativity (the axis
the paper's IPVs require to stay 16).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cache.cache import SetAssociativeCache
from ..policies.registry import make_policy
from ..trace.record import Trace, annotate_next_use

__all__ = ["miss_ratio_curve", "crossover_size"]


def miss_ratio_curve(
    policy_name: str,
    trace: Trace,
    set_counts: Sequence[int] = (16, 32, 64, 128, 256),
    assoc: int = 16,
    warmup_fraction: float = 0.25,
    policy_kwargs: Optional[dict] = None,
) -> Dict[int, float]:
    """Measured-window miss rate at each cache size (sets x assoc blocks)."""
    addresses = trace.address_list()
    pcs = trace.pc_list()
    warmup = int(len(addresses) * warmup_fraction)
    curve: Dict[int, float] = {}
    for num_sets in set_counts:
        policy = make_policy(
            policy_name, num_sets, assoc, **(policy_kwargs or {})
        )
        cache = SetAssociativeCache(
            num_sets, assoc, policy, block_size=1, name=trace.name
        )
        needs_future = getattr(policy, "requires_future", False)
        next_use = annotate_next_use(trace) if needs_future else None
        for i in range(warmup):
            cache.access(
                addresses[i], pc=pcs[i],
                next_use=next_use[i] if next_use is not None else None,
            )
        cache.reset_stats()
        for i in range(warmup, len(addresses)):
            cache.access(
                addresses[i], pc=pcs[i],
                next_use=next_use[i] if next_use is not None else None,
            )
        curve[num_sets * assoc] = cache.stats.miss_rate
    return curve


def crossover_size(
    curve_a: Dict[int, float],
    curve_b: Dict[int, float],
    tolerance: float = 1e-3,
) -> Optional[int]:
    """Smallest cache size where policy B stops beating policy A.

    Returns None when no crossover exists in the sampled range (one curve
    dominates throughout).  Useful for locating the capacity at which an
    insertion-adaptive policy's advantage over LRU disappears (once the
    working set fits, everybody hits).
    """
    sizes = sorted(set(curve_a) & set(curve_b))
    if not sizes:
        raise ValueError("curves share no sizes")
    previous_winner = None
    for size in sizes:
        diff = curve_a[size] - curve_b[size]
        if abs(diff) <= tolerance:
            winner = 0
        else:
            winner = 1 if diff > 0 else -1
        if previous_winner not in (None, 0) and winner not in (0, previous_winner):
            return size
        if winner != 0:
            previous_winner = winner
    return None
