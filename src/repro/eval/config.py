"""Experiment configuration.

The paper's LLC is 4 MB, 16-way, 64 B blocks (4096 sets).  Pure-Python trace
simulation at that size needs billions of accesses to exercise capacity, so
the default experiment geometry scales the *number of sets* down while
keeping the associativity at 16 (the parameter IPVs depend on) and scaling
workload working sets in proportion — the set-sampling argument in
DESIGN.md.  ``paper_scale_config`` returns the full-size geometry for anyone
with the patience.

``REPRO_SCALE`` (environment) multiplies trace lengths, so benches can be
made quicker or more statistically solid without code edits.
"""

from __future__ import annotations

import os
from typing import Optional

from ..timing import LinearCPIModel

__all__ = ["ExperimentConfig", "default_config", "paper_scale_config", "env_scale"]


def env_scale() -> float:
    """Trace-length multiplier from the ``REPRO_SCALE`` environment variable."""
    try:
        return max(0.01, float(os.environ.get("REPRO_SCALE", "1")))
    except ValueError:
        return 1.0


class ExperimentConfig:
    """Geometry, trace sizing and timing model for one experiment."""

    def __init__(
        self,
        num_sets: int = 64,
        assoc: int = 16,
        trace_length: int = 120_000,
        warmup_fraction: float = 0.25,
        seed: int = 0,
        timing: Optional[LinearCPIModel] = None,
        apply_env_scale: bool = True,
    ):
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.num_sets = num_sets
        self.assoc = assoc
        scale = env_scale() if apply_env_scale else 1.0
        self.trace_length = max(1000, int(trace_length * scale))
        self.warmup_fraction = warmup_fraction
        self.seed = seed
        self.timing = timing or LinearCPIModel()

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.assoc

    @property
    def warmup_accesses(self) -> int:
        return int(self.trace_length * self.warmup_fraction)

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields overridden."""
        params = dict(
            num_sets=self.num_sets,
            assoc=self.assoc,
            trace_length=self.trace_length,
            warmup_fraction=self.warmup_fraction,
            seed=self.seed,
            timing=self.timing,
            apply_env_scale=False,
        )
        params.update(overrides)
        return ExperimentConfig(**params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExperimentConfig(sets={self.num_sets}, assoc={self.assoc}, "
            f"trace_length={self.trace_length})"
        )


def default_config(**overrides) -> ExperimentConfig:
    """The standard scaled-down experiment geometry (64 sets x 16 ways)."""
    config = ExperimentConfig()
    return config.scaled(**overrides) if overrides else config


def paper_scale_config(**overrides) -> ExperimentConfig:
    """The paper's full 4 MB / 16-way geometry (slow in pure Python)."""
    config = ExperimentConfig(num_sets=4096, trace_length=20_000_000)
    return config.scaled(**overrides) if overrides else config
