"""IPC estimation: cache simulation + the pipeline interval model.

Bridges the cache simulator and :class:`repro.timing.PipelineModel` the way
CMP$im couples its cache hierarchy to its core model: run the trace, record
the per-access hit/miss outcome stream, and feed it to the interval model.
This is the "performance simulation" counterpart to the miss-count-only
linear model the GA uses.
"""

from __future__ import annotations

from typing import Optional

from ..cache.cache import SetAssociativeCache
from ..policies.registry import make_policy
from ..timing.pipeline import PipelineModel, PipelineResult
from ..trace.record import Trace, annotate_next_use
from .config import ExperimentConfig, default_config

__all__ = ["estimate_ipc", "ipc_speedup"]


def estimate_ipc(
    policy_name: str,
    trace: Trace,
    config: Optional[ExperimentConfig] = None,
    model: Optional[PipelineModel] = None,
    policy_kwargs: Optional[dict] = None,
) -> PipelineResult:
    """Simulate a trace and estimate IPC with the pipeline model.

    Warmup accesses are executed against the cache but excluded from the
    outcome stream the core model sees, matching the runner's measured
    window.
    """
    config = config or default_config()
    model = model or PipelineModel()
    policy = make_policy(
        policy_name, config.num_sets, config.assoc, **(policy_kwargs or {})
    )
    cache = SetAssociativeCache(
        config.num_sets, config.assoc, policy, block_size=1, name=trace.name
    )
    addresses = trace.address_list()
    pcs = trace.pc_list()
    warmup = int(len(addresses) * config.warmup_fraction)
    needs_future = getattr(policy, "requires_future", False)
    next_use = annotate_next_use(trace) if needs_future else None

    outcomes = []
    for i in range(len(addresses)):
        hit = cache.access(
            addresses[i],
            pc=pcs[i],
            next_use=next_use[i] if next_use is not None else None,
        )
        if i >= warmup:
            outcomes.append(hit)

    measured_instructions = max(
        len(outcomes),
        int(trace.instructions * (1.0 - config.warmup_fraction)),
    )
    return model.simulate(measured_instructions, len(outcomes), outcomes)


def ipc_speedup(
    policy_name: str,
    baseline_name: str,
    trace: Trace,
    config: Optional[ExperimentConfig] = None,
    model: Optional[PipelineModel] = None,
    policy_kwargs: Optional[dict] = None,
) -> float:
    """IPC ratio of a policy over a baseline on one trace (>1 = faster)."""
    policy_result = estimate_ipc(policy_name, trace, config, model, policy_kwargs)
    baseline_result = estimate_ipc(baseline_name, trace, config, model)
    return policy_result.ipc / baseline_result.ipc
