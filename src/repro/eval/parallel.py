"""Parallel, cached experiment runner.

The full paper reproduction sweeps 29 benchmarks x ~10 policies x multiple
simpoints through a pure-Python trace simulator; re-simulating everything
serially for every figure build is the single biggest wall-clock cost in
the repo.  This module provides:

* :func:`run_matrix` / :class:`ParallelRunner` — fan ``(benchmark, policy,
  simpoint)`` jobs out over a spawn-safe :mod:`multiprocessing` pool.
  Workers never receive pickled megabyte trace objects; they regenerate
  each simpoint's trace deterministically from ``(benchmark name, simpoint
  index, config.seed)`` using the exact derivation of
  :meth:`repro.workloads.spec.SpecBenchmark.trace`, so a parallel run is
  bit-identical to the serial :func:`repro.eval.runner.run_benchmark` path.
* An on-disk result cache (``~/.cache/repro-eval`` by default, overridable
  with ``--cache-dir`` / ``REPRO_CACHE_DIR``) keyed by a stable hash of the
  full :class:`ExperimentConfig`, the policy name and kwargs, the trace
  seed derivation, and a hash of the simulator source (*code version*), so
  repeated figure builds hit the cache instead of resimulating and any
  code or config change invalidates cleanly.
* A progress/metrics layer (:class:`RunnerMetrics`): jobs done, cache hit
  rate, simulations per second and per-job wall time, surfaced on stderr
  and exportable as JSON.

Determinism guarantees
----------------------
``run_matrix(..., workers=N)`` returns bit-identical
:class:`BenchmarkResult` objects for every ``N`` (including the serial
``workers<=1`` path) because each job is a pure function of its key:
traces are regenerated from the config seed, a fresh policy instance is
built per simpoint, and aggregation happens in the parent in a fixed
order.  Cached results store the raw integer statistics, from which the
derived floats are recomputed by the :class:`RunResult` constructor, so a
cache hit is also bit-identical to a fresh simulation.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import statistics
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder, current_recorder, install_recorder, span
from ..policies.registry import make_policy
from ..workloads.spec import SPEC_BENCHMARKS, SpecBenchmark, benchmark_names
from .config import ExperimentConfig, default_config
from .runner import BenchmarkResult, RunResult, run_trace

logger = logging.getLogger(__name__)

__all__ = [
    "CACHE_SCHEMA",
    "MatrixResult",
    "ParallelRunner",
    "ResultCache",
    "RunnerMetrics",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "resolve_cache_dir",
    "run_matrix",
]

#: Bump when the cached payload layout changes (invalidates old entries).
CACHE_SCHEMA = 1


# ----------------------------------------------------------------------
# Stable cache keys.
# ----------------------------------------------------------------------
def _canonical(value):
    """A JSON-serializable canonical form of ``value`` for hashing.

    Dicts are key-sorted, tuples become lists, numpy scalars collapse to
    Python numbers, and arbitrary objects are expanded into their class
    name plus their (sorted) ``__dict__``/``__slots__`` fields — which
    covers :class:`ExperimentConfig`, :class:`LinearCPIModel` and
    :class:`repro.core.ipv.IPV` without special cases.  Any field change
    therefore changes the hash.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    # Numpy scalars (seeds, lengths) without importing numpy eagerly.
    if hasattr(value, "item") and callable(value.item):
        try:
            return _canonical(value.item())
        except (TypeError, ValueError):
            pass
    if callable(value) and hasattr(value, "__qualname__"):
        return {"__callable__": f"{value.__module__}.{value.__qualname__}"}
    fields = {}
    if hasattr(value, "__dict__"):
        fields = dict(vars(value))
    else:
        for slot in getattr(type(value), "__slots__", ()) or ():
            if hasattr(value, slot):
                fields[slot] = getattr(value, slot)
    return {
        "__class__": type(value).__name__,
        "fields": {k: _canonical(v) for k, v in sorted(fields.items())},
    }


#: Source trees whose content determines simulation results.  ``eval`` is
#: represented only by the runner/config modules on purpose: reporting or
#: orchestration changes must not invalidate simulated results.  The
#: kernel tables and columnar engine ARE result-determining — policies
#: dispatch their transitions through them — so a bug fix there must
#: invalidate cached matrices like any policy change would.
_CODE_VERSION_PARTS = (
    "cache",
    "core",
    "engine",
    "kernels",
    "policies",
    "trace",
    "workloads",
    "eval/runner.py",
    "eval/config.py",
)

_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Hash of the simulator source files that determine results.

    Any edit to the cache model, policies, trace generators, workloads or
    the runner/config modules changes this hash and therefore invalidates
    every cached result.  Memoized per process.
    """
    global _code_version_memo
    if _code_version_memo is not None:
        return _code_version_memo
    root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for part in _CODE_VERSION_PARTS:
        path = root / part
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            try:
                blob = file.read_bytes()
            except OSError:  # pragma: no cover - racing file removal
                continue
            digest.update(str(file.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(blob)
            digest.update(b"\0")
    _code_version_memo = digest.hexdigest()[:16]
    return _code_version_memo


def cache_key(
    config: ExperimentConfig,
    policy_name: str,
    policy_kwargs: Optional[dict],
    benchmark: str,
    simpoint: int,
    collect_miss_positions: bool = False,
) -> str:
    """Stable hex key for one ``(benchmark, policy, simpoint)`` job.

    Identical inputs produce identical keys in any process on any machine
    (the payload is canonical JSON, not :func:`hash`); changing any
    :class:`ExperimentConfig` field, the policy name, any policy kwarg,
    the seed, or the simulator source changes the key.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_version(),
        "config": _canonical(config),
        "benchmark": benchmark,
        "simpoint": int(simpoint),
        "policy": policy_name,
        "policy_kwargs": _canonical(dict(policy_kwargs or {})),
        "miss_positions": bool(collect_miss_positions),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache.
# ----------------------------------------------------------------------
def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-eval``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-eval").expanduser()


def resolve_cache_dir(cache: Union[None, bool, str, Path]) -> Optional[Path]:
    """Normalize a user-facing cache setting to a directory (or None).

    ``None``/``False`` disable caching, ``True`` selects the default
    directory, and a string/path selects an explicit directory.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache_dir()
    return Path(cache).expanduser()


class ResultCache:
    """Content-addressed store of :class:`RunResult` payloads.

    One JSON file per key under ``root/<key[:2]>/<key>.json``; writes are
    atomic (temp file + ``os.replace``) so concurrent runs sharing a cache
    directory never observe torn entries.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        return _result_from_dict(payload["result"])

    def put(
        self, key: str, result: RunResult, manifest: Optional[dict] = None
    ) -> None:
        """Store a result (atomically) plus an optional provenance sidecar.

        ``manifest`` (see :func:`repro.obs.provenance.build_manifest`) is
        written next to the entry as ``<key>.manifest.json`` so every
        cached number can be traced to the code, config and host that
        produced it.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA, "key": key, "result": _result_to_dict(result)}
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - cache dir unwritable
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        if manifest is not None:
            from ..obs.provenance import write_manifest

            write_manifest(path, manifest)

    def manifest_for(self, key: str) -> Optional[dict]:
        """Load the provenance sidecar of a cached entry, if present."""
        path = self._path(key)
        manifest_path = path.with_name(f"{path.stem}.manifest.json")
        try:
            with open(manifest_path, "r") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1 for p in self.root.glob("??/*.json")
            if not p.name.endswith(".manifest.json")
        )

    def clear(self) -> int:
        """Remove every cached entry (and manifest); returns entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            is_manifest = path.name.endswith(".manifest.json")
            try:
                path.unlink()
                if not is_manifest:
                    removed += 1
            except OSError:  # pragma: no cover
                pass
        return removed


def _result_to_dict(result: RunResult) -> dict:
    return {
        "trace_name": result.trace_name,
        "policy_name": result.policy_name,
        "accesses": result.accesses,
        "misses": result.misses,
        "instructions": result.instructions,
        "miss_positions": result.miss_positions,
    }


def _result_from_dict(payload: dict) -> RunResult:
    return RunResult(
        payload["trace_name"],
        payload["policy_name"],
        accesses=payload["accesses"],
        misses=payload["misses"],
        instructions=payload["instructions"],
        miss_positions=payload["miss_positions"],
    )


# ----------------------------------------------------------------------
# Metrics and progress.
# ----------------------------------------------------------------------
#: Bucket bounds (seconds) for the per-job wall-time histogram.
_JOB_SECONDS_BOUNDS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0
)


class RunnerMetrics:
    """Counters for one or more matrix runs (cumulative on a runner).

    Built on the shared :class:`repro.obs.metrics.MetricsRegistry`: every
    quantity lives in a named counter/gauge/histogram, so runner metrics
    export as Prometheus text or JSON through the same pipe as trace
    metrics.  The attribute API (``jobs_done``, ``cache_hit_rate``,
    ``as_dict()``, ``summary()``) is unchanged from the pre-registry
    implementation.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._jobs_total = reg.counter(
            "repro_eval_jobs_total", "Jobs submitted to the experiment runner"
        )
        self._jobs_done = reg.counter(
            "repro_eval_jobs_done_total", "Jobs completed (cached or simulated)"
        )
        self._cache_hits = reg.counter(
            "repro_eval_cache_hits_total", "Jobs satisfied by the result cache"
        )
        self._simulated = reg.counter(
            "repro_eval_simulated_total", "Jobs that ran a fresh simulation"
        )
        self._wall = reg.gauge(
            "repro_eval_wall_seconds", "Cumulative matrix wall time"
        )
        self._job_hist = reg.histogram(
            "repro_eval_job_seconds", bounds=_JOB_SECONDS_BOUNDS,
            help="Per-job simulation wall time",
        )
        self.job_seconds: List[float] = []

    # ------------------------------------------------------------------
    # Mutation API (used by ParallelRunner).
    # ------------------------------------------------------------------
    def add_jobs(self, count: int) -> None:
        self._jobs_total.inc(count)

    def record_cache_hit(self) -> None:
        self._jobs_done.inc()
        self._cache_hits.inc()

    def record_simulated(self, seconds: float) -> None:
        self._jobs_done.inc()
        self._simulated.inc()
        self._job_hist.observe(seconds)
        self.job_seconds.append(seconds)

    # ------------------------------------------------------------------
    # Read API (stable across the registry refactor).
    # ------------------------------------------------------------------
    @property
    def jobs_total(self) -> int:
        return self._jobs_total.value

    @property
    def jobs_done(self) -> int:
        return self._jobs_done.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def simulated(self) -> int:
        return self._simulated.value

    @property
    def wall_time(self) -> float:
        return self._wall.value

    @wall_time.setter
    def wall_time(self, seconds: float) -> None:
        self._wall.set(seconds)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.jobs_done if self.jobs_done else 0.0

    @property
    def sims_per_sec(self) -> float:
        return self.simulated / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds until the run completes (``None`` = unknown).

        Remaining jobs over the measured simulation rate.  Cache probing
        is effectively free, so once simulation starts the estimate
        converges quickly; before the first completed simulation there is
        no rate and therefore no estimate.
        """
        remaining = self.jobs_total - self.jobs_done
        if remaining <= 0:
            return 0.0
        rate = self.sims_per_sec
        if rate <= 0:
            return None
        return remaining / rate

    @property
    def median_job_seconds(self) -> float:
        """Median per-job wall time this runner has observed (0 if none)."""
        return statistics.median(self.job_seconds) if self.job_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-exportable snapshot (per-job wall times included)."""
        return {
            "jobs_total": self.jobs_total,
            "jobs_done": self.jobs_done,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "cache_hit_rate": self.cache_hit_rate,
            "sims_per_sec": self.sims_per_sec,
            "wall_time_sec": self.wall_time,
            "job_seconds": list(self.job_seconds),
        }

    def to_prometheus(self) -> str:
        """Prometheus text export of the backing registry."""
        return self.registry.to_prometheus()

    def summary(self) -> str:
        return (
            f"{self.jobs_done}/{self.jobs_total} jobs, "
            f"{self.cache_hits} cached ({self.cache_hit_rate:.0%}), "
            f"{self.simulated} simulated, "
            f"{self.sims_per_sec:.1f} sims/s, "
            f"{self.wall_time:.1f}s wall"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunnerMetrics({self.summary()})"


class _Progress:
    """Throttled single-line progress display on a TTY.

    This is interactive display (carriage-return rewriting), not logging;
    diagnostics go through the module logger instead.
    """

    def __init__(self, enabled: bool, stream=None, min_interval: float = 0.2):
        self.enabled = enabled
        self.stream = stream or sys.stderr
        self.min_interval = min_interval
        self._last = 0.0

    def update(self, metrics: RunnerMetrics, final: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not final and now - self._last < self.min_interval:
            return
        self._last = now
        end = "\n" if final else "\r"
        eta = ""
        if not final:
            remaining = metrics.eta_seconds
            if remaining is not None and metrics.jobs_done < metrics.jobs_total:
                eta = f", eta {_fmt_eta(remaining)}"
        self.stream.write(f"[repro-eval] {metrics.summary()}{eta}{end}")
        self.stream.flush()


def _fmt_eta(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


# ----------------------------------------------------------------------
# Job execution (shared by the serial path and the worker processes).
# ----------------------------------------------------------------------
def _config_fields(config: ExperimentConfig) -> dict:
    """The picklable primitives a worker needs to rebuild the config.

    The timing model is deliberately omitted: it never influences
    simulation (only post-hoc CPI estimates in the parent).
    """
    return {
        "num_sets": config.num_sets,
        "assoc": config.assoc,
        "trace_length": config.trace_length,
        "warmup_fraction": config.warmup_fraction,
        "seed": config.seed,
    }


#: Worker-local trace memo so consecutive jobs for the same simpoint (one
#: per policy) do not regenerate the trace.  Bounded to keep memory flat.
_TRACE_MEMO: Dict[tuple, object] = {}
_TRACE_MEMO_LIMIT = 32

#: Traces regenerated in this process (worker-side count shipped to the
#: parent through the telemetry spool — it used to die with the worker).
_TRACE_REGENS = 0


def _simpoint_trace(bench_name: str, simpoint: int, config: ExperimentConfig):
    global _TRACE_REGENS
    key = (
        bench_name,
        simpoint,
        config.trace_length,
        config.capacity_blocks,
        config.seed,
    )
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        benchmark = SPEC_BENCHMARKS[bench_name]
        with span("job.trace_regen", benchmark=bench_name, simpoint=simpoint):
            trace = benchmark.trace(
                simpoint, config.trace_length, config.capacity_blocks,
                seed=config.seed,
            )
        _TRACE_REGENS += 1
        while len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


#: Per-process worker telemetry: (SpoolWriter, MetricsRegistry, SpanRecorder,
#: jobs done).  Created lazily on the first spooled job a worker runs and
#: reused for its lifetime; the snapshot file it publishes is cumulative,
#: so the parent merges exactly once per worker.
_WORKER_TELEMETRY: Optional[list] = None


def _worker_telemetry(spool_dir: str):
    global _WORKER_TELEMETRY
    if (
        _WORKER_TELEMETRY is not None
        and str(_WORKER_TELEMETRY[0].root) == str(spool_dir)
    ):
        return _WORKER_TELEMETRY
    from ..obs.shipping import SpoolWriter

    recorder = SpanRecorder(process_label=f"matrix-worker-{os.getpid()}")
    install_recorder(recorder)
    _WORKER_TELEMETRY = [SpoolWriter(spool_dir), MetricsRegistry(), recorder, 0]
    return _WORKER_TELEMETRY


def _execute_job(payload: tuple) -> Tuple[int, dict, float]:
    """Run one ``(benchmark, policy, simpoint)`` job; top-level for spawn.

    Returns ``(job index, RunResult payload, wall seconds)``.  Traces are
    regenerated from the config seed — never unpickled — so results match
    the serial path bit for bit.  When the parent provided a telemetry
    spool directory, the worker heartbeats at job start and publishes its
    cumulative metrics/span snapshot after every job (atomic replace, so
    a crash mid-run leaves the last complete snapshot for the merge).
    """
    (index, bench_name, simpoint, policy_name, policy_kwargs, fields,
     collect, spool_dir) = payload
    telemetry = _worker_telemetry(spool_dir) if spool_dir else None
    if telemetry is not None:
        telemetry[0].heartbeat(job=index)
    started = time.perf_counter()
    config = ExperimentConfig(apply_env_scale=False, **fields)
    with span("job.simulate", benchmark=bench_name, policy=policy_name,
              simpoint=simpoint):
        trace = _simpoint_trace(bench_name, simpoint, config)
        policy = make_policy(
            policy_name, config.num_sets, config.assoc, **(policy_kwargs or {})
        )
        result = run_trace(policy, trace, config, collect_miss_positions=collect)
    seconds = time.perf_counter() - started
    if telemetry is not None:
        writer, registry, recorder, _ = telemetry
        telemetry[3] += 1
        registry.counter(
            "repro_worker_jobs_total", "Jobs simulated in worker processes"
        ).inc()
        registry.gauge(
            "repro_worker_sim_seconds_total",
            "Simulation wall seconds spent in worker processes",
        ).inc(seconds)
        registry.gauge(
            "repro_worker_trace_regens",
            "Traces regenerated (memo misses) in worker processes",
        ).set(_TRACE_REGENS)
        from ..kernels import publish_kernel_metrics

        publish_kernel_metrics(registry)
        writer.publish(
            registry=registry, recorder=recorder, jobs_done=telemetry[3]
        )
    return index, _result_to_dict(result), seconds


def _job_manifest(job: "_Job", config: ExperimentConfig, seconds: float) -> dict:
    """Provenance sidecar payload for one freshly simulated cache entry."""
    from ..obs.provenance import build_manifest

    return build_manifest(
        config=config,
        policy=job.policy,
        policy_kwargs=job.kwargs,
        wall_time_sec=seconds,
        extra={
            "benchmark": job.bench,
            "simpoint": job.simpoint,
            "label": job.label,
            "cache_key": job.key,
        },
    )


# ----------------------------------------------------------------------
# The runner.
# ----------------------------------------------------------------------
class _Job:
    __slots__ = ("index", "label", "bench", "simpoint", "policy", "kwargs", "key")

    def __init__(self, index, label, bench, simpoint, policy, kwargs, key):
        self.index = index
        self.label = label
        self.bench = bench
        self.simpoint = simpoint
        self.policy = policy
        self.kwargs = kwargs
        self.key = key


class MatrixResult:
    """Output of :func:`run_matrix`: result grid plus run metrics."""

    def __init__(
        self,
        config: ExperimentConfig,
        results: Dict[str, Dict[str, BenchmarkResult]],
        metrics: RunnerMetrics,
    ):
        self.config = config
        self.results = results
        self.metrics = metrics

    def get(self, label: str, benchmark: str) -> BenchmarkResult:
        return self.results[label][benchmark]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MatrixResult(labels={list(self.results)}, {self.metrics.summary()})"


def _normalize_spec(spec) -> Tuple[str, str, dict]:
    """Accept ``PolicySpec``, ``(label, policy[, kwargs])`` or a bare name."""
    if isinstance(spec, str):
        return spec, spec, {}
    label, policy = spec[0], spec[1]
    kwargs = dict(spec[2]) if len(spec) > 2 and spec[2] else {}
    return label, policy, kwargs


class ParallelRunner:
    """Reusable experiment runner: worker pool + result cache + metrics.

    Parameters
    ----------
    workers:
        Worker processes.  ``0``/``1`` run serially in-process (the
        bit-identical reference path); ``N > 1`` fans jobs over a
        spawn-context :class:`ProcessPoolExecutor`.
    cache:
        ``None``/``False`` — no caching; ``True`` — the default directory
        (:func:`default_cache_dir`); a path — that directory.
    progress:
        ``True``/``False`` to force progress lines on stderr; ``None``
        (default) enables them only when stderr is a TTY.
    telemetry:
        Cross-process telemetry spool (only meaningful for parallel runs).
        ``None``/``True`` — enabled, spooled through a private temp
        directory that is merged and removed at the end of each matrix;
        ``False`` — disabled; a path — enabled, spooled under that
        directory (one retained ``run-*`` subdirectory per matrix, exposed
        as :attr:`last_spool_dir` so tests and post-mortems can inspect
        the raw worker snapshots).  After each run the workers' metrics
        are folded into :attr:`metrics` and their spans into the
        currently installed :class:`~repro.obs.spans.SpanRecorder` (if
        any); the scan summary lands in :attr:`last_spool_state`.
    status_path:
        Where to publish the live ``run-status.json``
        (:class:`repro.obs.status.StatusPublisher`).  ``None`` falls back
        to ``$REPRO_STATUS_PATH``; unset means no status file.
    watchdog_factor:
        A worker is flagged as stalled when its heartbeat is older than
        ``watchdog_factor`` x the median job time (floored at 5 s).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[None, bool, str, Path] = None,
        progress: Optional[bool] = None,
        telemetry: Union[None, bool, str, Path] = None,
        status_path: Union[None, str, Path] = None,
        watchdog_factor: float = 10.0,
    ):
        self.workers = int(workers or 0)
        cache_dir = resolve_cache_dir(cache)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if progress is None:
            progress = bool(getattr(sys.stderr, "isatty", lambda: False)())
        self.progress = _Progress(progress)
        self.metrics = RunnerMetrics()
        self.telemetry = telemetry
        self.status_path = status_path
        self.watchdog_factor = watchdog_factor
        #: Spool directory of the most recent parallel run (None if the
        #: run was serial, telemetry was off, or the temp spool was
        #: cleaned up because ``telemetry`` did not name a directory).
        self.last_spool_dir: Optional[Path] = None
        #: :class:`repro.obs.shipping.SpoolState` of the last merge.
        self.last_spool_state = None
        self._spool_seq = 0

    # ------------------------------------------------------------------
    def _status_publisher(self):
        """A StatusPublisher for this run, or None when status is off."""
        from ..obs.status import StatusPublisher, default_status_path

        path = self.status_path
        if path is None:
            path = default_status_path()
        if not path:
            return None
        return StatusPublisher(path, kind="matrix")

    def _make_spool(self, parallel: bool) -> Tuple[Optional[Path], bool]:
        """(spool directory, parent-owns-and-removes-it) for one run.

        Explicit telemetry directories get a fresh ``run-*`` subdirectory
        per matrix so a reused runner never re-merges a previous run's
        cumulative snapshots.
        """
        if not parallel or self.telemetry is False:
            return None, False
        if self.telemetry is None or self.telemetry is True:
            return Path(tempfile.mkdtemp(prefix="repro-spool-")), True
        self._spool_seq += 1
        base = Path(self.telemetry).expanduser()
        run_dir = base / f"run-{os.getpid()}-{self._spool_seq:03d}"
        run_dir.mkdir(parents=True, exist_ok=True)
        return run_dir, False

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        policies: Sequence,
        config: Optional[ExperimentConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        collect_miss_positions: bool = False,
    ) -> MatrixResult:
        """Run every policy over every benchmark's every simpoint.

        Returns a :class:`MatrixResult` whose ``results[label][bench]``
        are bit-identical to serial :func:`run_benchmark` output for any
        worker count.
        """
        config = config or default_config()
        bench_names = list(benchmarks or benchmark_names())
        specs = [_normalize_spec(spec) for spec in policies]
        labels = [label for label, _, _ in specs]
        if len(set(labels)) != len(labels):
            raise ValueError("policy labels must be unique")
        for name in bench_names:
            if name not in SPEC_BENCHMARKS:
                raise ValueError(f"unknown benchmark {name!r}")

        jobs: List[_Job] = []
        for bench_name in bench_names:
            benchmark = SPEC_BENCHMARKS[bench_name]
            for label, policy, kwargs in specs:
                for simpoint in range(len(benchmark.simpoints)):
                    jobs.append(
                        _Job(
                            len(jobs),
                            label,
                            bench_name,
                            simpoint,
                            policy,
                            kwargs,
                            cache_key(
                                config, policy, kwargs, bench_name, simpoint,
                                collect_miss_positions,
                            ),
                        )
                    )

        run_results = self._execute(jobs, config, collect_miss_positions)

        # Deterministic aggregation, independent of completion order.
        with span("matrix.aggregate", jobs=len(jobs)):
            results: Dict[str, Dict[str, BenchmarkResult]] = {
                l: {} for l in labels
            }
            by_cell: Dict[Tuple[str, str], List[RunResult]] = {}
            for job in jobs:
                by_cell.setdefault((job.label, job.bench), []).append(
                    run_results[job.index]
                )
            for bench_name in bench_names:
                benchmark = SPEC_BENCHMARKS[bench_name]
                for label, policy, _ in specs:
                    results[label][bench_name] = BenchmarkResult(
                        bench_name, policy, by_cell[(label, bench_name)],
                        benchmark.weights(),
                    )
        return MatrixResult(config, results, self.metrics)

    # ------------------------------------------------------------------
    def run_benchmark(
        self,
        policy_name: str,
        benchmark: Union[str, SpecBenchmark],
        config: Optional[ExperimentConfig] = None,
        policy_kwargs: Optional[dict] = None,
        collect_miss_positions: bool = False,
    ) -> BenchmarkResult:
        """Cached drop-in for :func:`repro.eval.runner.run_benchmark`.

        Accepts a registry benchmark (name or object).  Non-registry
        benchmark objects fall back to the serial uncached runner, since
        workers could not regenerate their traces.
        """
        config = config or default_config()
        if isinstance(benchmark, SpecBenchmark):
            registered = SPEC_BENCHMARKS.get(benchmark.name)
            if registered is not benchmark:
                from .runner import run_benchmark as serial_run_benchmark

                return serial_run_benchmark(
                    policy_name, benchmark, config,
                    policy_kwargs=policy_kwargs,
                    collect_miss_positions=collect_miss_positions,
                )
            name = benchmark.name
        else:
            name = benchmark
        matrix = self.run_matrix(
            [(policy_name, policy_name, policy_kwargs or {})],
            config=config,
            benchmarks=[name],
            collect_miss_positions=collect_miss_positions,
        )
        return matrix.get(policy_name, name)

    # ------------------------------------------------------------------
    def _execute(
        self,
        jobs: Sequence[_Job],
        config: ExperimentConfig,
        collect_miss_positions: bool,
    ) -> Dict[int, RunResult]:
        metrics = self.metrics
        metrics.add_jobs(len(jobs))
        base_wall = metrics.wall_time
        started = time.monotonic()
        results: Dict[int, RunResult] = {}

        status = self._status_publisher()
        if status is not None:
            status.update(
                force=True, phase="cache-probe",
                jobs_total=metrics.jobs_total, jobs_done=metrics.jobs_done,
                workers_requested=self.workers,
            )

        pending: List[_Job] = []
        with span("matrix.cache_probe", jobs=len(jobs)):
            for job in jobs:
                cached = (
                    self.cache.get(job.key) if self.cache is not None else None
                )
                if cached is not None:
                    results[job.index] = cached
                    metrics.record_cache_hit()
                    self.progress.update(metrics)
                    if status is not None:
                        status.update(
                            jobs_done=metrics.jobs_done,
                            cache_hit_rate=metrics.cache_hit_rate,
                        )
                else:
                    pending.append(job)
        logger.debug(
            "matrix: %d jobs (%d cached, %d to simulate, workers=%d)",
            len(jobs), len(jobs) - len(pending), len(pending), self.workers,
        )

        parallel = self.workers > 1 and len(pending) > 1
        spool_dir, owned_spool = self._make_spool(parallel)
        fields = _config_fields(config)
        payloads = [
            (j.index, j.bench, j.simpoint, j.policy, j.kwargs, fields,
             collect_miss_positions,
             str(spool_dir) if spool_dir is not None else None)
            for j in pending
        ]
        by_index = {j.index: j for j in pending}

        def _record(index: int, result: RunResult, seconds: float) -> None:
            results[index] = result
            metrics.record_simulated(seconds)
            if self.cache is not None:
                job = by_index[index]
                self.cache.put(
                    job.key, result,
                    manifest=_job_manifest(job, config, seconds),
                )
            metrics.wall_time = base_wall + (time.monotonic() - started)
            self.progress.update(metrics)

        def _publish_status(workers_field=None) -> None:
            if status is None:
                return
            fields_now = dict(
                phase="simulate",
                jobs_total=metrics.jobs_total,
                jobs_done=metrics.jobs_done,
                throughput=metrics.sims_per_sec,
                throughput_unit="sims/s",
                cache_hit_rate=metrics.cache_hit_rate,
                eta_sec=metrics.eta_seconds,
            )
            if workers_field is not None:
                fields_now["workers"] = workers_field
            status.update(**fields_now)

        if parallel:
            import multiprocessing

            from ..obs.shipping import Watchdog, read_spool

            context = multiprocessing.get_context("spawn")
            max_workers = min(self.workers, len(pending))
            watchdog = Watchdog(
                factor=self.watchdog_factor, registry=metrics.registry
            )
            last_scan = 0.0
            with span("matrix.simulate", jobs=len(pending),
                      workers=max_workers):
                with ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=context
                ) as pool:
                    futures = {pool.submit(_execute_job, p) for p in payloads}
                    while futures:
                        done, futures = wait(
                            futures, timeout=0.5,
                            return_when=FIRST_COMPLETED,
                        )
                        for future in done:
                            index, payload, seconds = future.result()
                            _record(index, _result_from_dict(payload), seconds)
                        # Liveness tick: heartbeat scan + watchdog + status,
                        # even when no job completed this round.
                        workers_field = None
                        now = time.monotonic()
                        if spool_dir is not None and now - last_scan >= 1.0:
                            last_scan = now
                            state = read_spool(spool_dir)
                            watchdog.check(
                                state.heartbeats, metrics.median_job_seconds
                            )
                            wall_now = time.time()
                            workers_field = {
                                worker: {
                                    "alive": worker not in watchdog.flagged,
                                    "stalled": worker in watchdog.flagged,
                                    "last_seen_sec": round(
                                        max(0.0, wall_now - ts), 1
                                    ),
                                }
                                for worker, ts in state.heartbeats.items()
                            }
                        metrics.wall_time = (
                            base_wall + (time.monotonic() - started)
                        )
                        _publish_status(workers_field)
        else:
            with span("matrix.simulate", jobs=len(pending), workers=1):
                for payload in payloads:
                    index, result_dict, seconds = _execute_job(payload)
                    _record(index, _result_from_dict(result_dict), seconds)
                    _publish_status()

        if spool_dir is not None:
            from ..obs.shipping import merge_spool

            self.last_spool_state = merge_spool(
                spool_dir, registry=metrics.registry,
                recorder=current_recorder(),
            )
            if owned_spool:
                shutil.rmtree(spool_dir, ignore_errors=True)
                self.last_spool_dir = None
            else:
                self.last_spool_dir = spool_dir

        metrics.wall_time = base_wall + (time.monotonic() - started)
        self.progress.update(metrics, final=True)
        if status is not None:
            status.finalize(
                phase="done",
                jobs_total=metrics.jobs_total,
                jobs_done=metrics.jobs_done,
                throughput=metrics.sims_per_sec,
                throughput_unit="sims/s",
                cache_hit_rate=metrics.cache_hit_rate,
                eta_sec=0.0,
            )
        logger.info("matrix done: %s", metrics.summary())
        return results


def run_matrix(
    policies: Sequence,
    config: Optional[ExperimentConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    cache: Union[None, bool, str, Path] = None,
    progress: Optional[bool] = None,
    collect_miss_positions: bool = False,
    telemetry: Union[None, bool, str, Path] = None,
    status_path: Union[None, str, Path] = None,
) -> MatrixResult:
    """One-shot convenience wrapper around :class:`ParallelRunner`.

    ``policies`` accepts :class:`repro.eval.experiments.PolicySpec`
    instances, ``(label, policy_name[, kwargs])`` tuples, or bare policy
    names.  See :class:`ParallelRunner` for ``workers`` / ``cache`` /
    ``progress`` / ``telemetry`` / ``status_path`` semantics.
    """
    runner = ParallelRunner(
        workers=workers, cache=cache, progress=progress,
        telemetry=telemetry, status_path=status_path,
    )
    return runner.run_matrix(
        policies,
        config=config,
        benchmarks=benchmarks,
        collect_miss_positions=collect_miss_positions,
    )
