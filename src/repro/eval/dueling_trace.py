"""Instrumentation for set-dueling dynamics.

Wraps a duelling policy's selector so every PSEL movement and every change
of the selected policy is recorded with its access index.  This is how the
adaptivity of DGIPPR (Section 3.5) can be *measured* rather than eyeballed:
how long the duel takes to flip after a phase change, how often it
thrashes, and what fraction of time each vector governs the followers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cache.cache import SetAssociativeCache
from ..policies.base import ReplacementPolicy
from ..trace.record import Trace

__all__ = ["DuelTrace", "record_duel"]


class DuelTrace:
    """The recorded dueling history of one run."""

    def __init__(self, switches: List[Tuple[int, int]], accesses: int,
                 final_selected: int):
        #: (access index, newly selected policy) pairs, first entry at 0.
        self.switches = switches
        self.accesses = accesses
        self.final_selected = final_selected

    @property
    def switch_count(self) -> int:
        """Number of times the followers changed policy."""
        return max(0, len(self.switches) - 1)

    def occupancy(self) -> dict:
        """Fraction of accesses each policy governed the followers."""
        out: dict = {}
        for (start, policy), (end, _next) in zip(
            self.switches, self.switches[1:] + [(self.accesses, -1)]
        ):
            out[policy] = out.get(policy, 0) + (end - start)
        total = max(1, self.accesses)
        return {policy: span / total for policy, span in out.items()}

    def flip_latency(self, phase_starts: List[int]) -> List[Optional[int]]:
        """Accesses from each phase start until the next selector switch.

        Returns None for phases during which the selector never moved.
        """
        latencies: List[Optional[int]] = []
        switch_points = [index for index, _ in self.switches[1:]]
        for start in phase_starts:
            after = [s for s in switch_points if s >= start]
            latencies.append(after[0] - start if after else None)
        return latencies

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DuelTrace(switches={self.switch_count}, "
            f"occupancy={self.occupancy()})"
        )


def record_duel(
    policy: ReplacementPolicy,
    trace: Trace,
    num_sets: int,
    assoc: int,
    sample_every: int = 1,
) -> DuelTrace:
    """Run a trace against a duelling policy, recording selector switches.

    ``policy`` must expose a ``selector`` with a ``selected()`` method
    (DGIPPR, DRRIP, DIP, DynamicIPVRRIP all do).
    """
    selector = getattr(policy, "selector", None)
    if selector is None or not hasattr(selector, "selected"):
        raise ValueError(f"{policy.name} has no set-dueling selector")
    cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
    switches: List[Tuple[int, int]] = [(0, selector.selected())]
    current = selector.selected()
    index = 0
    for index, (address, pc) in enumerate(trace):
        cache.access(address, pc=pc)
        if index % sample_every == 0:
            selected = selector.selected()
            if selected != current:
                switches.append((index, selected))
                current = selected
    return DuelTrace(switches, len(trace), current)
