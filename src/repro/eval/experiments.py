"""Suite-level experiment driver.

``run_suite`` runs a set of labelled policies over the (synthetic) SPEC
suite and wraps the results in a :class:`SuiteResult` that knows how to
compute the paper's reported quantities: per-benchmark speedups over LRU,
geometric means, MPKI normalized to LRU, and the memory-intensive subset
(benchmarks where DRRIP beats LRU by more than 1 %, Section 5.1).

Every figure-bench under ``benchmarks/`` is a thin wrapper over this module;
see DESIGN.md's per-experiment index.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..workloads.spec import SPEC_BENCHMARKS, SpecBenchmark, benchmark_names
from .config import ExperimentConfig, default_config
from .metrics import (
    geometric_mean,
    memory_intensive_subset,
    normalized_map,
)
from .runner import BenchmarkResult, run_benchmark

__all__ = ["PolicySpec", "SuiteResult", "run_suite", "STANDARD_POLICIES"]


class PolicySpec(NamedTuple):
    """A labelled policy configuration for suite runs."""

    label: str
    policy: str
    kwargs: dict = {}


#: The line-up used by most figures.
STANDARD_POLICIES: List[PolicySpec] = [
    PolicySpec("LRU", "lru"),
    PolicySpec("PLRU", "plru"),
    PolicySpec("Random", "random"),
    PolicySpec("DRRIP", "drrip"),
    PolicySpec("PDP", "pdp"),
]


class SuiteResult:
    """Results of ``run_suite``: benchmark x policy matrices plus metrics."""

    def __init__(
        self,
        config: ExperimentConfig,
        results: Dict[str, Dict[str, BenchmarkResult]],
        baseline_label: str = "LRU",
    ):
        self.config = config
        self.results = results
        self.baseline_label = baseline_label
        self.labels = list(results)
        first = next(iter(results.values()))
        self.benchmarks = list(first)

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------
    def misses(self, label: str) -> Dict[str, float]:
        return {b: r.misses for b, r in self.results[label].items()}

    def mpki(self, label: str) -> Dict[str, float]:
        return {b: r.mpki for b, r in self.results[label].items()}

    def instructions(self, label: str) -> Dict[str, float]:
        return {b: r.instructions for b, r in self.results[label].items()}

    # ------------------------------------------------------------------
    # Paper metrics.
    # ------------------------------------------------------------------
    def speedups(self, label: str, baseline: Optional[str] = None) -> Dict[str, float]:
        """Per-benchmark speedup over the baseline via the CPI model."""
        baseline = baseline or self.baseline_label
        timing = self.config.timing
        base_misses = self.misses(baseline)
        pol_misses = self.misses(label)
        instructions = self.instructions(baseline)
        return {
            b: timing.cycles(int(instructions[b]), base_misses[b])
            / timing.cycles(int(instructions[b]), pol_misses[b])
            for b in self.benchmarks
        }

    def geomean_speedup(self, label: str, benchmarks: Optional[Sequence[str]] = None) -> float:
        speedups = self.speedups(label)
        benchmarks = benchmarks or self.benchmarks
        return geometric_mean(speedups[b] for b in benchmarks)

    def normalized_mpki(self, label: str) -> Dict[str, float]:
        """MPKI normalized to the LRU baseline (Figures 10 and 11)."""
        return normalized_map(self.mpki(self.baseline_label), self.mpki(label))

    def geomean_normalized_mpki(self, label: str) -> float:
        return geometric_mean(
            max(v, 1e-6) for v in self.normalized_mpki(label).values()
        )

    def memory_intensive(self, drrip_label: str = "DRRIP") -> List[str]:
        """Benchmarks where DRRIP beats LRU by > 1 % (the paper's subset)."""
        if drrip_label not in self.results:
            raise ValueError(f"no {drrip_label!r} run in this suite")
        return list(memory_intensive_subset(self.speedups(drrip_label)))

    def sorted_benchmarks(self, by_label: str, metric: str = "speedup") -> List[str]:
        """Benchmarks in ascending order of a policy's statistic.

        The paper sorts its bar charts in ascending order of the statistic
        for DRRIP.
        """
        if metric == "speedup":
            key = self.speedups(by_label)
        elif metric == "normalized_mpki":
            key = self.normalized_mpki(by_label)
        else:
            raise ValueError(f"unknown metric {metric!r}")
        return sorted(self.benchmarks, key=lambda b: key[b])


def _run_one(args):
    """Worker task: run one (benchmark, policy) cell.

    Per-process trace caching keeps multiprocess fan-out from regenerating
    traces for every policy.
    """
    bench_name, spec, config = args
    benchmark = SPEC_BENCHMARKS[bench_name]
    traces = _trace_cache(benchmark, config)
    result = run_benchmark(
        spec.policy, benchmark, config, policy_kwargs=spec.kwargs, traces=traces
    )
    return bench_name, spec.label, result


_TRACES: dict = {}


def _trace_cache(benchmark: SpecBenchmark, config: ExperimentConfig):
    key = (
        benchmark.name,
        config.trace_length,
        config.capacity_blocks,
        config.seed,
    )
    traces = _TRACES.get(key)
    if traces is None:
        traces = benchmark.traces(
            config.trace_length, config.capacity_blocks, seed=config.seed
        )
        _TRACES[key] = traces
    return traces


def run_suite(
    policies: Sequence[PolicySpec] = None,
    config: Optional[ExperimentConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    baseline_label: str = "LRU",
    workers: Optional[int] = None,
) -> SuiteResult:
    """Run every policy over every benchmark.

    ``workers`` defaults to the ``REPRO_WORKERS`` environment variable (0 or
    unset = serial).  Results are identical either way; parallelism only
    fans the (benchmark, policy) grid over processes.
    """
    policies = list(policies or STANDARD_POLICIES)
    config = config or default_config()
    benchmarks = list(benchmarks or benchmark_names())
    labels = [spec.label for spec in policies]
    if len(set(labels)) != len(labels):
        raise ValueError("policy labels must be unique")
    if baseline_label not in labels:
        raise ValueError(f"baseline {baseline_label!r} must be among the policies")

    tasks = [
        (bench, spec, config) for bench in benchmarks for spec in policies
    ]
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)

    results: Dict[str, Dict[str, BenchmarkResult]] = {
        label: {} for label in labels
    }
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for bench, label, result in pool.map(_run_one, tasks, chunksize=1):
                results[label][bench] = result
    else:
        for task in tasks:
            bench, label, result = _run_one(task)
            results[label][bench] = result
    # Keep benchmark insertion order stable per label.
    ordered = {
        label: {b: results[label][b] for b in benchmarks} for label in labels
    }
    return SuiteResult(config, ordered, baseline_label=baseline_label)
