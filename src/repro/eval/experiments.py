"""Suite-level experiment driver.

``run_suite`` runs a set of labelled policies over the (synthetic) SPEC
suite and wraps the results in a :class:`SuiteResult` that knows how to
compute the paper's reported quantities: per-benchmark speedups over LRU,
geometric means, MPKI normalized to LRU, and the memory-intensive subset
(benchmarks where DRRIP beats LRU by more than 1 %, Section 5.1).

Every figure-bench under ``benchmarks/`` is a thin wrapper over this module;
see DESIGN.md's per-experiment index.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Union

from ..workloads.spec import benchmark_names
from .config import ExperimentConfig, default_config
from .metrics import (
    geometric_mean,
    memory_intensive_subset,
    normalized_map,
)
from .parallel import RunnerMetrics, run_matrix
from .runner import BenchmarkResult

__all__ = ["PolicySpec", "SuiteResult", "run_suite", "STANDARD_POLICIES"]


class PolicySpec(NamedTuple):
    """A labelled policy configuration for suite runs."""

    label: str
    policy: str
    kwargs: dict = {}


#: The line-up used by most figures.
STANDARD_POLICIES: List[PolicySpec] = [
    PolicySpec("LRU", "lru"),
    PolicySpec("PLRU", "plru"),
    PolicySpec("Random", "random"),
    PolicySpec("DRRIP", "drrip"),
    PolicySpec("PDP", "pdp"),
]


class SuiteResult:
    """Results of ``run_suite``: benchmark x policy matrices plus metrics."""

    def __init__(
        self,
        config: ExperimentConfig,
        results: Dict[str, Dict[str, BenchmarkResult]],
        baseline_label: str = "LRU",
        metrics: Optional[RunnerMetrics] = None,
    ):
        self.config = config
        self.results = results
        self.baseline_label = baseline_label
        self.labels = list(results)
        first = next(iter(results.values()))
        self.benchmarks = list(first)
        #: Runner metrics (jobs, cache hit rate, sims/sec) when the suite
        #: came from :func:`run_suite`; ``None`` for hand-built suites.
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------
    def misses(self, label: str) -> Dict[str, float]:
        return {b: r.misses for b, r in self.results[label].items()}

    def mpki(self, label: str) -> Dict[str, float]:
        return {b: r.mpki for b, r in self.results[label].items()}

    def instructions(self, label: str) -> Dict[str, float]:
        return {b: r.instructions for b, r in self.results[label].items()}

    # ------------------------------------------------------------------
    # Paper metrics.
    # ------------------------------------------------------------------
    def speedups(self, label: str, baseline: Optional[str] = None) -> Dict[str, float]:
        """Per-benchmark speedup over the baseline via the CPI model."""
        baseline = baseline or self.baseline_label
        timing = self.config.timing
        base_misses = self.misses(baseline)
        pol_misses = self.misses(label)
        instructions = self.instructions(baseline)
        return {
            b: timing.cycles(int(instructions[b]), base_misses[b])
            / timing.cycles(int(instructions[b]), pol_misses[b])
            for b in self.benchmarks
        }

    def geomean_speedup(self, label: str, benchmarks: Optional[Sequence[str]] = None) -> float:
        """Geomean speedup over the baseline, optionally over a subset.

        An explicitly empty ``benchmarks`` sequence (e.g. an empty
        memory-intensive subset on a short config) yields ``nan`` — it
        must NOT silently fall back to the full suite, which would report
        a number for the wrong benchmark population.
        """
        speedups = self.speedups(label)
        if benchmarks is None:
            benchmarks = self.benchmarks
        return geometric_mean(
            (speedups[b] for b in benchmarks), empty=float("nan")
        )

    def normalized_mpki(self, label: str) -> Dict[str, float]:
        """MPKI normalized to the LRU baseline (Figures 10 and 11)."""
        return normalized_map(self.mpki(self.baseline_label), self.mpki(label))

    def geomean_normalized_mpki(self, label: str) -> float:
        return geometric_mean(
            max(v, 1e-6) for v in self.normalized_mpki(label).values()
        )

    def memory_intensive(self, drrip_label: str = "DRRIP") -> List[str]:
        """Benchmarks where DRRIP beats LRU by > 1 % (the paper's subset)."""
        if drrip_label not in self.results:
            raise ValueError(f"no {drrip_label!r} run in this suite")
        return list(memory_intensive_subset(self.speedups(drrip_label)))

    def sorted_benchmarks(self, by_label: str, metric: str = "speedup") -> List[str]:
        """Benchmarks in ascending order of a policy's statistic.

        The paper sorts its bar charts in ascending order of the statistic
        for DRRIP.
        """
        if metric == "speedup":
            key = self.speedups(by_label)
        elif metric == "normalized_mpki":
            key = self.normalized_mpki(by_label)
        else:
            raise ValueError(f"unknown metric {metric!r}")
        return sorted(self.benchmarks, key=lambda b: key[b])


def run_suite(
    policies: Sequence[PolicySpec] = None,
    config: Optional[ExperimentConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    baseline_label: str = "LRU",
    workers: Optional[int] = None,
    cache: Union[None, bool, str, Path] = None,
    progress: Optional[bool] = None,
    status_path: Union[None, str, Path] = None,
) -> SuiteResult:
    """Run every policy over every benchmark.

    ``workers`` defaults to the ``REPRO_WORKERS`` environment variable (0
    or unset = serial).  Results are bit-identical for every worker count;
    parallelism only fans the (benchmark, policy, simpoint) grid over
    processes — see :mod:`repro.eval.parallel`.

    ``cache`` enables the on-disk result cache (``True`` for the default
    directory, or a path); ``progress`` forces the stderr progress line on
    or off (default: only on a TTY).  The returned suite carries the
    runner metrics (jobs, cache hit rate, sims/sec) as ``suite.metrics``.
    """
    policies = list(policies or STANDARD_POLICIES)
    config = config or default_config()
    benchmarks = list(benchmarks or benchmark_names())
    labels = [spec.label for spec in policies]
    if len(set(labels)) != len(labels):
        raise ValueError("policy labels must be unique")
    if baseline_label not in labels:
        raise ValueError(f"baseline {baseline_label!r} must be among the policies")
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)

    matrix = run_matrix(
        policies,
        config=config,
        benchmarks=benchmarks,
        workers=workers,
        cache=cache,
        progress=progress,
        status_path=status_path,
    )
    # Keep benchmark insertion order stable per label.
    ordered = {
        label: {b: matrix.results[label][b] for b in benchmarks}
        for label in labels
    }
    return SuiteResult(
        config, ordered, baseline_label=baseline_label, metrics=matrix.metrics
    )
