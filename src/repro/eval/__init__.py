"""Evaluation harness: configs, runners, suite experiments and metrics."""

from .config import ExperimentConfig, default_config, paper_scale_config
from .crossval import (
    evolve_duel_vectors,
    evolve_wn1_vectors,
    lru_miss_rates,
    partition_benchmarks,
)
from .experiments import STANDARD_POLICIES, PolicySpec, SuiteResult, run_suite
from .parallel import (
    MatrixResult,
    ParallelRunner,
    ResultCache,
    RunnerMetrics,
    cache_key,
    default_cache_dir,
    run_matrix,
)
from .dueling_trace import DuelTrace, record_duel
from .ipc import estimate_ipc, ipc_speedup
from .multicore import CoreResult, MulticoreResult, run_multicore
from .sweeps import crossover_size, miss_ratio_curve
from .metrics import (
    geometric_mean,
    memory_intensive_subset,
    normalized_map,
    speedup_map,
)
from .overhead import overhead_row, overhead_table
from .reporting import (
    format_overhead,
    format_table,
    memory_intensive_summary,
    normalized_mpki_table,
    speedup_table,
)
from .runner import BenchmarkResult, RunResult, run_benchmark, run_trace

__all__ = [
    "ExperimentConfig",
    "default_config",
    "paper_scale_config",
    "PolicySpec",
    "SuiteResult",
    "run_suite",
    "STANDARD_POLICIES",
    "MatrixResult",
    "ParallelRunner",
    "ResultCache",
    "RunnerMetrics",
    "cache_key",
    "default_cache_dir",
    "run_matrix",
    "CoreResult",
    "MulticoreResult",
    "run_multicore",
    "estimate_ipc",
    "DuelTrace",
    "record_duel",
    "ipc_speedup",
    "miss_ratio_curve",
    "crossover_size",
    "RunResult",
    "BenchmarkResult",
    "run_trace",
    "run_benchmark",
    "geometric_mean",
    "speedup_map",
    "normalized_map",
    "memory_intensive_subset",
    "overhead_row",
    "overhead_table",
    "format_table",
    "format_overhead",
    "memory_intensive_summary",
    "speedup_table",
    "normalized_mpki_table",
    "lru_miss_rates",
    "partition_benchmarks",
    "evolve_duel_vectors",
    "evolve_wn1_vectors",
]
