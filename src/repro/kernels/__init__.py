"""Transition-table kernels: O(1) lookup replacements for the PLRU walks.

See :mod:`repro.kernels.tables` for the design.  Quick use::

    from repro.kernels import compile_tables

    t = compile_tables(16, ipv.entries)   # None -> fall back to bit walks
    new_state = t.hit[(state << t.log2k) | way]

``docs/PERFORMANCE.md`` documents the table layout, memory cost, the
compile cache and measured speedups; ``make bench-kernels`` regenerates
``BENCH_kernels.json`` and ``make smoke-kernels`` runs the fast
equivalence + throughput gate.
"""

from .tables import (
    KERNEL_CACHE_CAPACITY,
    KernelTables,
    MAX_TABLE_ASSOC,
    PURE_PYTHON_MAX_ASSOC,
    clear_kernel_cache,
    compile_tables,
    kernel_cache_info,
    kernel_counters,
    kernel_provenance,
    numpy_or_none,
    publish_kernel_metrics,
    record_kernel_call,
    reset_kernel_counters,
    resolve_kernel,
    tables_supported,
)

__all__ = [
    "KERNEL_CACHE_CAPACITY",
    "KernelTables",
    "MAX_TABLE_ASSOC",
    "PURE_PYTHON_MAX_ASSOC",
    "clear_kernel_cache",
    "compile_tables",
    "kernel_cache_info",
    "kernel_counters",
    "kernel_provenance",
    "numpy_or_none",
    "publish_kernel_metrics",
    "record_kernel_call",
    "reset_kernel_counters",
    "resolve_kernel",
    "tables_supported",
]
