"""Precomputed transition-table kernels for tree PseudoLRU.

The GA fitness simulator calls the Figure 5/7/9 bit-walks millions of
times, yet the entire per-set PLRU state is only ``k - 1`` bits — 32 768
states for a 16-way set (Berthet's state-space observation).  Every walk is
therefore exactly memoizable.  This module compiles, for any power-of-two
``k <= MAX_TABLE_ASSOC``, four flat lookup tables that turn the hot loops
into O(1) array indexing:

``victim[state]``
    The PseudoLRU victim way (Figure 5) for each of the ``S = 2**(k-1)``
    states.
``pos[(state << log2k) | way]``
    The recency-stack position of ``way`` (Figure 7).
``hit[(state << log2k) | way]``
    The *composed* hit transition for one IPV: decode the position, look up
    the promotion target ``V[pos]``, re-encode via Figure 9 — all collapsed
    into a single new-state lookup.
``fill[(state << log2k) | way]``
    The composed fill transition: ``set_position(state, way, V[k])``.

Key compilation trick: ``set_position(state, way, x)`` rewrites only the
``log2(k)`` plru bits on ``way``'s leaf-to-root path, and the new values
depend only on ``(way, x)`` — never on the old state.  So every composed
transition is ``(state & ~path_mask[way]) | path_bits[way][x]``, built from
two tiny per-``k`` tables; per-IPV compilation is a vectorized pass over
the state space (numpy) or a short pure-Python loop for small ``k``.

Tables are stored as ``array('H')`` (uint16; the packed state of a 16-way
set fits in 15 bits) and cached in a bounded LRU keyed by
``(k, ipv_entries)`` — DGIPPR duels 2-4 vectors, the GA's elites recur, and
classic PLRU is the all-zeros vector, so the cache absorbs recompiles.

When tables are unavailable (``k > MAX_TABLE_ASSOC``, or ``k == 16``
without numpy) callers fall back to the bit-walk reference implementations
in :mod:`repro.core.plru`; the counters here record which kernel actually
ran so provenance manifests can state it (see :func:`kernel_provenance`).
"""

from __future__ import annotations

import os
import threading
import time
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.plru import find_plru, is_power_of_two, position, set_position

try:  # numpy accelerates table compilation; tables themselves are stdlib.
    # REPRO_FORCE_NO_NUMPY=1 takes the ImportError arm deliberately so the
    # pure-Python compile path (and every caller's no-numpy behaviour) can
    # be exercised in CI on machines that do have numpy installed.
    if os.environ.get("REPRO_FORCE_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_FORCE_NO_NUMPY")
    import numpy as _np
except ImportError:
    _np = None


def numpy_or_none():
    """The numpy module this process compiles with, or ``None``.

    The single numpy seam for the kernel layer *and* the columnar engine:
    tests monkeypatch ``tables._np`` (or set ``REPRO_FORCE_NO_NUMPY=1``
    before import) and every consumer that routes through this accessor
    sees the same answer at call time.
    """
    return _np

__all__ = [
    "KERNEL_CACHE_CAPACITY",
    "KernelTables",
    "MAX_TABLE_ASSOC",
    "PURE_PYTHON_MAX_ASSOC",
    "clear_kernel_cache",
    "compile_tables",
    "kernel_cache_info",
    "kernel_counters",
    "kernel_provenance",
    "numpy_or_none",
    "path_write_tables",
    "promotion_orbit",
    "publish_kernel_metrics",
    "record_kernel_call",
    "reset_kernel_counters",
    "resolve_kernel",
    "tables_supported",
]

#: Largest associativity we compile tables for: S = 2**(k-1) states, so 16
#: ways is 32 768 states and ~3 MB of tables per IPV — the paper's LLC.
MAX_TABLE_ASSOC = 16

#: Up to this associativity pure-Python compilation is cheap enough
#: (S * k <= 1024 entries); beyond it numpy is required.
PURE_PYTHON_MAX_ASSOC = 8

#: Bounded LRU capacity for composed per-IPV tables (DGIPPR duels 2-4
#: vectors; GA elites and the classic-PLRU vector recur).
KERNEL_CACHE_CAPACITY = 16


# ----------------------------------------------------------------------
# Counters (observability).  Guarded by a lock: the parallel GA path keeps
# one compile cache per worker *process*, but threads may share this one.
# ----------------------------------------------------------------------
_LOCK = threading.RLock()

_COUNTERS: Dict[str, float] = {}


def reset_kernel_counters() -> None:
    """Zero every kernel counter (tests, fresh bench runs)."""
    with _LOCK:
        _COUNTERS.update(
            compiles=0,
            compile_seconds=0.0,
            cache_hits=0,
            cache_misses=0,
            lut_calls=0,
            walk_calls=0,
            columnar_calls=0,
        )


reset_kernel_counters()


def kernel_counters() -> Dict[str, float]:
    """Snapshot of the kernel counters (compiles, cache traffic, calls)."""
    with _LOCK:
        return dict(_COUNTERS)


def record_kernel_call(mode: str) -> None:
    """Count one simulator/policy dispatch (``lut``/``walk``/``columnar``)."""
    if mode not in ("lut", "walk", "columnar"):
        raise ValueError(
            f"kernel mode must be 'lut', 'walk' or 'columnar', got {mode!r}"
        )
    with _LOCK:
        _COUNTERS[f"{mode}_calls"] += 1


# ----------------------------------------------------------------------
# Support predicate.
# ----------------------------------------------------------------------
def tables_supported(k: int) -> bool:
    """True when transition tables can be compiled for associativity ``k``.

    Requires a power of two no larger than :data:`MAX_TABLE_ASSOC`; above
    :data:`PURE_PYTHON_MAX_ASSOC` numpy must be importable (pure-Python
    compilation of the 524 288-entry k=16 tables would dwarf the payoff).
    """
    if not is_power_of_two(k) or k < 2 or k > MAX_TABLE_ASSOC:
        return False
    if k > PURE_PYTHON_MAX_ASSOC and _np is None:
        return False
    return True


def _normalize_entries(k: int, entries: Optional[Sequence[int]]) -> Tuple[int, ...]:
    """Validate and freeze IPV entries; ``None`` means classic PLRU.

    Classic tree PLRU *is* the all-zeros vector: ``promote(state, way)`` is
    exactly ``set_position(state, way, 0)`` (Figure 6 vs Figure 9).
    """
    if entries is None:
        return (0,) * (k + 1)
    entries = tuple(int(e) for e in entries)
    if len(entries) != k + 1:
        raise ValueError(
            f"IPV for a {k}-way set needs {k + 1} entries, got {len(entries)}"
        )
    for i, e in enumerate(entries):
        if not 0 <= e < k:
            raise ValueError(f"IPV entry V[{i}]={e} out of range 0..{k - 1}")
    return entries


# ----------------------------------------------------------------------
# Per-k base tables (never evicted: at most a handful of k values live).
# ----------------------------------------------------------------------
class _BaseTables:
    """Per-associativity tables every IPV's composed tables are built from."""

    __slots__ = ("k", "log2k", "states", "victim", "pos", "path_mask", "path_bits")

    def __init__(self, k: int):
        self.k = k
        self.log2k = k.bit_length() - 1
        self.states = 1 << (k - 1)
        S = self.states
        # path_mask[w]: the plru bits on way w's leaf-to-root path.
        # path_bits[w][x]: those bits valued so that way w decodes to x
        # (= set_position(0, w, x) restricted to the path, which is all of it).
        self.path_mask: List[int] = []
        self.path_bits: List[List[int]] = []
        for w in range(k):
            mask = 0
            q = k + w
            while q > 1:
                parent = q >> 1
                mask |= 1 << (parent - 1)
                q = parent
            self.path_mask.append(mask)
            self.path_bits.append([set_position(0, w, x, k) for x in range(k)])
        if _np is not None and k > PURE_PYTHON_MAX_ASSOC:
            self.victim, self.pos = self._compile_numpy()
        else:
            self.victim, self.pos = self._compile_python()

    # -- pure python (small k) -----------------------------------------
    def _compile_python(self) -> Tuple[array, array]:
        k, S, log2k = self.k, self.states, self.log2k
        victim = array("H", (find_plru(s, k) for s in range(S)))
        pos = array("H", bytes(2 * S * k))
        for s in range(S):
            base = s << log2k
            for w in range(k):
                pos[base | w] = position(s, w, k)
        return victim, pos

    # -- numpy (large k) -----------------------------------------------
    def _compile_numpy(self) -> Tuple[array, array]:
        k, S, log2k = self.k, self.states, self.log2k
        states = _np.arange(S, dtype=_np.uint32)
        # Figure 5 walk, vectorized over every state at once.
        n = _np.ones(S, dtype=_np.uint32)
        for _ in range(log2k):
            n = (n << 1) | ((states >> (n - 1)) & 1)
        victim_np = (n - k).astype(_np.uint16)
        # Figure 7 decode per way.
        pos_np = _np.empty((S, k), dtype=_np.uint16)
        for w in range(k):
            q = k + w
            b = 0
            acc = _np.zeros(S, dtype=_np.uint32)
            while q > 1:
                parent = q >> 1
                bit = (states >> (parent - 1)) & 1
                if not (q & 1):
                    bit ^= 1
                acc |= bit << b
                q = parent
                b += 1
            pos_np[:, w] = acc
        return _np_to_array(victim_np), _np_to_array(pos_np.reshape(-1))


def _np_to_array(values) -> array:
    """uint-ish numpy vector -> ``array('H')`` without a Python-int detour."""
    out = array("H")
    out.frombytes(values.astype(_np.uint16, copy=False).tobytes())
    return out


_BASE_TABLES: Dict[int, _BaseTables] = {}


def _base_tables(k: int) -> _BaseTables:
    base = _BASE_TABLES.get(k)
    if base is None:
        base = _BaseTables(k)
        _BASE_TABLES[k] = base
    return base


def path_write_tables(k: int) -> Tuple[List[int], List[List[int]]]:
    """``(path_mask, path_bits)`` for associativity ``k``.

    ``path_mask[w]`` holds the plru bits on way ``w``'s leaf-to-root path;
    ``path_bits[w][x]`` holds those bits valued so that ``w`` decodes to
    position ``x`` — i.e. ``set_position(s, w, x, k)`` for *any* state
    ``s`` equals ``(s & ~path_mask[w]) | path_bits[w][x]``.  This is the
    compilation identity the composed tables are built from, exported for
    run-collapsed simulation (see :func:`promotion_orbit`).
    """
    if not is_power_of_two(k) or k < 2:
        raise ValueError(f"associativity must be a power of two >= 2, got {k}")
    base = _base_tables(k)
    return base.path_mask, base.path_bits


def promotion_orbit(
    k: int, entries: Optional[Sequence[int]] = None
) -> Tuple[List[List[int]], List[int], List[int]]:
    """Promotion-chain orbit tables for one IPV.

    ``n`` consecutive hits to the same way advance its recency position
    along the promotion chain ``p -> V[p]`` — the tags never move, and
    each hop rewrites only the way's path bits from the new position
    (:func:`path_write_tables`), so the whole run collapses to a single
    state write at position ``V^n(p)``.  The chain over ``k`` positions
    enters a cycle within ``k`` steps, making ``V^n`` O(1) for any ``n``:

    Returns ``(orbit, entry, cycle)`` with ``orbit[p][i] == V^i(p)`` for
    ``i < 2k``, and for ``n >= 2k``
    ``V^n(p) == orbit[p][entry[p] + (n - entry[p]) % cycle[p]]``.
    """
    entries = _normalize_entries(k, entries)
    promo = entries[:k]
    orbit: List[List[int]] = []
    entry: List[int] = []
    cycle: List[int] = []
    for p in range(k):
        row: List[int] = []
        seen: Dict[int, int] = {}
        e = c = -1
        cur = p
        for i in range(2 * k):
            if e < 0:
                if cur in seen:
                    e = seen[cur]
                    c = i - e
                else:
                    seen[cur] = i
            row.append(cur)
            cur = promo[cur]
        # A repeat always lands within the first k+1 visits (pigeonhole
        # over k positions) and 2k >= k + 1 for every k >= 2.
        orbit.append(row)
        entry.append(e)
        cycle.append(c)
    return orbit, entry, cycle


# ----------------------------------------------------------------------
# Composed per-IPV tables.
# ----------------------------------------------------------------------
class KernelTables:
    """Compiled transition tables for one ``(k, IPV)`` pair.

    ``victim`` and ``pos`` are shared (per ``k``); ``hit`` and ``fill`` are
    composed for the specific vector.  All four are ``array('H')`` indexed
    as documented in the module docstring.
    """

    __slots__ = (
        "k", "log2k", "entries", "victim", "pos", "hit", "fill",
        "compile_seconds",
    )

    def __init__(self, k: int, entries: Tuple[int, ...]):
        base = _base_tables(k)
        self.k = k
        self.log2k = base.log2k
        self.entries = entries
        self.victim = base.victim
        self.pos = base.pos
        started = time.perf_counter()
        promo = entries[:k]
        insert = entries[k]
        S = base.states
        if _np is not None and k > PURE_PYTHON_MAX_ASSOC:
            states = _np.arange(S, dtype=_np.uint32)
            pos_np = _np.frombuffer(base.pos, dtype=_np.uint16).reshape(S, k)
            promo_np = _np.asarray(promo, dtype=_np.intp)
            hit = _np.empty((S, k), dtype=_np.uint32)
            fill = _np.empty((S, k), dtype=_np.uint32)
            for w in range(k):
                keep = states & ~_np.uint32(base.path_mask[w])
                path_bits_w = _np.asarray(base.path_bits[w], dtype=_np.uint32)
                hit[:, w] = keep | path_bits_w[promo_np[pos_np[:, w]]]
                fill[:, w] = keep | path_bits_w[insert]
            self.hit = _np_to_array(hit.reshape(-1))
            self.fill = _np_to_array(fill.reshape(-1))
        else:
            log2k = base.log2k
            pos_t = base.pos
            hit = array("H", bytes(2 * S * k))
            fill = array("H", bytes(2 * S * k))
            for w in range(k):
                mask = ~base.path_mask[w]
                bits = base.path_bits[w]
                fill_bits = bits[insert]
                for s in range(S):
                    i = (s << log2k) | w
                    keep = s & mask
                    hit[i] = keep | bits[promo[pos_t[i]]]
                    fill[i] = keep | fill_bits
            self.hit = hit
            self.fill = fill
        self.compile_seconds = time.perf_counter() - started

    @property
    def nbytes(self) -> int:
        """Total table footprint in bytes (victim + pos + hit + fill)."""
        return sum(
            t.itemsize * len(t)
            for t in (self.victim, self.pos, self.hit, self.fill)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KernelTables(k={self.k}, entries={list(self.entries)}, "
            f"{self.nbytes / 1024:.0f} KiB, "
            f"compiled in {self.compile_seconds * 1e3:.1f} ms)"
        )


_IPV_CACHE: "OrderedDict[Tuple[int, Tuple[int, ...]], KernelTables]" = OrderedDict()


def compile_tables(
    k: int, entries: Optional[Sequence[int]] = None
) -> Optional[KernelTables]:
    """Compile (or fetch from the LRU cache) tables for ``(k, entries)``.

    ``entries=None`` compiles classic tree PLRU (the all-zeros vector).
    Returns ``None`` when tables are unsupported for ``k`` (caller falls
    back to the bit-walk reference).  Raises :class:`ValueError` for
    malformed IPV entries — malformed vectors must never silently
    mis-simulate.
    """
    if not tables_supported(k):
        if entries is not None and is_power_of_two(k):
            _normalize_entries(k, entries)  # still validate before bailing
        return None
    key = (k, _normalize_entries(k, entries))
    with _LOCK:
        tables = _IPV_CACHE.get(key)
        if tables is not None:
            _IPV_CACHE.move_to_end(key)
            _COUNTERS["cache_hits"] += 1
            return tables
        _COUNTERS["cache_misses"] += 1
        from ..obs.spans import span  # local: keep the module import-light

        with span("kernels.compile", k=key[0]):
            tables = KernelTables(key[0], key[1])
        _COUNTERS["compiles"] += 1
        _COUNTERS["compile_seconds"] += tables.compile_seconds
        _IPV_CACHE[key] = tables
        while len(_IPV_CACHE) > KERNEL_CACHE_CAPACITY:
            _IPV_CACHE.popitem(last=False)
        return tables


def resolve_kernel(
    kernel: str, k: int, entries: Optional[Sequence[int]] = None
) -> Optional[KernelTables]:
    """Map a user-facing kernel setting to tables (or ``None`` for walk).

    ``"auto"`` compiles tables when supported and otherwise falls back;
    ``"lut"`` demands tables (raises if unsupported); ``"walk"`` forces the
    bit-walk reference.
    """
    if kernel == "walk":
        if entries is not None and is_power_of_two(k):
            _normalize_entries(k, entries)
        return None
    if kernel == "lut":
        tables = compile_tables(k, entries)
        if tables is None:
            raise ValueError(
                f"LUT kernel unavailable for associativity {k} "
                f"(supported: powers of two <= {MAX_TABLE_ASSOC}"
                f"{', numpy required above %d' % PURE_PYTHON_MAX_ASSOC if _np is None else ''})"
            )
        return tables
    if kernel == "auto":
        return compile_tables(k, entries)
    raise ValueError(f"kernel must be 'auto', 'lut' or 'walk', got {kernel!r}")


def clear_kernel_cache() -> int:
    """Drop every cached table set; returns how many were dropped."""
    with _LOCK:
        n = len(_IPV_CACHE)
        _IPV_CACHE.clear()
        return n


def kernel_cache_info() -> Dict[str, object]:
    """Cache occupancy plus the (k, entries) keys currently resident."""
    with _LOCK:
        return {
            "capacity": KERNEL_CACHE_CAPACITY,
            "size": len(_IPV_CACHE),
            "keys": [
                {"k": k, "entries": list(entries)} for k, entries in _IPV_CACHE
            ],
            "nbytes": sum(t.nbytes for t in _IPV_CACHE.values()),
        }


# ----------------------------------------------------------------------
# Observability integration.
# ----------------------------------------------------------------------
def kernel_provenance() -> Dict[str, object]:
    """The kernel facts a provenance manifest should record.

    Which kernel modes ran (``lut_calls`` / ``walk_calls`` /
    ``columnar_calls``), compile activity and cache traffic, plus whether
    numpy-backed compilation was available — enough to state which kernel
    produced a traced run.
    """
    counters = kernel_counters()
    modes_used = [
        mode for mode in ("lut", "walk", "columnar")
        if counters[f"{mode}_calls"]
    ]
    return {
        "numpy": _np is not None,
        "max_table_assoc": MAX_TABLE_ASSOC,
        "cache_capacity": KERNEL_CACHE_CAPACITY,
        "cache_size": len(_IPV_CACHE),
        "counters": counters,
        "mode": (
            modes_used[0] if len(modes_used) == 1
            else "mixed" if modes_used
            else "unused"
        ),
    }


def publish_kernel_metrics(registry) -> None:
    """Copy the kernel counters into a :class:`repro.obs.MetricsRegistry`.

    Counter names follow the runner's ``repro_*`` convention so kernel
    activity exports through the same Prometheus/JSON pipe as everything
    else.  Idempotent: values are *set* from the snapshot, so publishing
    twice does not double-count (gauges are used for that reason).
    """
    counters = kernel_counters()
    registry.gauge(
        "repro_kernel_compiles", "Transition-table sets compiled"
    ).set(counters["compiles"])
    registry.gauge(
        "repro_kernel_compile_seconds", "Cumulative table compile time"
    ).set(counters["compile_seconds"])
    registry.gauge(
        "repro_kernel_cache_hits", "Compile-cache hits"
    ).set(counters["cache_hits"])
    registry.gauge(
        "repro_kernel_cache_misses", "Compile-cache misses"
    ).set(counters["cache_misses"])
    registry.gauge(
        "repro_kernel_lut_calls", "Simulations dispatched to the LUT kernel"
    ).set(counters["lut_calls"])
    registry.gauge(
        "repro_kernel_walk_calls", "Simulations on the bit-walk reference"
    ).set(counters["walk_calls"])
    registry.gauge(
        "repro_kernel_columnar_calls",
        "Simulations dispatched to the columnar batch engine",
    ).set(counters["columnar_calls"])
