"""True-LRU family: classic LRU and IPV-driven LRU (GIPLR).

These are the Section 2 policies: an explicit recency stack per set, with
insertion and promotion controlled by an IPV.  Classic LRU is the special
case ``V = [0]*(k+1)``.  Storage cost is ``k * log2(k)`` bits per set
(Section 2.1.2) — the cost the paper's PLRU-based policies avoid.
"""

from __future__ import annotations

import math
from typing import List

from ..core.ipv import IPV, lru_ipv
from ..core.recency import RecencyStack
from .base import AccessContext, ReplacementPolicy

__all__ = ["IPVLRUPolicy", "TrueLRUPolicy", "GIPLRPolicy"]


class IPVLRUPolicy(ReplacementPolicy):
    """LRU recency stacks driven by an arbitrary IPV (Section 2.3)."""

    name = "ipv-lru"

    def __init__(self, num_sets: int, assoc: int, ipv: IPV):
        super().__init__(num_sets, assoc)
        if ipv.k != assoc:
            raise ValueError(f"IPV is for {ipv.k}-way sets, cache is {assoc}-way")
        self.ipv = ipv
        self._stacks: List[RecencyStack] = [
            RecencyStack(assoc, ipv) for _ in range(num_sets)
        ]

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return self._stacks[set_index].victim()

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._stacks[set_index].touch(way)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._stacks[set_index].insert(way)

    def position_of(self, set_index: int, way: int) -> int:
        """Recency-stack position of a resident way (introspection)."""
        return self._stacks[set_index].position_of(way)

    def state_bits_per_set(self) -> float:
        return self.assoc * math.log2(self.assoc)


class TrueLRUPolicy(IPVLRUPolicy):
    """Classic LRU: promote to MRU, insert at MRU, evict LRU."""

    name = "lru"

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc, lru_ipv(assoc))


class GIPLRPolicy(IPVLRUPolicy):
    """Genetic Insertion and Promotion for LRU Replacement (Section 2.5).

    True LRU stacks driven by an evolved vector; with the paper's published
    GIPLR vector this is the policy behind Figure 4.
    """

    name = "giplr"

    def __init__(self, num_sets: int, assoc: int, ipv: IPV = None):
        if ipv is None:
            from ..core.vectors import GIPLR_VECTOR

            ipv = GIPLR_VECTOR
        super().__init__(num_sets, assoc, ipv)
