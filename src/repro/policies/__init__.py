"""Replacement policies: the paper's contribution plus every baseline."""

from .base import AccessContext, ReplacementPolicy
from .belady import BeladyPolicy
from .bypass import BypassDGIPPRPolicy
from .counter_based import CounterBasedPolicy
from .dip import BIPPolicy, DIPPolicy, LIPPolicy
from .ipv_rrip import DynamicIPVRRIPPolicy, IPVRRIPPolicy, rrv_distant, rrv_srrip
from .lru import GIPLRPolicy, IPVLRUPolicy, TrueLRUPolicy
from .pdp import PDPPolicy, compute_protecting_distance
from .plru import DGIPPRPolicy, GIPPRPolicy, TreePLRUPolicy
from .registry import POLICIES, make_policy, policy_names
from .rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from .sdbp import SDBPPolicy
from .ship import SHiPPolicy
from .simple import FIFOPolicy, RandomPolicy

__all__ = [
    "AccessContext",
    "ReplacementPolicy",
    "TrueLRUPolicy",
    "IPVLRUPolicy",
    "GIPLRPolicy",
    "TreePLRUPolicy",
    "GIPPRPolicy",
    "DGIPPRPolicy",
    "RandomPolicy",
    "FIFOPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "DIPPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "IPVRRIPPolicy",
    "DynamicIPVRRIPPolicy",
    "rrv_srrip",
    "rrv_distant",
    "PDPPolicy",
    "compute_protecting_distance",
    "SHiPPolicy",
    "SDBPPolicy",
    "CounterBasedPolicy",
    "BeladyPolicy",
    "BypassDGIPPRPolicy",
    "POLICIES",
    "make_policy",
    "policy_names",
]
