"""Tree-PLRU family: classic PLRU, GIPPR and dynamic DGIPPR.

This is the paper's main contribution (Section 3).  All three policies keep
exactly ``k - 1`` plru bits per set — less than one bit per block for a
16-way cache — and differ only in how they map re-references and insertions
onto PseudoLRU recency-stack positions:

* :class:`TreePLRUPolicy` — classic PLRU: promote to PMRU, insert at PMRU.
* :class:`GIPPRPolicy` — a single evolved IPV drives insertion/promotion via
  the Figure 9 ``set_position`` primitive.
* :class:`DGIPPRPolicy` — set-dueling between 2 or 4 evolved IPVs (Section
  3.5) while sharing one set of plru bits across vectors, exactly as the
  paper specifies.

All three dispatch to the precompiled transition tables of
:mod:`repro.kernels` when available (``kernel="auto"``, the default):
victim selection and the composed hit/fill transitions become single
``array('H')`` lookups instead of ``log2(k)`` bit-walks.  ``kernel="walk"``
forces the reference walks (used by the equivalence tests); the two paths
are bit-identical.  The active mode is exposed as ``kernel_mode``
(``"lut"`` or ``"walk"``) for provenance.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.dueling import make_selector
from ..core.ipv import IPV
from ..core.plru import find_plru, position, promote, set_position
from ..kernels import resolve_kernel
from .base import AccessContext, ReplacementPolicy

__all__ = ["TreePLRUPolicy", "GIPPRPolicy", "DGIPPRPolicy"]


class TreePLRUPolicy(ReplacementPolicy):
    """Classic tree-based PseudoLRU (Section 3.1, Figures 5 and 6)."""

    name = "plru"

    def __init__(self, num_sets: int, assoc: int, kernel: str = "auto"):
        super().__init__(num_sets, assoc)
        self._state: List[int] = [0] * num_sets
        # Classic PLRU is the all-zeros vector: promote == set_position(0).
        self._tables = resolve_kernel(kernel, assoc, None)
        self.kernel_mode = "lut" if self._tables is not None else "walk"
        if self._tables is not None:
            self._shift = self._tables.log2k
            self._victim_t = self._tables.victim
            self._touch_t = self._tables.hit  # == fill: both promote to PMRU
            self._pos_t = self._tables.pos

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        if self._tables is not None:
            return self._victim_t[self._state[set_index]]
        return find_plru(self._state[set_index], self.assoc)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if self._tables is not None:
            self._state[set_index] = self._touch_t[
                (self._state[set_index] << self._shift) | way
            ]
            return
        self._state[set_index] = promote(self._state[set_index], way, self.assoc)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self.on_hit(set_index, way, ctx)

    def position_of(self, set_index: int, way: int) -> int:
        if self._tables is not None:
            return self._pos_t[(self._state[set_index] << self._shift) | way]
        return position(self._state[set_index], way, self.assoc)

    def state_bits_per_set(self) -> float:
        return self.assoc - 1


class GIPPRPolicy(ReplacementPolicy):
    """Genetic Insertion and Promotion for PseudoLRU Replacement (§3.4).

    A block re-referenced at PLRU position ``i`` has its position set to
    ``V[i]``; an incoming block's position is set to ``V[k]``.  Because
    ``set_position`` rewrites the leaf-to-root path bits, other blocks'
    positions shift in a more drastic way than under true LRU — the reason
    the paper evolves PLRU-specific vectors.
    """

    name = "gippr"

    def __init__(
        self, num_sets: int, assoc: int, ipv: IPV = None, kernel: str = "auto"
    ):
        super().__init__(num_sets, assoc)
        if ipv is None:
            from ..core.vectors import GIPPR_WI_VECTOR

            ipv = GIPPR_WI_VECTOR
        if ipv.k != assoc:
            raise ValueError(f"IPV is for {ipv.k}-way sets, cache is {assoc}-way")
        self.ipv = ipv
        self._promo = ipv.entries[:assoc]
        self._insert = ipv.entries[assoc]
        self._state: List[int] = [0] * num_sets
        self._tables = resolve_kernel(kernel, assoc, ipv.entries)
        self.kernel_mode = "lut" if self._tables is not None else "walk"
        if self._tables is not None:
            self._shift = self._tables.log2k
            self._victim_t = self._tables.victim
            self._hit_t = self._tables.hit
            self._fill_t = self._tables.fill
            self._pos_t = self._tables.pos

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        if self._tables is not None:
            return self._victim_t[self._state[set_index]]
        return find_plru(self._state[set_index], self.assoc)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        state = self._state[set_index]
        if self._tables is not None:
            self._state[set_index] = self._hit_t[(state << self._shift) | way]
            return
        pos = position(state, way, self.assoc)
        self._state[set_index] = set_position(
            state, way, self._promo[pos], self.assoc
        )

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if self._tables is not None:
            self._state[set_index] = self._fill_t[
                (self._state[set_index] << self._shift) | way
            ]
            return
        self._state[set_index] = set_position(
            self._state[set_index], way, self._insert, self.assoc
        )

    def position_of(self, set_index: int, way: int) -> int:
        if self._tables is not None:
            return self._pos_t[(self._state[set_index] << self._shift) | way]
        return position(self._state[set_index], way, self.assoc)

    def state_bits_per_set(self) -> float:
        return self.assoc - 1


class DGIPPRPolicy(ReplacementPolicy):
    """Dynamic GIPPR: set-dueling between evolved IPVs (Section 3.5).

    With two vectors a single 11-bit PSEL counter duels them (2-DGIPPR);
    with four, Loh-style multi-set dueling uses three 11-bit counters
    (4-DGIPPR).  Only one array of plru bits is kept per set regardless of
    the vector count, matching the paper's hardware budget of 15 bits per
    16-way set plus 33 counter bits per cache.

    With the LUT kernel, one composed hit/fill table pair is compiled per
    duelled vector; the bounded compile cache in :mod:`repro.kernels` makes
    repeated duels of the same published vector sets free.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        ipvs: Sequence[IPV] = None,
        leaders_per_policy: int = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
        kernel: str = "auto",
    ):
        super().__init__(num_sets, assoc)
        if ipvs is None:
            from ..core.vectors import DGIPPR4_WI_VECTORS

            ipvs = DGIPPR4_WI_VECTORS
        ipvs = list(ipvs)
        for ipv in ipvs:
            if ipv.k != assoc:
                raise ValueError(
                    f"IPV {ipv.name} is for {ipv.k}-way sets, cache is {assoc}-way"
                )
        self.ipvs = ipvs
        self.name = f"{len(ipvs)}-dgippr"
        self.selector = make_selector(
            num_sets, len(ipvs), leaders_per_policy, counter_bits, seed
        )
        self._counter_bits = counter_bits
        self._promos = [ipv.entries[:assoc] for ipv in ipvs]
        self._inserts = [ipv.entries[assoc] for ipv in ipvs]
        self._state: List[int] = [0] * num_sets
        # All-or-nothing table compilation: one composed pair per vector.
        table_sets = [resolve_kernel(kernel, assoc, ipv.entries) for ipv in ipvs]
        if all(t is not None for t in table_sets):
            self._tables = table_sets[0]
            self._shift = table_sets[0].log2k
            self._victim_t = table_sets[0].victim
            self._pos_t = table_sets[0].pos
            self._hit_ts = [t.hit for t in table_sets]
            self._fill_ts = [t.fill for t in table_sets]
            self.kernel_mode = "lut"
        else:
            self._tables = None
            self.kernel_mode = "walk"

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        if self._tables is not None:
            return self._victim_t[self._state[set_index]]
        return find_plru(self._state[set_index], self.assoc)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        ipv_index = self.selector.policy_for_set(set_index)
        state = self._state[set_index]
        if self._tables is not None:
            self._state[set_index] = self._hit_ts[ipv_index][
                (state << self._shift) | way
            ]
            return
        pos = position(state, way, self.assoc)
        self._state[set_index] = set_position(
            state, way, self._promos[ipv_index][pos], self.assoc
        )

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self.selector.record_miss(set_index)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        ipv_index = self.selector.policy_for_set(set_index)
        if self._tables is not None:
            self._state[set_index] = self._fill_ts[ipv_index][
                (self._state[set_index] << self._shift) | way
            ]
            return
        self._state[set_index] = set_position(
            self._state[set_index], way, self._inserts[ipv_index], self.assoc
        )

    def active_ipv(self) -> IPV:
        """The vector the follower sets currently run (introspection)."""
        return self.ipvs[self.selector.selected()]

    def position_of(self, set_index: int, way: int) -> int:
        if self._tables is not None:
            return self._pos_t[(self._state[set_index] << self._shift) | way]
        return position(self._state[set_index], way, self.assoc)

    def state_bits_per_set(self) -> float:
        return self.assoc - 1

    def global_state_bits(self) -> int:
        # One 11-bit counter for 2 vectors, three for 4 (Section 3.6); the
        # generalized bracket uses num_policies - 1 counters.
        return max(len(self.ipvs) - 1, 0) * self._counter_bits
