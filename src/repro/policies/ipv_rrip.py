"""IPVs adapted to the RRIP substrate (paper future work, item 5).

Section 7: "it may be adapted to other LRU-like algorithms such as RRIP."

An RRPV is a coarse recency class, not a unique position, so the natural
adaptation is a *re-reference vector* (RRV) over RRPV values: for a b-bit
RRPV there are ``2**b`` classes and the vector has ``2**b + 1`` entries —
``R[v]`` is the new RRPV of a block hit at RRPV ``v`` and ``R[2**b]`` is
the insertion RRPV.  Classic policies are special cases:

* SRRIP-HP: ``R = [0, 0, 0, 0, 2]``
* "distant insertion" (BRRIP's common case): ``R = [0, 0, 0, 0, 3]``

:class:`DynamicIPVRRIPPolicy` set-duels several RRVs, mirroring DGIPPR's
construction on the cheaper-but-coarser RRIP state (2 bits/block versus
DGIPPR's <1, but no tree walk).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.dueling import make_selector
from .base import AccessContext
from .rrip import _RRIPBase

__all__ = ["rrv_srrip", "rrv_distant", "IPVRRIPPolicy", "DynamicIPVRRIPPolicy"]


def _validate_rrv(entries: Sequence[int], rrpv_bits: int) -> Tuple[int, ...]:
    entries = tuple(int(e) for e in entries)
    classes = 1 << rrpv_bits
    if len(entries) != classes + 1:
        raise ValueError(
            f"RRV for {rrpv_bits}-bit RRPVs needs {classes + 1} entries, "
            f"got {len(entries)}"
        )
    for i, e in enumerate(entries):
        if not 0 <= e < classes:
            raise ValueError(f"RRV entry R[{i}]={e} out of range 0..{classes - 1}")
    return entries


def rrv_srrip(rrpv_bits: int = 2) -> Tuple[int, ...]:
    """The RRV equivalent of SRRIP-HP: hits to 0, insert at max-1."""
    classes = 1 << rrpv_bits
    return tuple([0] * classes + [classes - 2])


def rrv_distant(rrpv_bits: int = 2) -> Tuple[int, ...]:
    """Hits to 0, insert at the distant RRPV (thrash-resistant)."""
    classes = 1 << rrpv_bits
    return tuple([0] * classes + [classes - 1])


class IPVRRIPPolicy(_RRIPBase):
    """A static re-reference vector on RRIP state."""

    name = "ipv-rrip"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrv: Sequence[int] = None,
        rrpv_bits: int = 2,
    ):
        super().__init__(num_sets, assoc, rrpv_bits)
        if rrv is None:
            rrv = rrv_srrip(rrpv_bits)
        self.rrv = _validate_rrv(rrv, rrpv_bits)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        rrpv = self._rrpv[set_index]
        rrpv[way] = self.rrv[rrpv[way]]

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._fill(set_index, way, self.rrv[-1])


class DynamicIPVRRIPPolicy(_RRIPBase):
    """Set-dueling between re-reference vectors (DGIPPR on RRIP state).

    With ``[rrv_srrip(), rrv_distant()]`` this is a deterministic cousin of
    DRRIP; evolved RRVs generalize it the way GIPPR generalizes PLRU.
    """

    name = "dipv-rrip"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrvs: Sequence[Sequence[int]] = None,
        rrpv_bits: int = 2,
        leaders_per_policy: int = None,
        counter_bits: int = 11,
        seed: int = 0xD1CE,
    ):
        super().__init__(num_sets, assoc, rrpv_bits)
        if rrvs is None:
            rrvs = [rrv_srrip(rrpv_bits), rrv_distant(rrpv_bits)]
        self.rrvs: List[Tuple[int, ...]] = [
            _validate_rrv(rrv, rrpv_bits) for rrv in rrvs
        ]
        self.name = f"{len(self.rrvs)}-dipv-rrip"
        self.selector = make_selector(
            num_sets, len(self.rrvs), leaders_per_policy, counter_bits, seed
        )
        self._counter_bits = counter_bits

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        rrv = self.rrvs[self.selector.policy_for_set(set_index)]
        rrpv = self._rrpv[set_index]
        rrpv[way] = rrv[rrpv[way]]

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self.selector.record_miss(set_index)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        rrv = self.rrvs[self.selector.policy_for_set(set_index)]
        self._fill(set_index, way, rrv[-1])

    def active_rrv(self) -> Tuple[int, ...]:
        return self.rrvs[self.selector.selected()]

    def global_state_bits(self) -> int:
        return max(len(self.rrvs) - 1, 0) * self._counter_bits
