"""Protecting Distance based Policy (Duong et al., MICRO 2012).

PDP protects each line from eviction for a *protecting distance* (PD): a
number of accesses to the line's set.  The PD is recomputed periodically
from a reuse-distance histogram by maximizing a hit-rate-per-occupancy
estimate — the job the original design gives to a small microcontroller,
performed here in plain Python (Section 4.7 of the reproduced paper notes
PDP's extra state and microcontroller cost; our overhead accounting reflects
that).

This is the reproduced paper's configuration: **4 bits per block, no
bypass**.

Mechanics
---------
* Every line has a quantized remaining-protecting-distance (RPD) counter.
* On a fill or hit the RPD is reset to the quantized PD.
* Every ``step`` accesses to a set, all RPDs in the set decay by one; a line
  with RPD 0 is unprotected.
* The victim is an unprotected line if one exists.  When every line is
  still protected, the *youngest* line (highest RPD) is evicted: older
  protected lines are closer to their predicted reuse, and churning the
  newcomer is what lets a protected working set survive thrash without
  bypassing (the incoming line immediately becomes the next victim
  candidate, like LRU-position insertion).

The reuse-distance histogram is collected from a deterministic sample of
sets, measured in set accesses — the unit PD is defined over.
"""

from __future__ import annotations

from typing import Dict, List

from .base import AccessContext, ReplacementPolicy

__all__ = ["PDPPolicy", "compute_protecting_distance"]


def compute_protecting_distance(
    histogram: List[int],
    default_pd: int,
    line_fill_cost: float = 1.0,
) -> int:
    """Choose the PD maximizing estimated hits per unit line occupancy.

    For candidate distance ``d``, accesses with reuse distance ``i <= d``
    hit and occupy the line for ``i`` set accesses; the rest miss and hold
    the line for the full ``d`` (plus a fill).  The estimator

    ``E(d) = hits(d) / (sum_{i<=d} N_i * i + (N_total - hits(d)) * (d + c))``

    is the non-bypass form of Duong et al.'s protecting-distance benefit
    function.  Returns ``default_pd`` when the histogram is empty.
    """
    total = sum(histogram)
    if total == 0:
        return default_pd
    best_d = default_pd
    best_e = -1.0
    hits = 0
    occupancy = 0.0
    for d in range(1, len(histogram)):
        count = histogram[d]
        hits += count
        occupancy += count * d
        if hits == 0:
            continue
        denom = occupancy + (total - hits) * (d + line_fill_cost)
        e = hits / denom
        if e > best_e:
            best_e = e
            best_d = d
    return best_d


class PDPPolicy(ReplacementPolicy):
    """Protecting Distance Policy without bypass, 4 bits per block."""

    name = "pdp"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        counter_bits: int = 4,
        max_distance: int = 256,
        recompute_interval: int = 512,
        sampled_set_stride: int = 4,
        default_pd: int = 17,
    ):
        super().__init__(num_sets, assoc)
        if counter_bits < 2:
            raise ValueError("PDP needs at least 2 counter bits")
        self.counter_bits = counter_bits
        self.max_rpd = (1 << counter_bits) - 1
        self.max_distance = max_distance
        self.recompute_interval = recompute_interval
        self.sampled_set_stride = sampled_set_stride
        self.pd = default_pd
        self._default_pd = default_pd
        self._rpd: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._set_accesses: List[int] = [0] * num_sets
        self._decay_tick: List[int] = [0] * num_sets
        # Per sampled set: block address -> set-access count at last touch.
        self._last_touch: Dict[int, Dict[int, int]] = {
            s: {} for s in range(0, num_sets, sampled_set_stride)
        }
        self._histogram: List[int] = [0] * (max_distance + 1)
        self._samples_since_recompute = 0
        self.recompute_count = 0

    # ------------------------------------------------------------------
    # Quantization: the RPD counter has few bits, so it decays once every
    # ``step`` set accesses instead of every access.
    # ------------------------------------------------------------------
    @property
    def step(self) -> int:
        """Set accesses per RPD decay tick (ceil(PD / max counter))."""
        return max(1, -(-self.pd // self.max_rpd))

    def _quantized_pd(self) -> int:
        return min(self.max_rpd, -(-self.pd // self.step))

    def _tick_and_observe(self, set_index: int, ctx: AccessContext) -> None:
        """Advance the set clock, decay RPDs, and sample reuse distance."""
        self._set_accesses[set_index] += 1
        self._decay_tick[set_index] += 1
        if self._decay_tick[set_index] >= self.step:
            self._decay_tick[set_index] = 0
            rpd = self._rpd[set_index]
            for way in range(self.assoc):
                if rpd[way] > 0:
                    rpd[way] -= 1
        sampler = self._last_touch.get(set_index)
        if sampler is None:
            return
        now = self._set_accesses[set_index]
        last = sampler.get(ctx.block)
        if last is not None:
            distance = min(now - last, self.max_distance)
            self._histogram[distance] += 1
        sampler[ctx.block] = now
        self._samples_since_recompute += 1
        if self._samples_since_recompute >= self.recompute_interval:
            self._recompute()

    def _recompute(self) -> None:
        self.pd = compute_protecting_distance(self._histogram, self._default_pd)
        self.recompute_count += 1
        self._samples_since_recompute = 0
        # Exponential decay so the PD tracks phase changes.
        self._histogram = [n >> 1 for n in self._histogram]

    # ------------------------------------------------------------------
    # Policy hooks.
    # ------------------------------------------------------------------
    def victim(self, set_index: int, ctx: AccessContext) -> int:
        rpd = self._rpd[set_index]
        # Prefer any unprotected line (scan for RPD 0)...
        youngest_way = 0
        youngest_rpd = rpd[0]
        for way in range(self.assoc):
            value = rpd[way]
            if value == 0:
                return way
            if value > youngest_rpd:
                youngest_rpd = value
                youngest_way = way
        # ...else evict the youngest protected line (highest RPD).
        return youngest_way

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._tick_and_observe(set_index, ctx)
        self._rpd[set_index][way] = self._quantized_pd()

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self._tick_and_observe(set_index, ctx)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._rpd[set_index][way] = self._quantized_pd()

    def state_bits_per_set(self) -> float:
        return self.counter_bits * self.assoc

    def global_state_bits(self) -> int:
        # RD sampler histogram (16 bits per bucket) + PD register; the
        # original design also spends ~10K NAND gates of microcontroller,
        # which has no bit equivalent and is noted in overhead reports.
        return 16 * (self.max_distance + 1) + 8
