"""DGIPPR combined with a bypass predictor (paper future work, item 1).

Section 7: "The low overhead of GIPPR/DGIPPR may allow it to be combined
with other policies ... we are investigating combining DGIPPR with a
predictor that decides whether a block should bypass the cache."

This extension attaches a SHiP-style dead-on-arrival predictor to DGIPPR:
a table of saturating counters indexed by a hash of the accessing PC.  A
block whose signature has never produced a hit is *bypassed* on a miss to
a full set — it is counted but not allocated, so it cannot displace live
data.  Everything else behaves exactly like :class:`DGIPPRPolicy`.

Like bypassing PDP (Section 6.3), this variant is unsuitable for inclusive
hierarchies; the cache enforces nothing, but see
:meth:`~repro.policies.base.ReplacementPolicy.should_bypass`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.ipv import IPV
from .base import AccessContext
from .plru import DGIPPRPolicy

__all__ = ["BypassDGIPPRPolicy"]


class BypassDGIPPRPolicy(DGIPPRPolicy):
    """4-DGIPPR plus a PC-signature dead-block bypass predictor."""

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        ipvs: Sequence[IPV] = None,
        signature_bits: int = 12,
        counter_bits: int = 2,
        **dgippr_kwargs,
    ):
        super().__init__(num_sets, assoc, ipvs=ipvs, **dgippr_kwargs)
        self.name = f"bypass-{self.name}"
        self.signature_bits = signature_bits
        self._sig_mask = (1 << signature_bits) - 1
        self._shct_max = (1 << counter_bits) - 1
        self._shct_counter_bits = counter_bits
        # Start counters at 1 ("probably reused") so bypass only triggers
        # after a signature has demonstrably produced dead blocks.
        self._shct: List[int] = [1] * (1 << signature_bits)
        self._sig: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._reused: List[List[bool]] = [
            [True] * assoc for _ in range(num_sets)
        ]

    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> self.signature_bits)) & self._sig_mask

    def should_bypass(self, set_index: int, ctx: AccessContext) -> bool:
        return self._shct[self._signature(ctx.pc)] == 0

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        super().on_hit(set_index, way, ctx)
        if not self._reused[set_index][way]:
            self._reused[set_index][way] = True
            sig = self._sig[set_index][way]
            if self._shct[sig] < self._shct_max:
                self._shct[sig] += 1

    def on_evict(self, set_index: int, way: int, ctx: AccessContext) -> None:
        super().on_evict(set_index, way, ctx)
        if not self._reused[set_index][way]:
            sig = self._sig[set_index][way]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        super().on_fill(set_index, way, ctx)
        self._sig[set_index][way] = self._signature(ctx.pc)
        self._reused[set_index][way] = False

    def state_bits_per_set(self) -> float:
        # DGIPPR's plru bits plus signature + reuse bit per block.
        return (self.assoc - 1) + (self.signature_bits + 1) * self.assoc

    def global_state_bits(self) -> int:
        return super().global_state_bits() + self._shct_counter_bits * (
            1 << self.signature_bits
        )
