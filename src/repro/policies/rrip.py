"""Re-Reference Interval Prediction policies (Jaleel et al., ISCA 2010).

The paper's headline comparison point (Section 4.7): DRRIP set-duels between
SRRIP and BRRIP and was, at publication time, the most storage-efficient
high-performance replacement scheme — 2 bits per block, which DGIPPR halves.

* SRRIP-HP: insert with RRPV = max-1 ("long re-reference"), reset RRPV to 0
  on hit, evict a block with RRPV = max (aging all blocks until one exists).
* BRRIP: like SRRIP but usually inserts at max ("distant"), inserting long
  only with probability 1/32.
* DRRIP: set-duels SRRIP vs BRRIP leader sets with a 10-bit PSEL.
"""

from __future__ import annotations

from typing import List

from ..core.dueling import DuelSelector
from .base import AccessContext, ReplacementPolicy

__all__ = ["SRRIPPolicy", "BRRIPPolicy", "DRRIPPolicy"]

#: BRRIP inserts with "long" (max-1) RRPV once every 32 fills.
BRRIP_LONG_INTERVAL = 32


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV array and victim-selection logic.

    ``hit_priority`` selects between the RRIP paper's two hit promotions:
    HP resets a hit block's RRPV to 0 (near-immediate), FP (frequency
    priority) only decrements it — blocks must earn protection through
    repeated hits.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrpv_bits: int = 2,
        hit_priority: bool = True,
    ):
        super().__init__(num_sets, assoc)
        if rrpv_bits < 1:
            raise ValueError("rrpv_bits must be >= 1")
        self.rrpv_bits = rrpv_bits
        self.hit_priority = hit_priority
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = [
            [self.max_rrpv] * assoc for _ in range(num_sets)
        ]

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        rrpv = self._rrpv[set_index]
        max_rrpv = self.max_rrpv
        while True:
            for way, value in enumerate(rrpv):
                if value == max_rrpv:
                    return way
            # Age everyone until a distant block appears.
            for way in range(self.assoc):
                rrpv[way] += 1

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if self.hit_priority:
            # HP: promote to near-immediate re-reference.
            self._rrpv[set_index][way] = 0
        else:
            # FP: step one class closer per hit.
            rrpv = self._rrpv[set_index]
            if rrpv[way] > 0:
                rrpv[way] -= 1

    def _fill(self, set_index: int, way: int, insert_rrpv: int) -> None:
        self._rrpv[set_index][way] = insert_rrpv

    def rrpv_of(self, set_index: int, way: int) -> int:
        return self._rrpv[set_index][way]

    def state_bits_per_set(self) -> float:
        return self.rrpv_bits * self.assoc


class SRRIPPolicy(_RRIPBase):
    """Static RRIP with hit priority: insert at max-1."""

    name = "srrip"

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._fill(set_index, way, self.max_rrpv - 1)


class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: insert distant, occasionally long.

    A deterministic modulo counter stands in for the low-probability coin,
    which keeps runs reproducible (the common hardware implementation also
    uses a simple counter).
    """

    name = "brrip"

    def __init__(self, num_sets: int, assoc: int, rrpv_bits: int = 2):
        super().__init__(num_sets, assoc, rrpv_bits)
        self._fill_count = 0

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._fill_count += 1
        if self._fill_count % BRRIP_LONG_INTERVAL == 0:
            self._fill(set_index, way, self.max_rrpv - 1)
        else:
            self._fill(set_index, way, self.max_rrpv)


class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion."""

    name = "drrip"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrpv_bits: int = 2,
        leaders_per_policy: int = None,
        psel_bits: int = 10,
        seed: int = 0xD881,
    ):
        super().__init__(num_sets, assoc, rrpv_bits)
        # Policy 0 = SRRIP, policy 1 = BRRIP.
        self.selector = DuelSelector(
            num_sets, leaders_per_policy, psel_bits, seed=seed
        )
        self._psel_bits = psel_bits
        self._fill_count = 0

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self.selector.record_miss(set_index)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if self.selector.policy_for_set(set_index) == 0:
            self._fill(set_index, way, self.max_rrpv - 1)
        else:
            self._fill_count += 1
            if self._fill_count % BRRIP_LONG_INTERVAL == 0:
                self._fill(set_index, way, self.max_rrpv - 1)
            else:
                self._fill(set_index, way, self.max_rrpv)

    def global_state_bits(self) -> int:
        return self._psel_bits
