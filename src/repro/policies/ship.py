"""Signature-based Hit Predictor (SHiP-PC; Wu et al., MICRO 2011).

Discussed in the reproduced paper's related work (Section 6.3): SHiP
improves DRRIP by predicting, per memory-instruction signature, whether an
incoming block will be re-referenced, and inserting predicted-dead blocks at
the distant RRPV.  It costs more state than DRRIP (signature + outcome bit
per block plus the SHCT) and requires the access PC at the LLC.

Included as the "extension" comparison point beyond the paper's headline
baselines.
"""

from __future__ import annotations

from typing import List

from .base import AccessContext
from .rrip import _RRIPBase

__all__ = ["SHiPPolicy"]


class SHiPPolicy(_RRIPBase):
    """SHiP-PC on an SRRIP-HP substrate."""

    name = "ship"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        rrpv_bits: int = 2,
        signature_bits: int = 14,
        shct_counter_bits: int = 2,
    ):
        super().__init__(num_sets, assoc, rrpv_bits)
        self.signature_bits = signature_bits
        self.shct_counter_bits = shct_counter_bits
        self._shct_max = (1 << shct_counter_bits) - 1
        self._shct: List[int] = [1] * (1 << signature_bits)
        self._sig: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._outcome: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]

    def _signature(self, pc: int) -> int:
        mask = (1 << self.signature_bits) - 1
        return (pc ^ (pc >> self.signature_bits)) & mask

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        super().on_hit(set_index, way, ctx)  # RRPV = 0
        if not self._outcome[set_index][way]:
            self._outcome[set_index][way] = True
            sig = self._sig[set_index][way]
            if self._shct[sig] < self._shct_max:
                self._shct[sig] += 1

    def on_evict(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if not self._outcome[set_index][way]:
            sig = self._sig[set_index][way]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        sig = self._signature(ctx.pc)
        self._sig[set_index][way] = sig
        self._outcome[set_index][way] = False
        if self._shct[sig] == 0:
            self._fill(set_index, way, self.max_rrpv)  # predicted dead
        else:
            self._fill(set_index, way, self.max_rrpv - 1)

    def state_bits_per_set(self) -> float:
        # RRPV + signature + outcome bit per block.
        return (self.rrpv_bits + self.signature_bits + 1) * self.assoc

    def global_state_bits(self) -> int:
        return self.shct_counter_bits * (1 << self.signature_bits)
