"""Sampling Dead Block Prediction (Khan, Tian & Jiménez, MICRO 2010).

Cited in the reproduced paper's related work (Section 6.3): dead-block
prediction can drive replacement by evicting predicted-dead blocks first,
but "the implementation is costly in terms of state and/or the requirement
that the address of memory instructions be passed to the LLC" — the cost
DGIPPR avoids.  Implementing it makes that comparison concrete.

Design (faithful to the original at reduced scale):

* a *sampler*: a handful of shadow sets with their own small-associativity
  LRU tag array, observing the accesses that map to sampled cache sets;
* a *skewed predictor*: three hashed tables of saturating counters indexed
  by the PC; a sampler eviction without reuse trains the last-touching PC
  toward "dead", a sampler hit trains it toward "live";
* the main cache stores one predicted-dead bit per block (set at fill and
  refreshed on hit) and the victim search prefers predicted-dead blocks,
  falling back to tree-PLRU order when none is predicted dead.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.plru import find_plru, promote
from .base import AccessContext, ReplacementPolicy

__all__ = ["SDBPPolicy"]


class _SamplerEntry:
    __slots__ = ("tag", "pc", "lru", "valid")

    def __init__(self):
        self.tag = 0
        self.pc = 0
        self.lru = 0
        self.valid = False


class _SkewedPredictor:
    """Three hashed tables of 2-bit counters; sum vs threshold decides."""

    def __init__(self, table_bits: int = 12, counter_bits: int = 2,
                 threshold: int = 8):
        self.table_bits = table_bits
        self.size = 1 << table_bits
        self.max_value = (1 << counter_bits) - 1
        # Encourage "live" initially: all zeros (dead sum needs training).
        self.tables: List[List[int]] = [[0] * self.size for _ in range(3)]
        self.threshold = threshold
        self._salts = (0x9E37, 0x85EB, 0xC2B2)

    def _indices(self, pc: int):
        for salt in self._salts:
            yield ((pc * salt) ^ (pc >> self.table_bits)) & (self.size - 1)

    def train(self, pc: int, dead: bool) -> None:
        for table, index in zip(self.tables, self._indices(pc)):
            if dead:
                if table[index] < self.max_value:
                    table[index] += 1
            elif table[index] > 0:
                table[index] -= 1

    def predict_dead(self, pc: int) -> bool:
        total = sum(
            table[index]
            for table, index in zip(self.tables, self._indices(pc))
        )
        return total >= self.threshold

    def state_bits(self) -> int:
        counter_bits = self.max_value.bit_length()
        return 3 * self.size * counter_bits


class SDBPPolicy(ReplacementPolicy):
    """Dead-block-driven replacement on a tree-PLRU substrate."""

    name = "sdbp"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        sampler_sets: int = 8,
        sampler_assoc: int = 12,
        sampler_stride: Optional[int] = None,
        table_bits: int = 12,
        threshold: int = 8,
    ):
        super().__init__(num_sets, assoc)
        self._plru: List[int] = [0] * num_sets
        self._dead: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self.predictor = _SkewedPredictor(
            table_bits=table_bits, threshold=threshold
        )
        if sampler_stride is None:
            sampler_stride = max(1, num_sets // sampler_sets)
        self.sampler_stride = sampler_stride
        self.sampler_assoc = sampler_assoc
        self._sampler: dict = {}
        for s in range(0, num_sets, sampler_stride):
            self._sampler[s] = [
                _SamplerEntry() for _ in range(sampler_assoc)
            ]
        self._sampler_clock = 0

    # ------------------------------------------------------------------
    # Sampler.
    # ------------------------------------------------------------------
    def _observe(self, set_index: int, ctx: AccessContext) -> None:
        entries = self._sampler.get(set_index)
        if entries is None:
            return
        self._sampler_clock += 1
        tag = ctx.block
        victim = None
        oldest = None
        for entry in entries:
            if entry.valid and entry.tag == tag:
                # Sampler hit: the previous toucher's blocks get reused.
                self.predictor.train(entry.pc, dead=False)
                entry.pc = ctx.pc
                entry.lru = self._sampler_clock
                return
            if not entry.valid:
                victim = victim or entry
            elif oldest is None or entry.lru < oldest.lru:
                oldest = entry
        entry = victim or oldest
        if entry.valid:
            # Evicted from the sampler without reuse: train dead.
            self.predictor.train(entry.pc, dead=True)
        entry.valid = True
        entry.tag = tag
        entry.pc = ctx.pc
        entry.lru = self._sampler_clock

    # ------------------------------------------------------------------
    # Policy hooks.
    # ------------------------------------------------------------------
    def victim(self, set_index: int, ctx: AccessContext) -> int:
        dead = self._dead[set_index]
        for way in range(self.assoc):
            if dead[way]:
                return way
        return find_plru(self._plru[set_index], self.assoc)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._observe(set_index, ctx)
        self._plru[set_index] = promote(self._plru[set_index], way, self.assoc)
        self._dead[set_index][way] = self.predictor.predict_dead(ctx.pc)

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self._observe(set_index, ctx)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._plru[set_index] = promote(self._plru[set_index], way, self.assoc)
        self._dead[set_index][way] = self.predictor.predict_dead(ctx.pc)

    # ------------------------------------------------------------------
    # Storage accounting: the Section 6.3 point — SDBP needs much more
    # state than DGIPPR plus the PC at the LLC.
    # ------------------------------------------------------------------
    def state_bits_per_set(self) -> float:
        return (self.assoc - 1) + self.assoc  # plru bits + dead bit per block

    def global_state_bits(self) -> int:
        sampler_entry_bits = 16 + 16 + 8 + 1  # partial tag, PC sig, lru, valid
        sampler_bits = (
            len(self._sampler) * self.sampler_assoc * sampler_entry_bits
        )
        return sampler_bits + self.predictor.state_bits()
