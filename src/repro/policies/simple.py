"""Simple baseline policies: random and FIFO.

Random replacement appears throughout the paper as the sobering baseline —
on geomean it performs within 0.1 % of true LRU (Figure 4) — and FIFO is the
other classic from the literature (Section 6).
"""

from __future__ import annotations

import random
from typing import List

from .base import AccessContext, ReplacementPolicy

__all__ = ["RandomPolicy", "FIFOPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection; deterministic under a fixed seed."""

    name = "random"

    def __init__(self, num_sets: int, assoc: int, seed: int = 0xC0FFEE):
        super().__init__(num_sets, assoc)
        self._rng = random.Random(seed)

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return self._rng.randrange(self.assoc)

    def state_bits_per_set(self) -> float:
        return 0.0

    def global_state_bits(self) -> int:
        # A hardware PRNG: model it as one 16-bit LFSR.
        return 16


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest fill, ignore hits."""

    name = "fifo"

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc)
        self._next: List[int] = [0] * num_sets

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return self._next[set_index]

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        # Track fill order even for cold fills so the pointer stays aligned
        # with the oldest block.
        self._next[set_index] = (way + 1) % self.assoc

    def state_bits_per_set(self) -> float:
        import math

        return math.log2(self.assoc)
