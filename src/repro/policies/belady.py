"""Belady's MIN optimal replacement (Belady, 1966).

Evicts the resident block whose next use lies farthest in the future.  It is
unimplementable in hardware (it needs the future) but bounds how much any
practical policy can improve: the reproduced paper measures MIN at 67.5 % of
LRU's misses (Figure 10), against 91.0 % for WN1-4-DGIPPR.

The driver must annotate each access with its next-use index (see
:func:`repro.trace.annotate_next_use`); :class:`BeladyPolicy` advertises
``requires_future`` so runners know to do this.
"""

from __future__ import annotations

import math
from typing import List

from .base import AccessContext, ReplacementPolicy

__all__ = ["BeladyPolicy"]

_NEVER = math.inf


class BeladyPolicy(ReplacementPolicy):
    """MIN: evict the block referenced farthest in the future."""

    name = "belady"
    requires_future = True

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc)
        self._next_use: List[List[float]] = [
            [_NEVER] * assoc for _ in range(num_sets)
        ]

    def _record(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if ctx.next_use is None:
            raise RuntimeError(
                "BeladyPolicy needs next-use annotations; run the trace "
                "through repro.trace.annotate_next_use first"
            )
        self._next_use[set_index][way] = (
            _NEVER if ctx.next_use < 0 else ctx.next_use
        )

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        next_use = self._next_use[set_index]
        best_way = 0
        best = next_use[0]
        for way in range(1, self.assoc):
            value = next_use[way]
            if value > best:
                best = value
                best_way = way
                if best == _NEVER:
                    break
        return best_way

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._record(set_index, way, ctx)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._record(set_index, way, ctx)

    def state_bits_per_set(self) -> float:
        # Not physically realizable; reported as NaN in overhead tables.
        return math.nan
