"""Counter-based replacement (Kharbutli & Solihin, IEEE TC 2008).

Reference [17] of the reproduced paper: each block counts events (accesses
to its set) since its last touch; when the count exceeds a threshold
learned for the block's accessing instruction, the block is predicted dead
and becomes an eviction candidate.  This is the AIP (access-interval
predictor) flavour, simplified to one hashed prediction table.

Included to round out the related-work baselines: like SDBP and SHiP it
needs the PC at the LLC and per-block counters — more state than the
paper's DGIPPR, the recurring trade-off in Section 6.
"""

from __future__ import annotations

from typing import List

from ..core.plru import find_plru, promote
from .base import AccessContext, ReplacementPolicy

__all__ = ["CounterBasedPolicy"]


class CounterBasedPolicy(ReplacementPolicy):
    """AIP-style counter-based dead-block replacement on tree PLRU."""

    name = "counter"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        counter_bits: int = 5,
        table_bits: int = 12,
        threshold_slack: int = 1,
    ):
        super().__init__(num_sets, assoc)
        self.counter_max = (1 << counter_bits) - 1
        self.counter_bits = counter_bits
        self.table_bits = table_bits
        self.threshold_slack = threshold_slack
        self._plru: List[int] = [0] * num_sets
        # Per block: events since last touch, max interval seen this
        # lifetime, owning PC signature.
        self._count: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._max_interval: List[List[int]] = [
            [0] * assoc for _ in range(num_sets)
        ]
        self._sig: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        # Learned access-interval thresholds per PC signature.
        size = 1 << table_bits
        self._threshold: List[int] = [self.counter_max] * size

    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> self.table_bits)) & ((1 << self.table_bits) - 1)

    def _tick(self, set_index: int, exclude: int = -1) -> None:
        counts = self._count[set_index]
        for way in range(self.assoc):
            if way != exclude and counts[way] < self.counter_max:
                counts[way] += 1

    def _expired(self, set_index: int, way: int) -> bool:
        sig = self._sig[set_index][way]
        return self._count[set_index][way] > (
            self._threshold[sig] + self.threshold_slack
        )

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        for way in range(self.assoc):
            if self._expired(set_index, way):
                return way
        return find_plru(self._plru[set_index], self.assoc)

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._tick(set_index, exclude=way)
        interval = self._count[set_index][way]
        if interval > self._max_interval[set_index][way]:
            self._max_interval[set_index][way] = interval
        self._count[set_index][way] = 0
        self._sig[set_index][way] = self._signature(ctx.pc)
        self._plru[set_index] = promote(self._plru[set_index], way, self.assoc)

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self._tick(set_index)

    def on_evict(self, set_index: int, way: int, ctx: AccessContext) -> None:
        # Learn: the block's observed maximum access interval becomes the
        # threshold for its PC (exponential approach, as in AIP).
        sig = self._sig[set_index][way]
        observed = self._max_interval[set_index][way]
        current = self._threshold[sig]
        self._threshold[sig] = (current + observed + 1) // 2

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._count[set_index][way] = 0
        self._max_interval[set_index][way] = 0
        self._sig[set_index][way] = self._signature(ctx.pc)
        self._plru[set_index] = promote(self._plru[set_index], way, self.assoc)

    def state_bits_per_set(self) -> float:
        per_block = 2 * self.counter_bits + self.table_bits
        return (self.assoc - 1) + per_block * self.assoc

    def global_state_bits(self) -> int:
        return self.counter_bits * (1 << self.table_bits)
