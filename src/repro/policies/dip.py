"""Dynamic Insertion Policy (Qureshi et al., ISCA 2007).

DIP is the intellectual ancestor of the paper's approach (Section 6.1): it
duels classic MRU insertion against the Bimodal Insertion Policy (BIP),
which usually inserts at LRU and only rarely at MRU.  Promotion is always to
MRU; only the *insertion* position adapts.  DIP sits on top of full LRU
stacks, so it pays LRU's ``k log2 k`` bits per set — the storage cost the
paper's PLRU-based DGIPPR eliminates.

LIP (LRU Insertion Policy) is also exposed as a static policy.
"""

from __future__ import annotations

import math

from ..core.dueling import DuelSelector
from ..core.ipv import lip_ipv, lru_ipv
from ..core.recency import RecencyStack
from .base import AccessContext, ReplacementPolicy
from .lru import IPVLRUPolicy

__all__ = ["LIPPolicy", "BIPPolicy", "DIPPolicy", "BIP_MRU_INTERVAL"]

#: BIP inserts at MRU once every 32 fills (the 1/32 "bimodal throttle").
BIP_MRU_INTERVAL = 32


class LIPPolicy(IPVLRUPolicy):
    """LRU Insertion Policy: insert at LRU, promote to MRU on hit."""

    name = "lip"

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc, lip_ipv(assoc))


class BIPPolicy(ReplacementPolicy):
    """Bimodal Insertion Policy: insert at LRU, rarely at MRU."""

    name = "bip"

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc)
        ipv = lru_ipv(assoc)
        self._stacks = [RecencyStack(assoc, ipv) for _ in range(num_sets)]
        self._fill_count = 0

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return self._stacks[set_index].victim()

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._stacks[set_index].touch(way)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._fill_count += 1
        if self._fill_count % BIP_MRU_INTERVAL == 0:
            self._stacks[set_index].place(way, 0)
        else:
            self._stacks[set_index].place(way, self.assoc - 1)

    def state_bits_per_set(self) -> float:
        return self.assoc * math.log2(self.assoc)


class DIPPolicy(ReplacementPolicy):
    """DIP: set-dueling between MRU insertion (LRU) and BIP."""

    name = "dip"

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        leaders_per_policy: int = None,
        psel_bits: int = 10,
        seed: int = 0xD1B,
    ):
        super().__init__(num_sets, assoc)
        ipv = lru_ipv(assoc)
        self._stacks = [RecencyStack(assoc, ipv) for _ in range(num_sets)]
        # Policy 0 = classic MRU insertion, policy 1 = BIP.
        self.selector = DuelSelector(num_sets, leaders_per_policy, psel_bits, seed)
        self._psel_bits = psel_bits
        self._fill_count = 0

    def victim(self, set_index: int, ctx: AccessContext) -> int:
        return self._stacks[set_index].victim()

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        self._stacks[set_index].touch(way)

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        self.selector.record_miss(set_index)

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        if self.selector.policy_for_set(set_index) == 0:
            self._stacks[set_index].place(way, 0)
            return
        self._fill_count += 1
        if self._fill_count % BIP_MRU_INTERVAL == 0:
            self._stacks[set_index].place(way, 0)
        else:
            self._stacks[set_index].place(way, self.assoc - 1)

    def state_bits_per_set(self) -> float:
        return self.assoc * math.log2(self.assoc)

    def global_state_bits(self) -> int:
        return self._psel_bits
