"""Replacement-policy interface.

A policy manages the per-set replacement state of a set-associative cache.
The cache (see :mod:`repro.cache.cache`) owns tags and validity; the policy
only decides victims and reacts to hits, fills, misses and evictions.

The hooks, in the order the cache invokes them for one access:

* hit:   ``on_hit(set_index, way, ctx)``
* miss:  ``on_miss(set_index, ctx)`` →
  (if the set is full) ``victim(set_index, ctx)`` →
  ``on_evict(set_index, way, ctx)`` → ``on_fill(set_index, way, ctx)``

``ctx`` is a reused :class:`AccessContext` carrying side-channel information
some policies need (the PC for SHiP, the next-use time for Belady's MIN).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AccessContext", "ReplacementPolicy"]


class AccessContext:
    """Per-access side information passed to policy hooks.

    The driving cache reuses one instance per cache, mutating the fields for
    every access, so policies must not retain references past the hook call
    (copy the values they need instead).
    """

    __slots__ = ("pc", "is_write", "next_use", "access_index", "block")

    def __init__(self):
        self.pc = 0
        self.is_write = False
        self.next_use: Optional[int] = None
        self.access_index = 0
        self.block = 0  # block address of the current access


class ReplacementPolicy:
    """Base class with no-op hooks.

    Subclasses must implement :meth:`victim` and usually :meth:`on_hit` /
    :meth:`on_fill`.  ``name`` is a class-level label used by the registry
    and reports.
    """

    name = "base"

    def __init__(self, num_sets: int, assoc: int):
        if num_sets < 1:
            raise ValueError(f"num_sets must be positive, got {num_sets}")
        if assoc < 1:
            raise ValueError(f"assoc must be positive, got {assoc}")
        self.num_sets = num_sets
        self.assoc = assoc

    # ------------------------------------------------------------------
    # Hooks.
    # ------------------------------------------------------------------
    def victim(self, set_index: int, ctx: AccessContext) -> int:
        """Way to evict from a full set.  Must be overridden."""
        raise NotImplementedError

    def on_hit(self, set_index: int, way: int, ctx: AccessContext) -> None:
        """A resident block in ``way`` was re-referenced."""

    def on_fill(self, set_index: int, way: int, ctx: AccessContext) -> None:
        """An incoming block was placed in ``way`` (after any eviction)."""

    def on_miss(self, set_index: int, ctx: AccessContext) -> None:
        """The access missed (called for every miss, full set or not)."""

    def on_evict(self, set_index: int, way: int, ctx: AccessContext) -> None:
        """A valid block is about to be evicted from ``way``."""

    def should_bypass(self, set_index: int, ctx: AccessContext) -> bool:
        """Return True to leave a missing block unallocated.

        Called after :meth:`on_miss` and only when the set is full.  Bypass
        violates inclusion (Section 6.3's caveat about PDP), so inclusive
        hierarchies should not be combined with bypassing policies.
        """
        return False

    # ------------------------------------------------------------------
    # Storage accounting (Section 3.6 comparisons).
    # ------------------------------------------------------------------
    def state_bits_per_set(self) -> float:
        """Replacement-state bits stored per cache set."""
        raise NotImplementedError

    def global_state_bits(self) -> int:
        """Replacement-state bits stored once per cache (e.g. PSEL counters)."""
        return 0

    def total_state_bits(self) -> float:
        return self.state_bits_per_set() * self.num_sets + self.global_state_bits()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(sets={self.num_sets}, assoc={self.assoc})"
