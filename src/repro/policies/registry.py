"""Policy registry: build any policy by name.

The registry is how benches and examples request policies uniformly:

>>> policy = make_policy("drrip", num_sets=64, assoc=16)

Extra keyword arguments are forwarded to the policy constructor, so
``make_policy("gippr", 64, 16, ipv=my_vector)`` works too.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import ReplacementPolicy
from .belady import BeladyPolicy
from .bypass import BypassDGIPPRPolicy
from .counter_based import CounterBasedPolicy
from .dip import BIPPolicy, DIPPolicy, LIPPolicy
from .ipv_rrip import DynamicIPVRRIPPolicy, IPVRRIPPolicy
from .lru import GIPLRPolicy, IPVLRUPolicy, TrueLRUPolicy
from .pdp import PDPPolicy
from .plru import DGIPPRPolicy, GIPPRPolicy, TreePLRUPolicy
from .rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from .sdbp import SDBPPolicy
from .ship import SHiPPolicy
from .simple import FIFOPolicy, RandomPolicy

__all__ = ["POLICIES", "make_policy", "policy_names"]

POLICIES: Dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": TrueLRUPolicy,
    "ipv-lru": IPVLRUPolicy,
    "giplr": GIPLRPolicy,
    "plru": TreePLRUPolicy,
    "gippr": GIPPRPolicy,
    "dgippr": DGIPPRPolicy,
    "bypass-dgippr": BypassDGIPPRPolicy,
    "random": RandomPolicy,
    "fifo": FIFOPolicy,
    "lip": LIPPolicy,
    "bip": BIPPolicy,
    "dip": DIPPolicy,
    "srrip": SRRIPPolicy,
    "ipv-rrip": IPVRRIPPolicy,
    "dipv-rrip": DynamicIPVRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "pdp": PDPPolicy,
    "ship": SHiPPolicy,
    "sdbp": SDBPPolicy,
    "counter": CounterBasedPolicy,
    "belady": BeladyPolicy,
}


def make_policy(
    name: str, num_sets: int, assoc: int, **kwargs
) -> ReplacementPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return factory(num_sets, assoc, **kwargs)


def policy_names() -> List[str]:
    return sorted(POLICIES)
