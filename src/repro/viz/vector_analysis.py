"""Interpreting insertion/promotion vectors (paper Section 5.3.2).

The paper reads its evolved vectors qualitatively: the WI-2-DGIPPR pair
"clearly duel between PLRU and PMRU insertion", the first vector "seems to
prefer a very pessimistic promotion policy, moving most referenced blocks
closer to the PLRU position", and the WI-4-DGIPPR set switches "between
PLRU, PMRU, close to PMRU, and 'middle' insertion".  This module makes
those readings executable so they can be asserted, and prints the same
analysis for newly evolved vectors.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.ipv import IPV

__all__ = [
    "insertion_class",
    "promotion_bias",
    "is_pessimistic_promotion",
    "describe_vector",
    "duel_coverage",
]


def insertion_class(ipv: IPV) -> str:
    """Classify the insertion position the way Section 5.3.2 talks.

    ``pmru`` (position 0), ``near-pmru`` (top quarter of the stack),
    ``middle`` (second/third quarter), ``plru`` (bottom quarter).
    """
    k = ipv.k
    insertion = ipv.insertion
    if insertion == 0:
        return "pmru"
    if insertion < k // 4:
        return "near-pmru"
    if insertion < 3 * k // 4:
        return "middle"
    return "plru"


def promotion_bias(ipv: IPV) -> float:
    """Mean signed promotion distance, normalized to [-1, 1].

    Negative values move re-referenced blocks toward PMRU (optimistic, like
    LRU's always-to-MRU); positive values move them toward PLRU (the
    "pessimistic" promotion the paper observes in 2DG-A).  Position 0 has
    nowhere to go up, so it is excluded.
    """
    k = ipv.k
    total = 0.0
    for position in range(1, k):
        total += (ipv.promotion(position) - position) / position
    return total / (k - 1)


def is_pessimistic_promotion(ipv: IPV, threshold: float = -0.5) -> bool:
    """True when promotions keep blocks low in the stack.

    LRU's vector scores -1.0 (every hit straight to MRU); anything clearly
    above ``threshold`` hesitates to promote — the pessimistic style.
    """
    return promotion_bias(ipv) > threshold

def duel_coverage(ipvs: Sequence[IPV]) -> List[str]:
    """Distinct insertion classes a duelled vector set covers."""
    seen: Dict[str, None] = {}
    for ipv in ipvs:
        seen.setdefault(insertion_class(ipv))
    return list(seen)


def describe_vector(ipv: IPV) -> str:
    """One-line qualitative description in the paper's vocabulary."""
    style = "pessimistic" if is_pessimistic_promotion(ipv) else "optimistic"
    return (
        f"{ipv.name}: {insertion_class(ipv)} insertion (V[{ipv.k}]="
        f"{ipv.insertion}), {style} promotion "
        f"(bias {promotion_bias(ipv):+.2f})"
    )
