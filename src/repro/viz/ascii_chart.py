"""ASCII bar charts for per-benchmark results.

Console rendition of the paper's bar figures: one row per benchmark with a
proportional bar, so speedup/MPKI shapes can be eyeballed without plotting
dependencies (the environment is offline; matplotlib is unavailable).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["bar_chart"]


def bar_chart(
    values: Dict[str, float],
    baseline: float = 1.0,
    width: int = 40,
    title: str = "",
    sort: bool = True,
    fmt: str = "{:.3f}",
) -> str:
    """Render a horizontal bar chart of benchmark -> value.

    Bars grow rightward from ``baseline`` for values above it and are marked
    with ``<`` for values below — mirroring speedup-over-LRU plots where the
    1.0 line is the baseline.
    """
    if not values:
        raise ValueError("nothing to chart")
    items = sorted(values.items(), key=lambda p: p[1]) if sort else list(values.items())
    label_width = max(len(name) for name, _ in items)
    low = min(min(v for _, v in items), baseline)
    high = max(max(v for _, v in items), baseline)
    span = max(high - low, 1e-9)
    lines = []
    if title:
        lines.append(title)
    for name, value in items:
        offset = int(round((min(value, baseline) - low) / span * width))
        length = int(round(abs(value - baseline) / span * width))
        char = ">" if value >= baseline else "<"
        bar = " " * offset + char * max(length, 1 if value != baseline else 0)
        lines.append(f"{name.ljust(label_width)} |{bar.ljust(width)}| " + fmt.format(value))
    marker = int(round((baseline - low) / span * width))
    lines.append(" " * (label_width + 2) + " " * marker + f"^ baseline={fmt.format(baseline)}")
    return "\n".join(lines)
