"""Transition graphs for IPVs (paper Figures 2 and 3).

The paper visualises an IPV as a graph over recency-stack positions: solid
edges are promotions/insertions (where an accessed or incoming block goes),
dashed edges are the shifts bystander blocks suffer.  This module emits the
same graph as Graphviz DOT and as a compact text description.
"""

from __future__ import annotations

from typing import List

from ..core.ipv import IPV

__all__ = ["transition_dot", "transition_text"]


def transition_dot(ipv: IPV, title: str = "") -> str:
    """Graphviz DOT source for an IPV's transition graph.

    Render with ``dot -Tpdf``.  Solid edges: accessed/inserted block moves;
    dashed edges: displacement shifts; the ``insertion`` pseudo-node points
    at ``V[k]`` and ``eviction`` hangs off position ``k - 1``.
    """
    k = ipv.k
    lines = [
        "digraph ipv {",
        "  rankdir=LR;",
        f'  label="{title or ipv.name}";',
        "  node [shape=circle];",
        '  insertion [shape=plaintext];',
        '  eviction [shape=plaintext];',
    ]
    for i in range(k):
        target = ipv.promotion(i)
        if target != i:
            lines.append(f"  {i} -> {target};")
        else:
            lines.append(f"  {i} -> {i};")
    lines.append(f"  insertion -> {ipv.insertion};")
    lines.append(f"  {k - 1} -> eviction [style=bold];")
    for a, b in sorted(ipv.transition_edges()):
        if abs(a - b) == 1 and ipv.promotion(a) != b:
            lines.append(f"  {a} -> {b} [style=dashed, constraint=false];")
    lines.append("}")
    return "\n".join(lines)


def transition_text(ipv: IPV) -> str:
    """Human-readable transition summary (one line per position)."""
    k = ipv.k
    out: List[str] = [f"IPV {ipv.name}: [{' '.join(map(str, ipv.entries))}]"]
    for i in range(k):
        target = ipv.promotion(i)
        arrow = "stays at" if target == i else "promotes to"
        out.append(f"  hit at position {i:2d} {arrow} {target}")
    out.append(f"  insertion at position {ipv.insertion}")
    out.append(f"  eviction from position {k - 1}")
    if ipv.is_degenerate():
        out.append("  WARNING: degenerate (no path from insertion to MRU)")
    return "\n".join(out)
