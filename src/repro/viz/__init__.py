"""Visualisation helpers: transition graphs, charts and vector analysis."""

from .ascii_chart import bar_chart
from .transition_graph import transition_dot, transition_text
from .vector_analysis import (
    describe_vector,
    duel_coverage,
    insertion_class,
    is_pessimistic_promotion,
    promotion_bias,
)

__all__ = [
    "bar_chart",
    "transition_dot",
    "transition_text",
    "insertion_class",
    "promotion_bias",
    "is_pessimistic_promotion",
    "describe_vector",
    "duel_coverage",
]
