"""Command-line interface.

Installed as the ``repro`` console script::

    repro policies                       # list registered policies
    repro vectors                        # show the published paper vectors
    repro compare --benchmarks 429.mcf 462.libquantum
    repro evolve --generations 8 --population 24
    repro overhead                       # the Section 3.6 table
    repro trace-stats 462.libquantum     # reuse profile of a stand-in
    repro trace 429.mcf --out t.jsonl    # traced run -> JSONL event stream
    repro obs summary t.jsonl            # inspect / validate / re-metric it
    repro verify --all                   # differential conformance gate
    repro verify --policy gippr --fuzz-budget 50000 --artifact-dir repros/

Global flags: ``-v`` raises log verbosity to DEBUG, ``--log-level`` sets an
explicit level (library modules log through ``logging.getLogger(__name__)``;
see :mod:`repro.obs.logconfig`).

Each subcommand is a thin wrapper over the library API, so everything the
CLI does can be scripted directly against :mod:`repro`.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .core.vectors import paper_vectors
from .eval import (
    PolicySpec,
    default_config,
    format_overhead,
    overhead_table,
    run_suite,
    speedup_table,
)
from .obs.logconfig import configure_logging
from .policies import policy_names
from .viz import bar_chart, transition_text
from .workloads import get_benchmark

__all__ = ["main", "build_parser"]

logger = logging.getLogger(__name__)

DEFAULT_COMPARE = ["lru", "plru", "drrip", "pdp", "dgippr"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tree-PseudoLRU insertion/promotion (MICRO 2013) reproduction",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (default INFO; -v = DEBUG)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="explicit log level (DEBUG, INFO, WARNING, ERROR); "
             "overrides -v",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list registered replacement policies")

    sub.add_parser("vectors", help="show the published paper IPVs")

    compare = sub.add_parser("compare", help="run policies over the suite")
    compare.add_argument(
        "--policies", nargs="+", default=DEFAULT_COMPARE, metavar="NAME",
        help=f"registry names (default: {' '.join(DEFAULT_COMPARE)})",
    )
    compare.add_argument(
        "--benchmarks", nargs="+", default=None, metavar="BENCH",
        help="benchmark names (default: all 29)",
    )
    compare.add_argument("--length", type=int, default=20_000,
                         help="accesses per simpoint")
    compare.add_argument("--sets", type=int, default=64, help="LLC sets")
    compare.add_argument("--workers", type=int, default=0,
                         help="parallel worker processes")
    compare.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: ~/.cache/repro-eval or "
             "$REPRO_CACHE_DIR)",
    )
    compare.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    compare.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write runner metrics (jobs, cache hit rate, sims/sec) as JSON",
    )
    compare.add_argument("--chart", action="store_true",
                         help="also print an ASCII bar chart")
    compare.add_argument(
        "--status-json", default=None, metavar="PATH",
        help="publish live run status here (watch with `repro obs watch`)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: ~/.cache/repro-eval)")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached result")

    evolve = sub.add_parser("evolve", help="evolve an IPV with the GA")
    evolve.add_argument("--benchmarks", nargs="+", default=None)
    evolve.add_argument("--generations", type=int, default=8)
    evolve.add_argument("--population", type=int, default=24)
    evolve.add_argument("--length", type=int, default=10_000)
    evolve.add_argument("--seed", type=int, default=0)
    evolve.add_argument("--workers", type=int, default=0)
    evolve.add_argument("--substrate", choices=["plru", "lru"], default="plru")
    evolve.add_argument(
        "--profile", default=None, metavar="TRACE_JSON",
        help="span-profile the run and write a Chrome trace-event JSON "
             "(open in chrome://tracing or Perfetto); worker spans are "
             "merged in for parallel runs",
    )
    evolve.add_argument(
        "--profile-folded", default=None, metavar="PATH",
        help="also write a folded-stack flamegraph text file",
    )
    evolve.add_argument(
        "--status-json", default=None, metavar="PATH",
        help="publish live run status here (watch with `repro obs watch`)",
    )
    evolve.add_argument(
        "--convergence-json", default=None, metavar="PATH",
        help="write per-generation convergence telemetry (fitness "
             "distribution, diversity, eval throughput) here; render it "
             "with `repro obs analyze --convergence PATH`",
    )
    evolve.add_argument(
        "--surrogate", action="store_true",
        help="rank each batch with the analytic miss-rate surrogate and "
             "simulate only the promising fraction (plus a random "
             "control sample whose surrogate-vs-simulated Spearman rho "
             "rides on the live status) — the enabler for paper-scale "
             "populations like --population 20000",
    )
    evolve.add_argument(
        "--surrogate-keep", type=float, default=0.1, metavar="FRAC",
        help="fraction of each batch the surrogate keeps for simulation "
             "(default 0.1)",
    )
    evolve.add_argument(
        "--surrogate-audit", type=int, default=32, metavar="N",
        help="random control-sample size simulated per batch to audit "
             "surrogate rank fidelity (default 32)",
    )
    evolve.add_argument(
        "--surrogate-rho-floor", type=float, default=0.5, metavar="RHO",
        help="deactivate the prefilter (and simulate everything) if an "
             "audit Spearman rho falls below this (default 0.5)",
    )

    sub.add_parser("overhead", help="Section 3.6 storage-overhead table")

    simulate = sub.add_parser(
        "simulate", help="run a saved .npz trace through a policy"
    )
    simulate.add_argument("trace", help="path to a trace saved with save_trace")
    simulate.add_argument("--policy", default="dgippr")
    simulate.add_argument("--sets", type=int, default=64)
    simulate.add_argument("--assoc", type=int, default=16)
    simulate.add_argument("--warmup", type=float, default=0.25,
                          help="warmup fraction")
    simulate.add_argument(
        "--filter-l1l2", action="store_true",
        help="filter the trace through the paper's L1/L2 first",
    )

    stats = sub.add_parser("trace-stats", help="reuse profile of a benchmark")
    stats.add_argument("benchmark", help="benchmark name (e.g. 429.mcf)")
    stats.add_argument("--length", type=int, default=20_000)

    trace = sub.add_parser(
        "trace",
        help="run one simpoint with event tracing to a JSONL file",
        description="Simulate one (benchmark, policy, simpoint) with the "
                    "repro.obs event tracer attached after warmup, stream "
                    "hit/miss/insertion/promotion/eviction/duel events to "
                    "JSONL, and verify the trace replays to the untraced "
                    "counts.",
    )
    trace.add_argument("benchmark", help="benchmark name (e.g. 429.mcf)")
    trace.add_argument("--policy", default="dgippr")
    trace.add_argument("--simpoint", type=int, default=0)
    trace.add_argument("--length", type=int, default=20_000)
    trace.add_argument("--sets", type=int, default=64)
    trace.add_argument("--assoc", type=int, default=16)
    trace.add_argument("--warmup", type=float, default=0.25,
                       help="warmup fraction (events cover the measured "
                            "window only)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default="events.jsonl", metavar="PATH",
                       help="JSONL event file (default: events.jsonl)")
    trace.add_argument("--sample-sets", type=int, nargs="+", default=None,
                       metavar="SET", help="trace only these set indices")
    trace.add_argument("--sample-every", type=int, default=1, metavar="N",
                       help="keep only every Nth access's events")
    trace.add_argument("--psel-every", type=int, default=0, metavar="N",
                       help="sample set-dueling counters every N accesses")
    trace.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also export tracer metrics (.json -> JSON, "
                            "anything else -> Prometheus text)")
    trace.add_argument("--no-verify", action="store_true",
                       help="skip the untraced reference run / replay check")
    trace.add_argument("--no-manifest", action="store_true",
                       help="skip writing the provenance manifest sidecar")

    verify = sub.add_parser(
        "verify",
        help="differential conformance: fuzz policies against oracles",
        description="Differentially fuzz registered policies against the "
                    "reference oracles over the deterministic stream family, "
                    "check per-access invariants, LUT-vs-walk kernel "
                    "identity, Belady dominance and the committed golden "
                    "corpus.  Failures are shrunk to minimal replayable "
                    "counterexample artifacts.  Exit code 1 on any failure.",
    )
    verify_target = verify.add_mutually_exclusive_group()
    verify_target.add_argument(
        "--policy", nargs="+", default=None, metavar="NAME",
        help="verify only these registry policies",
    )
    verify_target.add_argument(
        "--all", action="store_true", dest="all_policies",
        help="verify every registered policy (the default)",
    )
    verify.add_argument(
        "--fuzz-budget", type=int, default=None, metavar="N",
        help="total fuzz accesses per policy, split over the "
             "stream x seed x geometry grid (default: "
             "24000, or 6000 with --quick)",
    )
    verify.add_argument(
        "--quick", action="store_true",
        help="smaller budget and sparser invariant checking (CI smoke)",
    )
    verify.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1], metavar="SEED",
        help="stream seeds (default: 0 1)",
    )
    verify.add_argument(
        "--no-shrink", action="store_true",
        help="report raw counterexamples without ddmin shrinking",
    )
    verify.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="write replayable counterexample artifacts here",
    )
    verify.add_argument(
        "--replay", default=None, metavar="ARTIFACT",
        help="replay one counterexample artifact instead of fuzzing",
    )
    verify.add_argument(
        "--no-goldens", action="store_true",
        help="skip the golden-corpus drift check",
    )
    verify.add_argument(
        "--goldens", default=None, metavar="PATH",
        help="golden corpus path (default: tests/goldens/"
             "conformance_goldens.json)",
    )
    verify.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON report (+ provenance manifest sidecar) here",
    )

    serve = sub.add_parser(
        "serve",
        help="run the streaming Zipf key-value serving scenario",
        description="Stream a bounded-memory Zipf/churn/flash-crowd "
                    "key-value workload through the sharded serving "
                    "front-end and report sustained throughput, miss "
                    "rate and per-shard stats.  seed omitted => a "
                    "deterministic seed derived from the spec digest "
                    "(recorded in the provenance manifest).",
    )
    serve.add_argument(
        "--alpha", type=float, default=1.2,
        help="Zipf skew of key popularity (default: 1.2)",
    )
    serve.add_argument(
        "--keys", type=int, default=1 << 14, metavar="N",
        help="live key slots per tenant (default: 16384)",
    )
    serve.add_argument(
        "--tenants", type=int, default=1, metavar="N",
        help="interleaved tenants (default: 1)",
    )
    serve.add_argument(
        "--accesses", type=int, default=1 << 20, metavar="N",
        help="stream length (default: 1048576)",
    )
    serve.add_argument(
        "--churn", type=int, default=0, metavar="PER_MILLION",
        help="key-slot retirements per million accesses (default: 0)",
    )
    serve.add_argument(
        "--phases", type=int, default=0, metavar="N",
        help="evenly spaced flash-crowd phases (default: 0)",
    )
    serve.add_argument(
        "--policy", default="lru",
        help="lru | lip | static | gippr, or comma-separated IPV "
             "entries (default: lru)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="set-shards in the front-end (power of two; default: 1)",
    )
    serve.add_argument(
        "--sets", type=int, default=1024, metavar="N",
        help="cache sets (default: 1024)",
    )
    serve.add_argument(
        "--assoc", type=int, default=16, metavar="K",
        help="cache associativity (default: 16)",
    )
    serve.add_argument(
        "--engine", choices=("auto", "columnar", "scalar"),
        default="auto", help="per-shard engine (default: auto)",
    )
    serve.add_argument(
        "--chunk", type=int, default=1 << 16, metavar="N",
        help="accesses per front-end batch (default: 65536)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="stream seed (default: derived from the spec digest)",
    )
    serve.add_argument(
        "--status", default=None, metavar="PATH",
        help="publish live run status JSON here (repro obs watch / "
             "repro obs top)",
    )
    serve.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON report (+ provenance manifest) here",
    )
    serve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the serving telemetry layer (latency histograms, "
             "windows, drift detection, SLO evaluation)",
    )
    serve.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="telemetry window size in offered accesses "
             "(default: 65536)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve the metrics registry as an OpenMetrics scrape "
             "endpoint on this port for the run's duration (0 = pick "
             "an ephemeral port, published in the status file)",
    )
    serve.add_argument(
        "--events", default=None, metavar="PATH",
        help="write drift / slo_violation trace events to this JSONL",
    )
    serve.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="SLO: windowed p99 amortized per-access latency target, "
             "in milliseconds",
    )
    serve.add_argument(
        "--slo-min-hit-rate", type=float, default=None, metavar="FRAC",
        help="SLO: minimum per-window hit rate in [0, 1]",
    )
    serve.add_argument(
        "--slo-max-shed", type=float, default=None, metavar="FRAC",
        help="SLO: maximum per-window shed fraction in [0, 1]",
    )
    serve.add_argument(
        "--slo-strict", action="store_true",
        help="exit nonzero if any SLO objective is violated",
    )

    obs = sub.add_parser(
        "obs", help="inspect repro.obs artifacts (JSONL traces, metrics)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    for name, help_text in (
        ("summary", "per-kind event counts and access span"),
        ("validate", "strict schema validation of every event line"),
        ("replay", "replay the trace into hit/miss/eviction counts"),
    ):
        p = obs_sub.add_parser(name, help=help_text)
        p.add_argument("events", help="JSONL trace file")
    obs_metrics = obs_sub.add_parser(
        "metrics", help="rebuild the metrics registry from a trace and export"
    )
    obs_metrics.add_argument("events", help="JSONL trace file")
    obs_metrics.add_argument("--format", choices=["prometheus", "json"],
                             default="prometheus")

    obs_watch = obs_sub.add_parser(
        "watch", help="live terminal view of a run-status.json",
        description="Render a runner's atomically published run-status.json "
                    "as a refreshing terminal view.  Works from any shell "
                    "(the runner and the watcher only share the file).  "
                    "Exits 0 once the run publishes its final status.",
    )
    obs_watch.add_argument(
        "status", nargs="?", default=None, metavar="PATH",
        help="status file (default: $REPRO_STATUS_PATH)",
    )
    obs_watch.add_argument("--interval", type=float, default=1.0,
                           help="refresh interval in seconds (default 1.0)")
    obs_watch.add_argument("--once", action="store_true",
                           help="render one snapshot and exit")

    obs_top = obs_sub.add_parser(
        "top", help="live serving dashboard over a serve run-status.json",
        description="Like `repro obs watch`, but renders the serving "
                    "telemetry section a `repro serve` run publishes: "
                    "latency percentiles, the last closed windows, "
                    "per-shard p99/queue depth, drift flags and SLO "
                    "burn rates.",
    )
    obs_top.add_argument(
        "status", nargs="?", default=None, metavar="PATH",
        help="status file (default: $REPRO_STATUS_PATH)",
    )
    obs_top.add_argument("--interval", type=float, default=1.0,
                         help="refresh interval in seconds (default 1.0)")
    obs_top.add_argument("--once", action="store_true",
                         help="render one snapshot and exit")

    obs_serve_metrics = obs_sub.add_parser(
        "serve-metrics",
        help="serve a metrics snapshot as an OpenMetrics scrape endpoint",
        description="Rebuild a registry from a JSON snapshot (the "
                    "to_json() form written by --metrics-json / "
                    "`repro trace --metrics-out x.json`) and serve it "
                    "over HTTP at /metrics until interrupted.",
    )
    obs_serve_metrics.add_argument(
        "snapshot", help="registry snapshot JSON file"
    )
    obs_serve_metrics.add_argument(
        "--host", default="127.0.0.1", help="bind host (default 127.0.0.1)"
    )
    obs_serve_metrics.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral, printed on startup)",
    )
    obs_serve_metrics.add_argument(
        "--duration", type=float, default=None, metavar="SEC",
        help="serve for this many seconds then exit (default: until ^C)",
    )

    obs_trend = obs_sub.add_parser(
        "trend", help="kernel perf history: record, show, regression-check",
        description="Inspect the append-only BENCH_history.jsonl perf "
                    "history (one entry per `make bench-kernels`, keyed by "
                    "git revision).  --record appends an entry from a "
                    "BENCH_kernels.json; --check compares the newest entry "
                    "against its predecessor and exits 1 on a regression "
                    "past the threshold (a soft CI gate).",
    )
    obs_trend.add_argument(
        "--history", default=None, metavar="PATH",
        help="history file (default: BENCH_history.jsonl at the repo root, "
             "or $REPRO_TREND_HISTORY)",
    )
    obs_trend.add_argument(
        "--record", default=None, metavar="BENCH_JSON",
        help="append a trend entry from this BENCH_kernels.json first",
    )
    obs_trend.add_argument(
        "--check", action="store_true",
        help="exit 1 if the newest entry regresses past the threshold",
    )
    obs_trend.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="regression threshold as a fraction (default 0.15)",
    )
    obs_trend.add_argument(
        "--last", type=int, default=5, metavar="N",
        help="with no --check: list the N newest entries (default 5)",
    )
    obs_trend.add_argument(
        "--source", default=None, metavar="NAME",
        help="only consider entries from this source (e.g. bench-kernels)",
    )

    obs_analyze = obs_sub.add_parser(
        "analyze", help="miss-curve and GA-convergence analytics report",
        description="Profile a benchmark trace with the vectorized "
                    "Mattson profiler (LRU miss curve, stack-distance "
                    "and working-set stats) and/or render a GA "
                    "convergence log written by `repro evolve "
                    "--convergence-json`.  Reports render to the "
                    "terminal and optionally persist as JSON and "
                    "figure-ready CSV.",
    )
    obs_analyze.add_argument(
        "--benchmark", default=None, metavar="NAME",
        help="profile this benchmark's synthetic trace (e.g. 429.mcf)",
    )
    obs_analyze.add_argument("--simpoint", type=int, default=0,
                             help="simpoint index (default 0)")
    obs_analyze.add_argument("--length", type=int, default=30_000,
                             help="trace length in accesses (default 30000)")
    obs_analyze.add_argument(
        "--sets", type=int, default=None, metavar="N",
        help="also compute per-set histograms for an N-set cache "
             "(power of two)",
    )
    obs_analyze.add_argument("--max-distance", type=int, default=4096,
                             help="stack-distance cap (default 4096)")
    obs_analyze.add_argument("--seed", type=int, default=None,
                             help="trace derivation seed (default: config)")
    obs_analyze.add_argument(
        "--convergence", default=None, metavar="PATH",
        help="include this GA convergence log in the report",
    )
    obs_analyze.add_argument("--json", default=None, metavar="PATH",
                             help="write the report JSON here")
    obs_analyze.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write figure CSVs here (miss curve; convergence series "
             "lands next to it with a .convergence.csv suffix)",
    )

    return parser


def _cmd_policies() -> int:
    for name in policy_names():
        print(name)
    return 0


def _cmd_vectors() -> int:
    for name, vector in paper_vectors().items():
        print(transition_text(vector))
        print()
    return 0


def _cmd_compare(args) -> int:
    specs = [PolicySpec(name.upper() if name == "lru" else name, name)
             for name in args.policies]
    labels = [s.label for s in specs]
    if "LRU" not in labels:
        specs.insert(0, PolicySpec("LRU", "lru"))
    config = default_config(trace_length=args.length, num_sets=args.sets)
    cache = None if args.no_cache else (args.cache_dir or True)
    suite = run_suite(
        specs, config=config, benchmarks=args.benchmarks,
        workers=args.workers, cache=cache,
        status_path=args.status_json,
    )
    if suite.metrics is not None:
        logger.info("%s", suite.metrics.summary())
        if args.metrics_json:
            import json

            with open(args.metrics_json, "w") as handle:
                json.dump(suite.metrics.as_dict(), handle, indent=2)
            logger.info("metrics written to %s", args.metrics_json)
    print(speedup_table(suite, sort_by=specs[-1].label))
    if args.chart:
        print()
        print(bar_chart(
            suite.speedups(specs[-1].label),
            title=f"{specs[-1].label} speedup over LRU",
        ))
    return 0


def _cmd_evolve(args) -> int:
    import contextlib

    from .ga import FitnessEvaluator, evolve_ipv
    from .obs.spans import profiled

    config = default_config(trace_length=args.length)
    evaluator = FitnessEvaluator(
        args.benchmarks, config=config, substrate=args.substrate
    )
    profiling = args.profile or args.profile_folded
    scope = (
        profiled(args.profile, folded=args.profile_folded)
        if profiling else contextlib.nullcontext()
    )
    with scope:
        result = evolve_ipv(
            evaluator,
            population_size=args.population,
            generations=args.generations,
            seed=args.seed,
            workers=args.workers,
            status_path=args.status_json,
            convergence_path=args.convergence_json,
            surrogate=args.surrogate,
            surrogate_keep=args.surrogate_keep,
            surrogate_audit=args.surrogate_audit,
            surrogate_rho_floor=args.surrogate_rho_floor,
            on_generation=lambda g, f: logger.info(
                "generation %d: best fitness %.4f", g, f
            ),
        )
    if args.profile:
        logger.info("span profile written to %s", args.profile)
    if args.profile_folded:
        logger.info("folded stacks written to %s", args.profile_folded)
    print(transition_text(result.best))
    print(f"fitness (mean speedup over LRU): {result.best_fitness:.4f}")
    if result.surrogate is not None:
        s = result.surrogate
        rho = "n/a" if s["rho"] is None else f"{s['rho']:+.3f}"
        state = "active" if s["active"] else "DEACTIVATED (rho floor)"
        print(
            f"surrogate: {state}; scored {s['scored']}, simulated "
            f"{s['simulated']}, culled {s['skipped']} "
            f"({s['audits']} audits, last rho {rho})"
        )
    if result.memo is not None and result.memo["hits"]:
        print(
            f"fitness memo: {result.memo['hits']} duplicate evaluations "
            f"served from cache ({result.memo['hit_rate']:.0%} hit rate)"
        )
    if result.convergence:
        from .obs.analytics import render_convergence

        print("convergence:")
        print(render_convergence(result.convergence))
    if args.convergence_json:
        logger.info("convergence log written to %s", args.convergence_json)
    return 0


def _cmd_overhead() -> int:
    print(format_overhead(overhead_table()))
    return 0


def _cmd_cache(args) -> int:
    from .eval.parallel import ResultCache, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    cache = ResultCache(root)
    if args.clear:
        removed = cache.clear()
        print(f"{root}: removed {removed} cached results")
    else:
        print(f"{root}: {len(cache)} cached results")
    return 0


def _cmd_simulate(args) -> int:
    from .eval.config import ExperimentConfig
    from .eval.runner import run_trace
    from .policies import make_policy
    from .trace import load_trace, paper_l1_l2_filter

    trace = load_trace(args.trace)
    print(f"loaded {trace!r}")
    if args.filter_l1l2:
        trace = paper_l1_l2_filter(trace)
        print(f"after L1/L2 filter: {len(trace):,} LLC accesses")
    config = ExperimentConfig(
        num_sets=args.sets,
        assoc=args.assoc,
        trace_length=len(trace),
        warmup_fraction=args.warmup,
        apply_env_scale=False,
    )
    policy = make_policy(args.policy, args.sets, args.assoc)
    result = run_trace(policy, trace, config)
    print(
        f"{policy.name}: {result.misses:,}/{result.accesses:,} misses "
        f"(rate {result.miss_rate:.4f}, mpki {result.mpki:.2f})"
    )
    return 0


def _cmd_trace_stats(args) -> int:
    from .trace import stack_distance_histogram

    benchmark = get_benchmark(args.benchmark)
    config = default_config(trace_length=args.length)
    print(f"{benchmark.name}: archetype {benchmark.archetype}, "
          f"{benchmark.instructions_per_access:.0f} instructions/access")
    for trace, weight in zip(
        benchmark.traces(config.trace_length, config.capacity_blocks),
        benchmark.weights(),
    ):
        histogram = stack_distance_histogram(trace, max_distance=4096)
        cold = histogram.get(-1, 0)
        reuses = sum(c for d, c in histogram.items() if d >= 0)
        print(f"  {trace.name} (weight {weight:.2f}): "
              f"{len(trace):,} accesses, footprint {trace.footprint():,}, "
              f"cold {cold / len(trace):.1%}")
        if reuses:
            total = 0
            for threshold in (64, 256, 1024, 4096):
                mass = sum(
                    c for d, c in histogram.items() if 0 <= d < threshold
                )
                print(f"    reuse within stack distance {threshold:>5}: "
                      f"{mass / reuses:.1%}")
    return 0


def _cmd_trace(args) -> int:
    import time

    from .eval.config import ExperimentConfig
    from .eval.runner import run_trace
    from .obs import JSONLSink, Tracer, build_manifest, read_jsonl, \
        replay_counts, write_manifest
    from .policies import make_policy

    benchmark = get_benchmark(args.benchmark)
    if not 0 <= args.simpoint < len(benchmark.simpoints):
        raise ValueError(
            f"{benchmark.name} has {len(benchmark.simpoints)} simpoints; "
            f"--simpoint {args.simpoint} is out of range"
        )
    config = ExperimentConfig(
        num_sets=args.sets,
        assoc=args.assoc,
        trace_length=args.length,
        warmup_fraction=args.warmup,
        seed=args.seed,
        apply_env_scale=False,
    )
    trace = benchmark.trace(
        args.simpoint, config.trace_length, config.capacity_blocks,
        seed=config.seed,
    )
    sampled = args.sample_sets is not None or args.sample_every != 1

    started = time.perf_counter()
    tracer = Tracer(
        sink=JSONLSink(args.out),
        sample_sets=args.sample_sets,
        sample_every=args.sample_every,
        psel_every=args.psel_every,
    )
    policy = make_policy(args.policy, args.sets, args.assoc)
    result = run_trace(policy, trace, config, tracer=tracer)
    tracer.close()
    wall = time.perf_counter() - started

    print(
        f"{policy.name} @ {trace.name}: {result.misses:,}/{result.accesses:,} "
        f"misses (rate {result.miss_rate:.4f}), "
        f"{tracer.events_emitted:,} events -> {args.out}"
    )

    code = 0
    if args.no_verify:
        logger.info("replay verification skipped (--no-verify)")
    elif sampled:
        logger.info("replay verification skipped: trace is sampled")
    else:
        reference_stats: dict = {}
        reference = run_trace(
            make_policy(args.policy, args.sets, args.assoc), trace, config,
            stats_sink=reference_stats,
        )
        replayed = replay_counts(read_jsonl(args.out))
        checks = {
            "hits": reference_stats["hits"],
            "misses": reference_stats["misses"],
            "evictions": reference_stats["evictions"],
            "accesses": reference_stats["accesses"],
            "bypasses": reference_stats["bypasses"],
        }
        mismatches = {
            k: (replayed[k], v) for k, v in checks.items() if replayed[k] != v
        }
        if mismatches:
            print(f"replay MISMATCH vs untraced run: {mismatches}",
                  file=sys.stderr)
            code = 1
        else:
            print(
                "replay OK: JSONL reproduces the untraced run exactly "
                f"(hits={checks['hits']:,}, misses={checks['misses']:,}, "
                f"evictions={checks['evictions']:,})"
            )
        assert reference.misses == result.misses  # traced == untraced sim

    if args.metrics_out:
        if args.metrics_out.endswith(".json"):
            payload = tracer.registry.dump_json()
        else:
            payload = tracer.registry.to_prometheus()
        with open(args.metrics_out, "w") as handle:
            handle.write(payload)
        logger.info("metrics written to %s", args.metrics_out)

    if not args.no_manifest:
        manifest = build_manifest(
            config=config,
            policy=args.policy,
            seed=args.seed,
            wall_time_sec=wall,
            extra={
                "benchmark": benchmark.name,
                "simpoint": args.simpoint,
                "events_path": str(args.out),
                "events_emitted": tracer.events_emitted,
                "sampled": sampled,
                "psel_every": args.psel_every,
            },
        )
        path = write_manifest(args.out, manifest)
        logger.info("manifest written to %s", path)
    return code


def _cmd_verify(args) -> int:
    from .verify import replay_artifact, verify_all, write_conformance_manifest
    from .verify.conformance import DEFAULT_FUZZ_BUDGET

    if args.replay is not None:
        divergence = replay_artifact(args.replay)
        if divergence is None:
            print(f"{args.replay}: no longer reproduces (fixed, or flaky)")
            return 0
        print(f"{args.replay}: still diverges at access "
              f"{divergence.index} (block {divergence.block}): "
              f"[{divergence.kind}] {divergence.detail}")
        return 1

    policies = args.policy  # None -> every registered policy
    budget = args.fuzz_budget
    check_every = 1
    if args.quick:
        budget = budget if budget is not None else 6_000
        check_every = 16
    elif budget is None:
        budget = DEFAULT_FUZZ_BUDGET

    from .policies import policy_names

    names = policies or policy_names()
    report = verify_all(
        policies=policies,
        fuzz_budget=budget,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
        seeds=args.seeds,
        check_goldens=not args.no_goldens,
        goldens_path=args.goldens,
        check_every=check_every,
    )
    print(report.summary())
    if args.report:
        write_conformance_manifest(
            report, args.report,
            fuzz_budget=budget, seeds=args.seeds, policies=names,
        )
        logger.info("report written to %s", args.report)
    return 0 if report.ok else 1


def _build_slo_spec(args):
    """SLOSpec from the --slo-* flags, or None when none are set."""
    if (args.slo_p99_ms is None and args.slo_min_hit_rate is None
            and args.slo_max_shed is None):
        return None
    from .obs.slo import SLOSpec

    return SLOSpec(
        latency_target=(
            args.slo_p99_ms / 1e3 if args.slo_p99_ms is not None else None
        ),
        min_hit_rate=args.slo_min_hit_rate,
        max_shed_ratio=args.slo_max_shed,
    )


def _cmd_serve(args) -> int:
    from .serve import (
        DEFAULT_WINDOW_ACCESSES,
        ServingSpec,
        auto_flash_phases,
        run_serving,
    )

    if "," in args.policy:
        policy = [int(e) for e in args.policy.split(",")]
    else:
        policy = args.policy
    spec = ServingSpec(
        keys=args.keys,
        alpha=args.alpha,
        tenants=args.tenants,
        accesses=args.accesses,
        churn_per_million=args.churn,
        phases=auto_flash_phases(args.accesses, args.phases),
        seed=args.seed,
        slo=_build_slo_spec(args),
    )
    if args.seed is None:
        print(f"seed: {spec.resolved_seed()} "
              f"(derived from spec digest {spec.digest()[:12]})")
    telemetry = not args.no_telemetry
    if args.slo_strict and (not telemetry or spec.slo is None):
        print("--slo-strict needs telemetry and at least one --slo-* "
              "objective", file=sys.stderr)
        return 2
    tracer = None
    if args.events and telemetry:
        from .obs import JSONLSink, Tracer

        tracer = Tracer(sink=JSONLSink(args.events))
    try:
        report = run_serving(
            spec,
            args.sets,
            args.assoc,
            policy=policy,
            shards=args.shards,
            engine=args.engine,
            chunk_accesses=args.chunk,
            status_path=args.status,
            report_path=args.report,
            telemetry=telemetry,
            window_accesses=(
                args.window if args.window else DEFAULT_WINDOW_ACCESSES
            ),
            metrics_port=args.metrics_port if telemetry else None,
            tracer=tracer,
        )
    finally:
        if tracer is not None:
            tracer.close()
    print(
        f"{report.policy} @ {args.sets}x{args.assoc}, "
        f"{report.shards} shard(s), engine {report.engine} "
        f"({report.backend} stream)"
    )
    print(
        f"served {report.accesses:,} accesses in {report.wall_sec:.2f}s "
        f"({report.throughput:,.0f} accesses/sec)"
    )
    print(
        f"misses {report.misses:,} (rate {report.miss_rate:.4f}); "
        f"shed {report.shed:,} ({report.shed_ratio:.2%} of offered); "
        f"retired keys {report.retired:,}"
    )
    if report.telemetry is not None:
        latency = report.telemetry.get("latency", {})
        parts = [
            f"{q} {latency[q] * 1e9:,.0f}ns"
            for q in ("p50", "p90", "p99", "p99_9")
            if latency.get(q) is not None
        ]
        if parts:
            print("amortized latency/access: " + "  ".join(parts))
        drift_events = report.telemetry.get("drift_events", [])
        print(
            f"windows {report.telemetry.get('windows_closed', 0)}; "
            f"drift events {len(drift_events)}"
            + (
                " (" + ", ".join(sorted({
                    e.get("series", "?") for e in drift_events
                })) + ")"
                if drift_events else ""
            )
        )
    if report.slo_summary is not None:
        verdict = "OK" if report.slo_ok else "VIOLATED"
        violations = report.slo_summary.get("violations", [])
        print(f"slo: {verdict}"
              + (f" ({len(violations)} violation(s): "
                 + ", ".join(sorted({
                     v.get("objective", "?") for v in violations
                 })) + ")"
                 if violations else ""))
    if args.events:
        print(f"telemetry events written to {args.events}")
    if args.report:
        print(f"report written to {args.report}")
    if args.slo_strict and not report.slo_ok:
        return 1
    return 0


def _cmd_obs(args) -> int:
    import json
    from collections import Counter as _Counter

    from .obs import read_jsonl, registry_from_events, replay_counts

    if args.obs_command == "validate":
        count = 0
        try:
            for _ in read_jsonl(args.events, validate=True):
                count += 1
        except ValueError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.events}: {count:,} events, all valid")
        return 0

    if args.obs_command == "summary":
        kinds: _Counter = _Counter()
        first = last = None
        for event in read_jsonl(args.events, validate=True):
            kinds[event.kind] += 1
            if first is None:
                first = event.access
            last = event.access
        total = sum(kinds.values())
        print(f"{args.events}: {total:,} events "
              f"(accesses {first}..{last})" if total else
              f"{args.events}: empty trace")
        for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
            print(f"  {kind:<12} {count:>10,}")
        return 0

    if args.obs_command == "replay":
        counts = replay_counts(read_jsonl(args.events, validate=True))
        for key, value in counts.items():
            print(f"{key:<13} {value:>10,}")
        return 0

    if args.obs_command == "metrics":
        registry = registry_from_events(read_jsonl(args.events, validate=True))
        if args.format == "json":
            print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
        else:
            sys.stdout.write(registry.to_prometheus())
        return 0

    if args.obs_command == "watch":
        return _cmd_obs_watch(args)

    if args.obs_command == "top":
        return _cmd_obs_watch(args, top=True)

    if args.obs_command == "serve-metrics":
        return _cmd_obs_serve_metrics(args)

    if args.obs_command == "trend":
        return _cmd_obs_trend(args)

    if args.obs_command == "analyze":
        return _cmd_obs_analyze(args)

    raise AssertionError(f"unhandled obs command {args.obs_command}")


def _cmd_obs_watch(args, top: bool = False) -> int:
    from .obs.status import default_status_path, render_top, watch

    path = args.status or default_status_path()
    if not path:
        print("no status file: pass a path or set $REPRO_STATUS_PATH",
              file=sys.stderr)
        return 2
    return watch(
        path,
        interval=args.interval,
        iterations=1 if args.once else None,
        render=render_top if top else None,
    )


def _cmd_obs_serve_metrics(args) -> int:
    import json
    import time as _time

    from .obs.export_http import MetricsServer
    from .obs.metrics import registry_from_json

    with open(args.snapshot) as handle:
        payload = json.load(handle)
    registry = registry_from_json(payload)
    with MetricsServer(registry, host=args.host, port=args.port) as server:
        print(f"serving {len(registry)} instrument(s) at {server.url}")
        try:
            if args.duration is not None:
                _time.sleep(args.duration)
            else:
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_obs_analyze(args) -> int:
    from .obs.analytics import (
        build_report,
        profile_trace,
        render_report,
        write_report,
    )

    if args.benchmark is None and args.convergence is None:
        print("nothing to analyze: pass --benchmark and/or --convergence",
              file=sys.stderr)
        return 2

    profile_payload = None
    meta = {}
    if args.benchmark is not None:
        benchmark = get_benchmark(args.benchmark)
        config = default_config(trace_length=args.length)
        seed = args.seed if args.seed is not None else config.seed
        if not 0 <= args.simpoint < len(benchmark.simpoints):
            raise ValueError(
                f"{benchmark.name} has {len(benchmark.simpoints)} "
                f"simpoints; --simpoint {args.simpoint} is out of range"
            )
        trace = benchmark.trace(
            args.simpoint, config.trace_length, config.capacity_blocks,
            seed=seed,
        )
        profile = profile_trace(
            trace, num_sets=args.sets, max_distance=args.max_distance
        )
        profile_payload = profile.to_json()
        meta.update(
            benchmark=benchmark.name, simpoint=args.simpoint,
            length=args.length, seed=seed,
        )
    if args.convergence is not None:
        meta["convergence_log"] = str(args.convergence)

    report = build_report(
        profile=profile_payload,
        convergence_path=args.convergence,
        meta=meta,
    )
    print(render_report(report))
    write_report(report, json_path=args.json, csv_path=args.csv)
    if args.json:
        logger.info("report JSON written to %s", args.json)
    if args.csv:
        logger.info("figure CSV written to %s", args.csv)
    return 0


def _cmd_obs_trend(args) -> int:
    import json

    from .obs.trend import (
        DEFAULT_THRESHOLD,
        default_history_path,
        format_deltas,
        latest_deltas,
        read_history,
        record_bench_kernels,
    )

    history = args.history or default_history_path()
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    if args.record:
        entry = record_bench_kernels(args.record, history)
        print(f"recorded {len(entry['metrics'])} metrics "
              f"@ {entry['git_revision'][:12]} -> {history}")

    if args.check:
        summary = latest_deltas(history, threshold=threshold,
                                source=args.source)
        if summary is None:
            print(f"{history}: fewer than two entries, nothing to compare")
            return 0
        print(f"{summary['prev_revision'][:12]} -> "
              f"{summary['cur_revision'][:12]} "
              f"(threshold {summary['threshold']:.0%})")
        print(format_deltas(summary["deltas"]))
        if summary["regressions"]:
            names = ", ".join(d["metric"] for d in summary["regressions"])
            print(f"REGRESSION past {threshold:.0%}: {names}",
                  file=sys.stderr)
            return 1
        print("no regressions")
        return 0

    entries = read_history(history, source=args.source)
    if not entries:
        print(f"{history}: no entries")
        return 0
    for entry in entries[-max(1, args.last):]:
        metrics = entry.get("metrics", {})
        print(f"{entry.get('recorded_at', '?')}  "
              f"{entry.get('git_revision', 'unknown')[:12]}  "
              f"{entry.get('source', '?')}  {len(metrics)} metrics")
        for name in sorted(metrics):
            print(f"    {name:<36} {metrics[name]:>14.4g}")
    summary = latest_deltas(history, threshold=threshold, source=args.source)
    if summary is not None:
        print(f"\nvs previous ({summary['prev_revision'][:12]}):")
        print(format_deltas(summary["deltas"]))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, verbose=args.verbose)
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "vectors":
        return _cmd_vectors()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "evolve":
        return _cmd_evolve(args)
    if args.command == "overhead":
        return _cmd_overhead()
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace-stats":
        return _cmd_trace_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly.
        sys.exit(0)
