"""Multi-level cache hierarchy.

Stands in for the CMP$im memory system: a three-level hierarchy in which
upper levels filter the access stream seen by the LLC.  The paper's
experiments use a 32KB/8-way L1D, a 256KB/8-way unified L2 and a 4MB/16-way
L3 with 200-cycle DRAM.

Only the miss *stream* matters for LLC replacement studies, so the model is
functional rather than timed: an access walks down the levels until it hits;
every level it missed in allocates the block.  Optional inclusive mode
back-invalidates upper levels when the LLC evicts a block, as an inclusive
LLC must.
"""

from __future__ import annotations

from typing import List, Optional

from ..policies.base import ReplacementPolicy
from ..policies.lru import TrueLRUPolicy
from .cache import SetAssociativeCache

__all__ = ["CacheHierarchy", "paper_hierarchy"]


class _InclusionHook(ReplacementPolicy):
    """Wrapper policy that reports LLC evictions for back-invalidation."""

    def __init__(self, inner: ReplacementPolicy, hierarchy: "CacheHierarchy"):
        super().__init__(inner.num_sets, inner.assoc)
        self.inner = inner
        self.name = inner.name
        self._hierarchy = hierarchy

    def victim(self, set_index, ctx):
        return self.inner.victim(set_index, ctx)

    def on_hit(self, set_index, way, ctx):
        self.inner.on_hit(set_index, way, ctx)

    def on_fill(self, set_index, way, ctx):
        self.inner.on_fill(set_index, way, ctx)

    def on_miss(self, set_index, ctx):
        self.inner.on_miss(set_index, ctx)

    def on_evict(self, set_index, way, ctx):
        self.inner.on_evict(set_index, way, ctx)
        self._hierarchy._note_llc_eviction(set_index, way)

    def state_bits_per_set(self):
        return self.inner.state_bits_per_set()

    def global_state_bits(self):
        return self.inner.global_state_bits()


class CacheHierarchy:
    """An L1 → L2 → LLC stack of :class:`SetAssociativeCache` levels."""

    def __init__(
        self,
        levels: List[SetAssociativeCache],
        inclusive_llc: bool = False,
    ):
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels
        self.inclusive_llc = inclusive_llc and len(levels) > 1
        if self.inclusive_llc:
            llc = levels[-1]
            llc.policy = _InclusionHook(llc.policy, self)

    @property
    def llc(self) -> SetAssociativeCache:
        return self.levels[-1]

    def access(
        self,
        address: int,
        pc: int = 0,
        is_write: bool = False,
        next_use: Optional[int] = None,
    ) -> int:
        """Access the hierarchy; returns the level index that hit.

        Level 0 is the L1; ``len(levels)`` means the access went to memory.
        Lower levels allocate on the way back up (fill path).
        """
        for depth, cache in enumerate(self.levels):
            if cache.access(address, pc=pc, is_write=is_write, next_use=next_use):
                return depth
        return len(self.levels)

    def _note_llc_eviction(self, set_index: int, way: int) -> None:
        llc = self.levels[-1]
        tag = llc._tags[set_index][way]
        if tag is None:
            return
        block = (tag << (llc.num_sets.bit_length() - 1)) | set_index
        address = block << (llc.block_size.bit_length() - 1)
        for upper in self.levels[:-1]:
            # Upper levels may use a different block size; invalidate every
            # upper block covered by the LLC block.
            step = upper.block_size
            for offset in range(0, llc.block_size, step):
                upper.invalidate(address + offset)

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chain = " -> ".join(
            f"{c.name}({c.capacity_bytes // 1024}KB)" for c in self.levels
        )
        return f"CacheHierarchy({chain})"


def paper_hierarchy(
    llc_policy: ReplacementPolicy,
    llc_sets: int = 4096,
    llc_assoc: int = 16,
    block_size: int = 64,
    inclusive: bool = False,
) -> CacheHierarchy:
    """Build the paper's hierarchy (Section 4.5) around a given LLC policy.

    32KB 8-way L1D and 256KB 8-way L2 run true LRU; the LLC geometry
    defaults to the paper's 4MB 16-way but can be scaled down (see
    DESIGN.md on set scaling).
    """
    l1_sets = (32 * 1024) // (8 * block_size)
    l2_sets = (256 * 1024) // (8 * block_size)
    l1 = SetAssociativeCache(
        l1_sets, 8, TrueLRUPolicy(l1_sets, 8), block_size, name="L1D"
    )
    l2 = SetAssociativeCache(
        l2_sets, 8, TrueLRUPolicy(l2_sets, 8), block_size, name="L2"
    )
    llc = SetAssociativeCache(
        llc_sets, llc_assoc, llc_policy, block_size, name="LLC"
    )
    return CacheHierarchy([l1, l2, llc], inclusive_llc=inclusive)
