"""zCache: high effective associativity from few ways (Sanchez & Kozyrakis).

The paper's future-work item 6 wants high-associativity insertion/promotion
and names the zCache (MICRO 2010) as the complementary structure: a
skewed-associative cache where each way is indexed by a different hash of
the address, and replacement considers not just the W direct candidates but
the blocks reachable by *relocating* candidates to their alternative
positions — a breadth-first walk of the exchange graph.  With W ways and
depth-d expansion the replacement pool has up to ``W * (W-1)**(d-1)``
candidates, giving the eviction quality of a much more associative cache.

Victim selection among candidates uses coarse-grained timestamps (8-bit
access counters), as in the original design: the candidate with the oldest
timestamp is evicted and the chain of blocks on the path to it is relocated
one step each.

This module provides the substrate plus :func:`effective_associativity`
used by the zCache bench to show eviction quality approaching that of a
conventional cache with many more ways.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .stats import CacheStats

__all__ = ["ZCache"]


def _mix(value: int, salt: int) -> int:
    """A cheap invertible-ish hash (xorshift-multiply) per way."""
    value ^= salt
    value = (value * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 29
    return value


class ZCache:
    """A zCache with timestamp-LRU replacement.

    Parameters
    ----------
    num_sets:
        Rows per way (the "set" count of each skewed bank).
    ways:
        Number of skewed banks (3 or 4 in the original paper).
    depth:
        Levels of the replacement walk (1 = plain skewed-associative).
    timestamp_bits:
        Width of the coarse timestamps used to rank candidates.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int = 4,
        depth: int = 2,
        timestamp_bits: int = 8,
        block_size: int = 1,
        name: str = "zcache",
    ):
        if num_sets < 1 or ways < 2:
            raise ValueError("zCache needs >= 2 ways and >= 1 set")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.num_sets = num_sets
        self.ways = ways
        self.depth = depth
        self.block_size = block_size
        self.name = name
        self._offset_bits = block_size.bit_length() - 1
        self._timestamp_mask = (1 << timestamp_bits) - 1
        self._salts = [0xA5A5 + 0x1357 * w for w in range(ways)]
        # Per way: row -> block address (None = invalid), plus timestamp.
        self._rows: List[List[Optional[int]]] = [
            [None] * num_sets for _ in range(ways)
        ]
        self._stamps: List[List[int]] = [[0] * num_sets for _ in range(ways)]
        self._where: Dict[int, Tuple[int, int]] = {}  # block -> (way, row)
        self._clock = 0
        self.stats = CacheStats()
        self.relocations = 0

    # ------------------------------------------------------------------
    # Indexing.
    # ------------------------------------------------------------------
    def row_of(self, block: int, way: int) -> int:
        return _mix(block, self._salts[way]) % self.num_sets

    def _stamp(self, way: int, row: int) -> None:
        self._clock = (self._clock + 1) & 0xFFFFFFFF
        self._stamps[way][row] = self._clock & self._timestamp_mask

    # ------------------------------------------------------------------
    # Access path.
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> bool:
        """Access a block; allocate on miss via the replacement walk."""
        block = address >> self._offset_bits
        self.stats.accesses += 1
        location = self._where.get(block)
        if location is not None:
            way, row = location
            self.stats.hits += 1
            self._stamp(way, row)
            return True
        self.stats.misses += 1
        self._allocate(block)
        return False

    def _allocate(self, block: int) -> None:
        # Free position among the direct candidates?
        for way in range(self.ways):
            row = self.row_of(block, way)
            if self._rows[way][row] is None:
                self._place(block, way, row)
                return
        path = self._find_eviction_path(block)
        victim_way, victim_row = path[-1]
        victim = self._rows[victim_way][victim_row]
        if victim is not None:
            del self._where[victim]
            self.stats.evictions += 1
        # else: the walk reached an empty slot through relocation — the
        # zCache absorbed the fill without evicting anything.
        # Relocate each block one step toward the vacated slot (walk the
        # path from the tail back to the head).
        for i in range(len(path) - 1, 0, -1):
            src_way, src_row = path[i - 1]
            dst_way, dst_row = path[i]
            moved = self._rows[src_way][src_row]
            self._rows[dst_way][dst_row] = moved
            self._stamps[dst_way][dst_row] = self._stamps[src_way][src_row]
            self._where[moved] = (dst_way, dst_row)
            self.relocations += 1
        head_way, head_row = path[0]
        self._place(block, head_way, head_row)

    def _place(self, block: int, way: int, row: int) -> None:
        self._rows[way][row] = block
        self._where[block] = (way, row)
        self._stamp(way, row)

    def _find_eviction_path(self, block: int) -> List[Tuple[int, int]]:
        """Breadth-first walk of the exchange graph, oldest stamp wins.

        Returns the chain of (way, row) slots from a direct candidate of
        ``block`` to the chosen victim's slot.
        """
        best_path: Optional[List[Tuple[int, int]]] = None
        best_age: Optional[int] = None
        frontier: List[List[Tuple[int, int]]] = [
            [(way, self.row_of(block, way))] for way in range(self.ways)
        ]
        seen = {path[0] for path in frontier}
        for level in range(self.depth):
            next_frontier: List[List[Tuple[int, int]]] = []
            for path in frontier:
                way, row = path[-1]
                resident = self._rows[way][row]
                if resident is None:
                    # An empty slot reachable by relocation: take it — no
                    # eviction needed at all.
                    return path
                age = (self._clock - self._stamps[way][row]) & self._timestamp_mask
                if best_age is None or age > best_age:
                    best_age = age
                    best_path = path
                if level + 1 < self.depth:
                    # Expand: the resident block could move to its other ways.
                    for other_way in range(self.ways):
                        if other_way == way:
                            continue
                        slot = (other_way, self.row_of(resident, other_way))
                        if slot not in seen:
                            seen.add(slot)
                            next_frontier.append(path + [slot])
            frontier = next_frontier
            if not frontier:
                break
        assert best_path is not None
        return best_path

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.ways

    def contains(self, address: int) -> bool:
        return (address >> self._offset_bits) in self._where

    def occupancy(self) -> int:
        return len(self._where)

    def candidate_pool_size(self) -> int:
        """Replacement candidates examined per eviction (upper bound)."""
        total = self.ways
        layer = self.ways
        for _ in range(1, self.depth):
            layer *= self.ways - 1
            total += layer
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ZCache(sets={self.num_sets}, ways={self.ways}, "
            f"depth={self.depth}, candidates<={self.candidate_pool_size()})"
        )
