"""Cache substrate: set-associative cache, stats, hierarchy and zCache."""

from .cache import SetAssociativeCache
from .hierarchy import CacheHierarchy, paper_hierarchy
from .stats import CacheStats
from .zcache import ZCache

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "paper_hierarchy",
    "CacheStats",
    "ZCache",
]
