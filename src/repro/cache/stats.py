"""Cache statistics accounting."""

from __future__ import annotations

__all__ = ["CacheStats"]


class CacheStats:
    """Counters for one cache level.

    ``instructions`` is set by the driver (see :mod:`repro.eval.runner`) so
    that misses-per-kilo-instruction can be reported the way the paper does.
    """

    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "evictions",
        "writebacks",
        "bypasses",
        "instructions",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.bypasses = 0
        self.instructions = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 for an idle cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction; requires ``instructions`` to be set."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    def snapshot(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "bypasses": self.bypasses,
            "instructions": self.instructions,
            "miss_rate": self.miss_rate,
            "mpki": self.mpki,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheStats(accesses={self.accesses}, hits={self.hits}, "
            f"misses={self.misses}, miss_rate={self.miss_rate:.4f})"
        )
