"""Cache statistics accounting."""

from __future__ import annotations

__all__ = ["CacheStats"]


class CacheStats:
    """Counters for one cache level.

    ``instructions`` is set by the driver (see :mod:`repro.eval.runner`) so
    that misses-per-kilo-instruction can be reported the way the paper does.
    """

    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "evictions",
        "writebacks",
        "bypasses",
        "instructions",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.bypasses = 0
        self.instructions = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 for an idle cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction; requires ``instructions`` to be set.

        With ``instructions == 0`` the quantity is *undefined*, so this
        returns ``nan`` — a ``0.0`` here used to read as "a perfect cache"
        in reports when the driver simply had not filled in the
        instruction count.
        """
        if not self.instructions:
            return float("nan")
        return 1000.0 * self.misses / self.instructions

    def sanity_check(self) -> None:
        """Raise ``ValueError`` when the counters are inconsistent.

        The invariants every access path must maintain:

        * ``hits + misses == accesses``
        * ``evictions <= misses`` (each eviction is caused by a miss)
        * ``bypasses <= misses`` and ``writebacks <= evictions``

        A violation means an accounting bug in a cache model, not a bad
        workload, so it is an error rather than a report footnote.
        """
        if self.hits + self.misses != self.accesses:
            raise ValueError(
                f"hits ({self.hits}) + misses ({self.misses}) != "
                f"accesses ({self.accesses})"
            )
        if self.evictions > self.misses:
            raise ValueError(
                f"evictions ({self.evictions}) exceed misses ({self.misses})"
            )
        if self.bypasses > self.misses:
            raise ValueError(
                f"bypasses ({self.bypasses}) exceed misses ({self.misses})"
            )
        if self.writebacks > self.evictions:
            raise ValueError(
                f"writebacks ({self.writebacks}) exceed evictions "
                f"({self.evictions})"
            )

    def snapshot(self) -> dict:
        """Consistent point-in-time view of every counter and derived rate.

        Validates the counters first (see :meth:`sanity_check`); ``mpki``
        is ``nan`` when no instruction count was provided.
        """
        self.sanity_check()
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "bypasses": self.bypasses,
            "instructions": self.instructions,
            "miss_rate": self.miss_rate,
            "hit_rate": self.hit_rate,
            "mpki": self.mpki,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheStats(accesses={self.accesses}, hits={self.hits}, "
            f"misses={self.misses}, miss_rate={self.miss_rate:.4f})"
        )
