"""Set-associative cache model.

The cache owns tags, validity and dirty bits; replacement decisions are
delegated to a :class:`~repro.policies.base.ReplacementPolicy`.  Addresses
are byte addresses by default; pass ``block_size=1`` to feed pre-blocked
trace addresses directly (the usual mode for LLC trace experiments, matching
the paper's trace-driven fitness simulator).
"""

from __future__ import annotations

from typing import Optional

from ..policies.base import AccessContext, ReplacementPolicy
from .stats import CacheStats

__all__ = ["SetAssociativeCache"]


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class SetAssociativeCache:
    """A single cache level driven by a replacement policy.

    Parameters
    ----------
    num_sets, assoc:
        Geometry; both must be powers of two (the paper's LLC is 4096x16).
    policy:
        The replacement policy instance; its geometry must match.
    block_size:
        Bytes per block; 64 in the paper.  Use 1 for block-address traces.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        policy: ReplacementPolicy,
        block_size: int = 64,
        name: str = "cache",
    ):
        if not _is_power_of_two(num_sets):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if not _is_power_of_two(block_size):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        if policy.num_sets != num_sets or policy.assoc != assoc:
            raise ValueError(
                f"policy geometry {policy.num_sets}x{policy.assoc} does not "
                f"match cache geometry {num_sets}x{assoc}"
            )
        self.num_sets = num_sets
        self.assoc = assoc
        self.policy = policy
        self.block_size = block_size
        self.name = name
        self._offset_bits = block_size.bit_length() - 1
        self._index_mask = num_sets - 1
        # tags[s][w] is the tag in way w of set s, or None when invalid.
        self._tags = [[None] * assoc for _ in range(num_sets)]
        self._dirty = [[False] * assoc for _ in range(num_sets)]
        # way_of[s] maps tag -> way for O(1) lookup.
        self._way_of = [dict() for _ in range(num_sets)]
        self.stats = CacheStats()
        self._ctx = AccessContext()

    # ------------------------------------------------------------------
    # Geometry helpers.
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.assoc * self.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.assoc

    def locate(self, address: int):
        """Split an address into (set index, tag)."""
        block = address >> self._offset_bits
        return block & self._index_mask, block >> (self.num_sets.bit_length() - 1)

    # ------------------------------------------------------------------
    # The access path.
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        pc: int = 0,
        is_write: bool = False,
        next_use: Optional[int] = None,
    ) -> bool:
        """Perform one access; returns True on hit.

        On a miss the block is always allocated (write-allocate); the paper's
        policies (PDP without bypass included) never bypass the cache.
        """
        set_index, tag = self.locate(address)
        ctx = self._ctx
        ctx.pc = pc
        ctx.is_write = is_write
        ctx.next_use = next_use
        ctx.access_index += 1
        ctx.block = address >> self._offset_bits

        stats = self.stats
        stats.accesses += 1
        way_of = self._way_of[set_index]
        way = way_of.get(tag)
        if way is not None:
            stats.hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            self.policy.on_hit(set_index, way, ctx)
            return True

        stats.misses += 1
        self.policy.on_miss(set_index, ctx)
        tags = self._tags[set_index]
        try:
            way = tags.index(None)
        except ValueError:
            if self.policy.should_bypass(set_index, ctx):
                stats.bypasses += 1
                return False
            way = self.policy.victim(set_index, ctx)
            if not 0 <= way < self.assoc:
                raise RuntimeError(
                    f"{self.policy.name} returned invalid victim way {way}"
                )
            self.policy.on_evict(set_index, way, ctx)
            stats.evictions += 1
            if self._dirty[set_index][way]:
                stats.writebacks += 1
            del way_of[tags[way]]
        tags[way] = tag
        way_of[tag] = way
        self._dirty[set_index][way] = is_write
        self.policy.on_fill(set_index, way, ctx)
        return False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        set_index, tag = self.locate(address)
        return tag in self._way_of[set_index]

    def resident_tags(self, set_index: int):
        """Valid tags in a set (order is way order)."""
        return [t for t in self._tags[set_index] if t is not None]

    def invalidate(self, address: int) -> bool:
        """Drop a block if resident (used for inclusion enforcement)."""
        set_index, tag = self.locate(address)
        way = self._way_of[set_index].pop(tag, None)
        if way is None:
            return False
        self._tags[set_index][way] = None
        self._dirty[set_index][way] = False
        return True

    def reset_stats(self) -> None:
        """Clear counters (e.g. after cache warmup) without losing contents."""
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssociativeCache(name={self.name!r}, sets={self.num_sets}, "
            f"assoc={self.assoc}, policy={self.policy.name})"
        )
