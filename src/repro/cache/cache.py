"""Set-associative cache model.

The cache owns tags, validity and dirty bits; replacement decisions are
delegated to a :class:`~repro.policies.base.ReplacementPolicy`.  Addresses
are byte addresses by default; pass ``block_size=1`` to feed pre-blocked
trace addresses directly (the usual mode for LLC trace experiments, matching
the paper's trace-driven fitness simulator).

Observability: :meth:`SetAssociativeCache.attach_tracer` attaches a
:class:`repro.obs.tracer.Tracer`; the traced access path emits
hit/promotion/miss/eviction/insertion/bypass/duel-flip events with recency
positions before/after and the set-dueling selection.  With no tracer
attached the hot path pays a single ``is not None`` test (budget enforced
by :mod:`repro.obs.overhead` and ``make smoke-obs``).
"""

from __future__ import annotations

from typing import Optional

from ..policies.base import AccessContext, ReplacementPolicy
from .stats import CacheStats

__all__ = ["SetAssociativeCache"]


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class SetAssociativeCache:
    """A single cache level driven by a replacement policy.

    Parameters
    ----------
    num_sets, assoc:
        Geometry; both must be powers of two (the paper's LLC is 4096x16).
    policy:
        The replacement policy instance; its geometry must match.
    block_size:
        Bytes per block; 64 in the paper.  Use 1 for block-address traces.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        policy: ReplacementPolicy,
        block_size: int = 64,
        name: str = "cache",
    ):
        if not _is_power_of_two(num_sets):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if not _is_power_of_two(block_size):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        if policy.num_sets != num_sets or policy.assoc != assoc:
            raise ValueError(
                f"policy geometry {policy.num_sets}x{policy.assoc} does not "
                f"match cache geometry {num_sets}x{assoc}"
            )
        self.num_sets = num_sets
        self.assoc = assoc
        self.policy = policy
        self.block_size = block_size
        self.name = name
        self._offset_bits = block_size.bit_length() - 1
        self._index_mask = num_sets - 1
        # tags[s][w] is the tag in way w of set s, or None when invalid.
        self._tags = [[None] * assoc for _ in range(num_sets)]
        self._dirty = [[False] * assoc for _ in range(num_sets)]
        # way_of[s] maps tag -> way for O(1) lookup.
        self._way_of = [dict() for _ in range(num_sets)]
        # fill_count[s] counts valid ways in set s: the miss path only probes
        # ``tags.index(None)`` while the set is still filling; once the count
        # reaches assoc every miss goes straight to the victim/bypass branch
        # (invalidate() decrements, so holes re-enable the probe).
        self._fill_count = [0] * num_sets
        self.stats = CacheStats()
        self._ctx = AccessContext()
        # Observability (attach_tracer); None keeps the hot path untouched
        # beyond a single identity test per access.
        self._tracer = None
        self._position_of = None
        self._selector = None

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer):
        """Route this cache's accesses through ``tracer`` (obs layer).

        Returns the tracer for chaining.  Policy introspection handles —
        ``position_of`` (recency positions for the position-before/after
        fields) and ``selector`` (set-dueling state for duel-flip and PSEL
        events) — are resolved once here, never on the hot path.
        """
        self._tracer = tracer
        self._position_of = getattr(self.policy, "position_of", None)
        self._selector = getattr(self.policy, "selector", None)
        return tracer

    def detach_tracer(self):
        """Stop tracing; returns the previously attached tracer (or None)."""
        tracer, self._tracer = self._tracer, None
        return tracer

    # ------------------------------------------------------------------
    # Geometry helpers.
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.assoc * self.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.assoc

    def locate(self, address: int):
        """Split an address into (set index, tag)."""
        block = address >> self._offset_bits
        return block & self._index_mask, block >> (self.num_sets.bit_length() - 1)

    # ------------------------------------------------------------------
    # The access path.
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        pc: int = 0,
        is_write: bool = False,
        next_use: Optional[int] = None,
    ) -> bool:
        """Perform one access; returns True on hit.

        On a miss the block is always allocated (write-allocate); the paper's
        policies (PDP without bypass included) never bypass the cache.
        """
        if self._tracer is not None:
            return self._traced_access(address, pc, is_write, next_use)
        set_index, tag = self.locate(address)
        ctx = self._ctx
        ctx.pc = pc
        ctx.is_write = is_write
        ctx.next_use = next_use
        ctx.access_index += 1
        ctx.block = address >> self._offset_bits

        stats = self.stats
        stats.accesses += 1
        way_of = self._way_of[set_index]
        way = way_of.get(tag)
        if way is not None:
            stats.hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            self.policy.on_hit(set_index, way, ctx)
            return True

        stats.misses += 1
        self.policy.on_miss(set_index, ctx)
        tags = self._tags[set_index]
        if self._fill_count[set_index] < self.assoc:
            way = tags.index(None)
            self._fill_count[set_index] += 1
        else:
            if self.policy.should_bypass(set_index, ctx):
                stats.bypasses += 1
                return False
            way = self.policy.victim(set_index, ctx)
            if not 0 <= way < self.assoc:
                raise RuntimeError(
                    f"{self.policy.name} returned invalid victim way {way}"
                )
            self.policy.on_evict(set_index, way, ctx)
            stats.evictions += 1
            if self._dirty[set_index][way]:
                stats.writebacks += 1
            del way_of[tags[way]]
        tags[way] = tag
        way_of[tag] = way
        self._dirty[set_index][way] = is_write
        self.policy.on_fill(set_index, way, ctx)
        return False

    def _traced_access(
        self,
        address: int,
        pc: int = 0,
        is_write: bool = False,
        next_use: Optional[int] = None,
    ) -> bool:
        """The instrumented twin of :meth:`access`.

        Must perform *exactly* the same state transitions in the same
        order (a regression test asserts traced and untraced runs produce
        identical statistics); the only additions are read-only probes
        (``position_of``, ``selector.selected``) and event emission.
        """
        set_index, tag = self.locate(address)
        ctx = self._ctx
        ctx.pc = pc
        ctx.is_write = is_write
        ctx.next_use = next_use
        ctx.access_index += 1
        ctx.block = address >> self._offset_bits

        tracer = self._tracer
        policy = self.policy
        position_of = self._position_of
        selector = self._selector
        access_index = ctx.access_index
        block = ctx.block
        selected = (
            selector.policy_for_set(set_index) if selector is not None else None
        )

        stats = self.stats
        stats.accesses += 1
        way_of = self._way_of[set_index]
        way = way_of.get(tag)
        if way is not None:
            stats.hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            pos_before = (
                position_of(set_index, way) if position_of is not None else None
            )
            policy.on_hit(set_index, way, ctx)
            pos_after = (
                position_of(set_index, way) if position_of is not None else None
            )
            tracer.hit(
                access_index, set_index, way, pos_before, pos_after,
                selected, block,
            )
            tracer.psel_tick(access_index, selector)
            return True

        stats.misses += 1
        duel_before = selector.selected() if selector is not None else None
        policy.on_miss(set_index, ctx)
        if selector is not None:
            duel_after = selector.selected()
            if duel_after != duel_before:
                tracer.duel_flip(access_index, set_index, duel_before, duel_after)
        tracer.miss(access_index, set_index, selected, block)
        tags = self._tags[set_index]
        if self._fill_count[set_index] < self.assoc:
            way = tags.index(None)
            self._fill_count[set_index] += 1
        else:
            if policy.should_bypass(set_index, ctx):
                stats.bypasses += 1
                tracer.bypass(access_index, set_index, selected, block)
                tracer.psel_tick(access_index, selector)
                return False
            way = policy.victim(set_index, ctx)
            if not 0 <= way < self.assoc:
                raise RuntimeError(
                    f"{policy.name} returned invalid victim way {way}"
                )
            victim_pos = (
                position_of(set_index, way) if position_of is not None else None
            )
            policy.on_evict(set_index, way, ctx)
            stats.evictions += 1
            dirty = self._dirty[set_index][way]
            if dirty:
                stats.writebacks += 1
            tracer.eviction(
                access_index, set_index, way, victim_pos, dirty, selected
            )
            del way_of[tags[way]]
        tags[way] = tag
        way_of[tag] = way
        self._dirty[set_index][way] = is_write
        policy.on_fill(set_index, way, ctx)
        fill_pos = (
            position_of(set_index, way) if position_of is not None else None
        )
        tracer.insertion(
            access_index, set_index, way, fill_pos, selected, block
        )
        tracer.psel_tick(access_index, selector)
        return False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        set_index, tag = self.locate(address)
        return tag in self._way_of[set_index]

    def resident_tags(self, set_index: int):
        """Valid tags in a set (order is way order)."""
        return [t for t in self._tags[set_index] if t is not None]

    def invalidate(self, address: int) -> bool:
        """Drop a block if resident (used for inclusion enforcement)."""
        set_index, tag = self.locate(address)
        way = self._way_of[set_index].pop(tag, None)
        if way is None:
            return False
        self._tags[set_index][way] = None
        self._dirty[set_index][way] = False
        self._fill_count[set_index] -= 1
        return True

    def reset_stats(self) -> None:
        """Clear counters (e.g. after cache warmup) without losing contents."""
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssociativeCache(name={self.name!r}, sets={self.num_sets}, "
            f"assoc={self.assoc}, policy={self.policy.name})"
        )
