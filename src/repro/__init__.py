"""repro — reproduction of "Insertion and Promotion for Tree-Based PseudoLRU
Last-Level Caches" (Daniel A. Jiménez, MICRO-46, 2013).

The package implements the paper's contribution — insertion/promotion
vectors (IPVs) on tree PseudoLRU state with set-dueling adaptivity
(GIPPR/DGIPPR) — together with every substrate it depends on: a
set-associative cache simulator, true-LRU and PLRU machinery, the competing
policies (DIP, DRRIP, PDP, SHiP, Belady MIN, ...), a synthetic SPEC CPU
2006 stand-in workload suite, genetic/random/hill-climbing IPV search, CPI
timing models, and the evaluation harness that regenerates the paper's
figures.

Quickstart::

    from repro import SetAssociativeCache, DGIPPRPolicy
    from repro.trace import looping

    policy = DGIPPRPolicy(num_sets=64, assoc=16)
    cache = SetAssociativeCache(64, 16, policy, block_size=1)
    for address, pc in looping(working_set=1280, n=100_000):
        cache.access(address, pc=pc)
    print(cache.stats.miss_rate, policy.active_ipv().name)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .cache import CacheHierarchy, CacheStats, SetAssociativeCache, paper_hierarchy
from .core import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPLR_VECTOR,
    GIPPR_WI_VECTOR,
    IPV,
    PLRUTree,
    RecencyStack,
    lip_ipv,
    lru_ipv,
    paper_vectors,
)
from .policies import (
    BeladyPolicy,
    DGIPPRPolicy,
    DIPPolicy,
    DRRIPPolicy,
    GIPLRPolicy,
    GIPPRPolicy,
    PDPPolicy,
    SHiPPolicy,
    TreePLRUPolicy,
    TrueLRUPolicy,
    make_policy,
    policy_names,
)

__version__ = "1.0.0"

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheStats",
    "paper_hierarchy",
    "IPV",
    "PLRUTree",
    "RecencyStack",
    "lru_ipv",
    "lip_ipv",
    "GIPLR_VECTOR",
    "GIPPR_WI_VECTOR",
    "DGIPPR2_WI_VECTORS",
    "DGIPPR4_WI_VECTORS",
    "paper_vectors",
    "TrueLRUPolicy",
    "TreePLRUPolicy",
    "GIPLRPolicy",
    "GIPPRPolicy",
    "DGIPPRPolicy",
    "DIPPolicy",
    "DRRIPPolicy",
    "PDPPolicy",
    "SHiPPolicy",
    "BeladyPolicy",
    "make_policy",
    "policy_names",
    "__version__",
]
