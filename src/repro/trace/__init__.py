"""Trace infrastructure: records, generators, IO and analysis."""

from .analysis import (
    cold_miss_count,
    per_set_reuse_histogram,
    stack_distance_histogram,
)
from .filters import filter_through_caches, paper_l1_l2_filter
from .io import load_text_trace, load_trace, save_trace
from .record import (
    Trace,
    annotate_next_use,
    assign_instruction_positions,
    concatenate,
)
from .synthetic import (
    REGION,
    looping,
    noisy_loop,
    mix,
    pointer_chase,
    scan_interleaved,
    stack_distance,
    streaming,
    uniform_random,
    zipf,
)

__all__ = [
    "Trace",
    "annotate_next_use",
    "assign_instruction_positions",
    "concatenate",
    "save_trace",
    "load_trace",
    "load_text_trace",
    "filter_through_caches",
    "paper_l1_l2_filter",
    "streaming",
    "looping",
    "noisy_loop",
    "uniform_random",
    "zipf",
    "pointer_chase",
    "stack_distance",
    "scan_interleaved",
    "mix",
    "REGION",
    "stack_distance_histogram",
    "per_set_reuse_histogram",
    "cold_miss_count",
]
