"""Filtering raw access traces through upper cache levels.

The paper's traces are *LLC* access streams: Valgrind-collected program
references filtered through the L1/L2 (Section 4.3).  Our synthetic
workloads generate LLC-level streams directly, but users bringing raw
program traces need the same filtering — this module provides it.

``filter_through_caches`` replays a raw trace against small LRU caches and
keeps only the accesses that miss in all of them, preserving PCs and
scaling the instruction count so MPKI stays defined relative to the
original program.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..cache.cache import SetAssociativeCache
from ..policies.lru import TrueLRUPolicy
from .record import Trace

__all__ = ["filter_through_caches", "paper_l1_l2_filter"]


def filter_through_caches(
    trace: Trace,
    levels: Sequence[Tuple[int, int]],
    name: str = None,
) -> Trace:
    """Keep only the accesses that miss in every (num_sets, assoc) level.

    Levels are looked up in order; an access that hits at any level is
    absorbed there (and allocated upward), exactly like a real hierarchy's
    fill path.  The returned trace keeps the original instruction count:
    the filtered stream still represents the same program region.
    """
    caches = []
    for num_sets, assoc in levels:
        caches.append(
            SetAssociativeCache(
                num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=1
            )
        )
    keep_addresses = []
    keep_pcs = []
    keep_positions = [] if trace.positions is not None else None
    positions = trace.position_list()
    for i, (address, pc) in enumerate(trace):
        absorbed = False
        for cache in caches:
            if cache.access(address, pc=pc):
                absorbed = True
                break
        if not absorbed:
            keep_addresses.append(address)
            keep_pcs.append(pc)
            if keep_positions is not None:
                keep_positions.append(positions[i])
    return Trace(
        np.asarray(keep_addresses, dtype=np.int64),
        np.asarray(keep_pcs, dtype=np.int64),
        instructions=trace.instructions,
        name=name or f"{trace.name}>llc",
        positions=keep_positions,
    )


def paper_l1_l2_filter(trace: Trace, block_size: int = 64) -> Trace:
    """Filter with the paper's upper levels: 32KB/8-way L1, 256KB/8-way L2.

    Assumes the trace carries block addresses for the given block size.
    """
    l1_sets = (32 * 1024) // (8 * block_size)
    l2_sets = (256 * 1024) // (8 * block_size)
    return filter_through_caches(trace, [(l1_sets, 8), (l2_sets, 8)])
