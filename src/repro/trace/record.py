"""Trace representation.

A :class:`Trace` is the unit of work every simulator component consumes: a
sequence of last-level-cache accesses (block addresses plus the PC of the
memory instruction), together with the number of program instructions the
sequence represents.  This mirrors the paper's methodology (Section 4.3):
traces of LLC accesses collected per simpoint, with instruction counts used
to estimate CPI from miss counts.

Addresses are *block* addresses (cache caches should be built with
``block_size=1`` when driven by traces).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Trace", "annotate_next_use", "concatenate"]


class Trace:
    """An immutable LLC access trace.

    Parameters
    ----------
    addresses:
        Block addresses, one per access.
    pcs:
        PC of the instruction making each access; defaults to zeros.
    instructions:
        Program instructions the trace represents; defaults to
        ``10 * len(addresses)`` (a generic access intensity) and is used for
        MPKI and CPI estimates.
    name:
        Label for reports.
    """

    __slots__ = ("addresses", "pcs", "instructions", "name", "positions")

    def __init__(
        self,
        addresses: Sequence[int],
        pcs: Optional[Sequence[int]] = None,
        instructions: Optional[int] = None,
        name: str = "trace",
        positions: Optional[Sequence[int]] = None,
    ):
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim != 1:
            raise ValueError("addresses must be one-dimensional")
        if pcs is None:
            pcs = np.zeros(len(addresses), dtype=np.int64)
        else:
            pcs = np.asarray(pcs, dtype=np.int64)
            if pcs.shape != addresses.shape:
                raise ValueError("pcs must have the same length as addresses")
        self.addresses = addresses
        self.pcs = pcs
        if instructions is None:
            instructions = 10 * len(addresses)
        if instructions < len(addresses):
            raise ValueError(
                "instruction count cannot be lower than the access count"
            )
        self.instructions = int(instructions)
        self.name = name
        if positions is not None:
            positions = np.asarray(positions, dtype=np.int64)
            if positions.shape != addresses.shape:
                raise ValueError("positions must align with addresses")
            if len(positions) and (
                (np.diff(positions) < 0).any() or positions[0] < 0
            ):
                raise ValueError("positions must be non-decreasing and >= 0")
            if len(positions) and positions[-1] >= self.instructions:
                raise ValueError("positions must stay below instruction count")
        self.positions = positions

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return zip(self.addresses.tolist(), self.pcs.tolist())

    @property
    def accesses_per_kilo_instruction(self) -> float:
        return 1000.0 * len(self) / self.instructions if self.instructions else 0.0

    def address_list(self) -> List[int]:
        """Addresses as a plain list (fast to iterate in the hot loop)."""
        return self.addresses.tolist()

    def pc_list(self) -> List[int]:
        return self.pcs.tolist()

    def position_list(self) -> Optional[List[int]]:
        """Instruction positions as a list, or None when not annotated."""
        return self.positions.tolist() if self.positions is not None else None

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Trace":
        """A sub-trace with proportionally scaled instruction count."""
        n = len(self)
        start, stop, _ = slice(start, stop).indices(n)
        fraction = (stop - start) / n if n else 0.0
        positions = None
        if self.positions is not None and stop > start:
            base = int(self.positions[start])
            positions = self.positions[start:stop] - base
        return Trace(
            self.addresses[start:stop],
            self.pcs[start:stop],
            instructions=max(
                stop - start,
                int(self.instructions * fraction),
                int(positions[-1]) + 1 if positions is not None and len(positions) else 0,
            ),
            name=name or f"{self.name}[{start}:{stop}]",
            positions=positions,
        )

    def footprint(self) -> int:
        """Number of distinct blocks touched."""
        return int(np.unique(self.addresses).size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace(name={self.name!r}, accesses={len(self)}, "
            f"instructions={self.instructions}, footprint={self.footprint()})"
        )


def annotate_next_use(trace: Trace) -> List[int]:
    """Next-use index for every access (-1 when the block is never reused).

    Required by Belady's MIN: a single backward pass recording, for each
    access, the index of the *next* access to the same block.
    """
    addresses = trace.address_list()
    next_use = [-1] * len(addresses)
    last_seen: dict = {}
    for i in range(len(addresses) - 1, -1, -1):
        addr = addresses[i]
        next_use[i] = last_seen.get(addr, -1)
        last_seen[addr] = i
    return next_use


def concatenate(traces: Sequence[Trace], name: str = "concat") -> Trace:
    """Concatenate traces back-to-back (e.g. phases of one workload).

    Instruction positions, when every part has them, are stitched with
    each part offset by the instructions of the parts before it.
    """
    if not traces:
        raise ValueError("need at least one trace")
    positions = None
    if all(t.positions is not None for t in traces):
        offset = 0
        parts = []
        for t in traces:
            parts.append(t.positions + offset)
            offset += t.instructions
        positions = np.concatenate(parts)
    return Trace(
        np.concatenate([t.addresses for t in traces]),
        np.concatenate([t.pcs for t in traces]),
        instructions=sum(t.instructions for t in traces),
        name=name,
        positions=positions,
    )


def assign_instruction_positions(
    trace: Trace,
    seed: int = 0,
    burstiness: float = 0.0,
) -> Trace:
    """Annotate a trace with per-access instruction positions.

    ``burstiness`` in [0, 1) shapes the gaps: 0 gives near-uniform spacing,
    higher values cluster accesses into bursts separated by long compute
    stretches — the pattern that creates memory-level parallelism (misses
    in a burst overlap; see :mod:`repro.timing.mlp`).
    """
    if not 0.0 <= burstiness < 1.0:
        raise ValueError("burstiness must be in [0, 1)")
    n = len(trace)
    if n == 0:
        return trace
    rng = np.random.default_rng(seed)
    if burstiness == 0.0:
        gaps = rng.uniform(0.5, 1.5, size=n)
    else:
        # A two-state gap mixture: short in-burst gaps, long between-burst.
        in_burst = rng.random(n) >= burstiness / 2
        short = rng.uniform(0.05, 0.3, size=n)
        long = rng.uniform(1.0, 4.0, size=n) / (1.0 - burstiness)
        gaps = np.where(in_burst, short, long)
    positions = np.cumsum(gaps)
    # Normalize into [0, instructions).
    scale = (trace.instructions - 1) / positions[-1]
    positions = np.floor(positions * scale).astype(np.int64)
    positions = np.maximum.accumulate(positions)
    return Trace(
        trace.addresses,
        trace.pcs,
        instructions=trace.instructions,
        name=trace.name,
        positions=positions,
    )
