"""Synthetic trace generators.

These stand in for the paper's SPEC CPU 2006 simpoint traces (see DESIGN.md,
substitutions table).  Replacement-policy behaviour at the LLC is governed
by the reuse-distance distribution of the access stream, so each generator
controls exactly that:

* :func:`streaming` — zero-reuse blocks (Section 2.2's motivation).
* :func:`looping` — cyclic working-set sweeps; a loop slightly larger than
  the cache is the classic LRU-thrash / LIP-win pattern.
* :func:`uniform_random`, :func:`zipf` — probabilistic working sets.
* :func:`pointer_chase` — random walk over a large footprint.
* :func:`stack_distance` — the general model: draws each access's LRU stack
  depth from an arbitrary distribution.
* :func:`mix`, plus :func:`~repro.trace.record.concatenate` for phases.

All generators are deterministic for a given seed, tag accesses with a small
per-stream set of PCs (so PC-indexed policies like SHiP behave sensibly) and
use disjoint address regions unless told otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .record import Trace, concatenate

__all__ = [
    "streaming",
    "looping",
    "uniform_random",
    "zipf",
    "pointer_chase",
    "stack_distance",
    "scan_interleaved",
    "mix",
]

#: Address regions of different streams are separated by this many blocks so
#: they never alias even for large footprints.
REGION = 1 << 28


def _pcs(rng: np.random.Generator, n: int, pc_base: int, pc_count: int):
    if pc_count <= 1:
        return np.full(n, pc_base, dtype=np.int64)
    return pc_base + rng.integers(0, pc_count, size=n, dtype=np.int64)


def streaming(
    n: int,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    pc_count: int = 2,
    name: str = "streaming",
) -> Trace:
    """Sequential blocks that are never revisited (pure zero-reuse)."""
    rng = np.random.default_rng(seed)
    addresses = region * REGION + np.arange(n, dtype=np.int64)
    return Trace(
        addresses,
        _pcs(rng, n, pc_base=region * 1000 + 1, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def looping(
    working_set: int,
    n: int,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    pc_count: int = 4,
    name: str = "looping",
) -> Trace:
    """Cyclic sweep over ``working_set`` blocks.

    With a working set slightly larger than the cache this produces the
    canonical LRU-thrash pattern: LRU hits 0 % while LRU-insertion retains
    most of the loop.
    """
    if working_set < 1:
        raise ValueError("working_set must be positive")
    rng = np.random.default_rng(seed)
    addresses = region * REGION + (np.arange(n, dtype=np.int64) % working_set)
    return Trace(
        addresses,
        _pcs(rng, n, pc_base=region * 1000 + 11, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def noisy_loop(
    working_set: int,
    n: int,
    noise: float = 0.3,
    noise_working_set: Optional[int] = None,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    name: str = "noisy-loop",
) -> Trace:
    """A cyclic loop interleaved with unexploitable random noise.

    Real thrashing workloads are not pure loops: a fraction of their
    accesses (``noise``) touch a footprint far larger than the cache and
    miss under *every* policy.  The noise bounds how much any replacement
    policy can recover, keeping policy-vs-policy gaps at realistic
    magnitudes (see the workload-calibration notes in DESIGN.md).
    """
    if working_set < 1:
        raise ValueError("working_set must be positive")
    if not 0.0 <= noise < 1.0:
        raise ValueError("noise must be in [0, 1)")
    if noise_working_set is None:
        noise_working_set = 4 * working_set
    rng = np.random.default_rng(seed)
    is_noise = rng.random(n) < noise
    loop_index = np.cumsum(~is_noise) % working_set
    noise_addr = working_set + rng.integers(
        0, noise_working_set, size=n, dtype=np.int64
    )
    addresses = np.where(is_noise, noise_addr, loop_index)
    pcs = np.where(is_noise, region * 1000 + 71, region * 1000 + 72)
    return Trace(
        region * REGION + addresses.astype(np.int64),
        pcs.astype(np.int64),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def uniform_random(
    working_set: int,
    n: int,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    pc_count: int = 8,
    name: str = "uniform",
) -> Trace:
    """Uniformly random accesses over a working set."""
    rng = np.random.default_rng(seed)
    addresses = region * REGION + rng.integers(
        0, working_set, size=n, dtype=np.int64
    )
    return Trace(
        addresses,
        _pcs(rng, n, pc_base=region * 1000 + 23, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def zipf(
    working_set: int,
    n: int,
    alpha: float = 1.2,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    pc_count: int = 8,
    name: str = "zipf",
) -> Trace:
    """Zipf-popularity accesses: a hot head plus a long cold tail.

    Ranks are drawn from a truncated Zipf and scattered over the address
    space with a fixed permutation so popularity is not correlated with
    cache index bits.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a proper Zipf")
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(alpha, size=2 * n)
    ranks = ranks[ranks <= working_set][:n]
    while len(ranks) < n:
        extra = rng.zipf(alpha, size=n)
        ranks = np.concatenate([ranks, extra[extra <= working_set]])[:n]
    perm = np.random.default_rng(seed ^ 0x5EED).permutation(working_set)
    addresses = region * REGION + perm[ranks - 1]
    return Trace(
        addresses.astype(np.int64),
        _pcs(rng, n, pc_base=region * 1000 + 37, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def pointer_chase(
    working_set: int,
    n: int,
    seed: int = 0,
    region: int = 0,
    locality: float = 0.0,
    instructions_per_access: float = 6.0,
    pc_count: int = 4,
    name: str = "pointer-chase",
) -> Trace:
    """A random walk through a pointer graph over a large footprint.

    ``locality`` in [0, 1) is the probability that a step revisits a recent
    node instead of jumping uniformly (dependent loads with a small hot
    neighbourhood, mcf-style).
    """
    rng = np.random.default_rng(seed)
    jumps = rng.integers(0, working_set, size=n, dtype=np.int64)
    addresses = jumps.copy()
    if locality > 0:
        recent = rng.integers(1, 32, size=n, dtype=np.int64)
        local = rng.random(n) < locality
        for i in range(1, n):
            if local[i]:
                addresses[i] = addresses[max(0, i - recent[i])]
    return Trace(
        region * REGION + addresses,
        _pcs(rng, n, pc_base=region * 1000 + 41, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def stack_distance(
    distances: Sequence[int],
    probabilities: Sequence[float],
    n: int,
    cold_fraction: float = 0.02,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    pc_count: int = 8,
    name: str = "stackdist",
) -> Trace:
    """The generative LRU-stack model.

    Each access either touches a brand-new block (with ``cold_fraction``
    probability) or re-touches the block at a sampled depth of a global LRU
    stack.  This directly shapes the reuse-distance profile the cache sees —
    the knob every replacement-policy outcome depends on.
    """
    distances = list(distances)
    probabilities = np.asarray(probabilities, dtype=float)
    if len(distances) != len(probabilities):
        raise ValueError("distances and probabilities must align")
    if probabilities.sum() <= 0:
        raise ValueError("probabilities must not be all zero")
    probabilities = probabilities / probabilities.sum()
    rng = np.random.default_rng(seed)
    depth_choices = rng.choice(len(distances), size=n, p=probabilities)
    cold = rng.random(n) < cold_fraction
    stack: List[int] = []
    next_block = 0
    addresses = np.empty(n, dtype=np.int64)
    for i in range(n):
        if cold[i] or not stack:
            block = next_block
            next_block += 1
        else:
            depth = min(distances[depth_choices[i]], len(stack) - 1)
            block = stack.pop(depth)
        addresses[i] = block
        stack.insert(0, block)
        if len(stack) > 4 * (max(distances) + 1):
            stack.pop()
    return Trace(
        region * REGION + addresses,
        _pcs(rng, n, pc_base=region * 1000 + 53, pc_count=pc_count),
        instructions=int(n * instructions_per_access),
        name=name,
    )


def scan_interleaved(
    hot_set: int,
    scan_length: int,
    period: int,
    n: int,
    seed: int = 0,
    region: int = 0,
    instructions_per_access: float = 10.0,
    name: str = "scan-interleaved",
) -> Trace:
    """A hot working set periodically disturbed by one-shot scans.

    The scans are dead-on-arrival blocks (Section 2.2's "zero-reuse
    blocks"); policies that insert near LRU or predict deadness evict them
    quickly instead of flushing the hot set.
    """
    rng = np.random.default_rng(seed)
    addresses = np.empty(n, dtype=np.int64)
    pcs = np.empty(n, dtype=np.int64)
    scan_cursor = hot_set  # scans use addresses beyond the hot set
    i = 0
    while i < n:
        burst = min(period, n - i)
        hot = rng.integers(0, hot_set, size=burst, dtype=np.int64)
        addresses[i : i + burst] = hot
        pcs[i : i + burst] = region * 1000 + 61 + (hot % 4)
        i += burst
        burst = min(scan_length, n - i)
        if burst > 0:
            addresses[i : i + burst] = scan_cursor + np.arange(burst)
            pcs[i : i + burst] = region * 1000 + 97
            scan_cursor += burst
            i += burst
    return Trace(
        region * REGION + addresses,
        pcs,
        instructions=int(n * instructions_per_access),
        name=name,
    )


def mix(
    traces: Sequence[Trace],
    chunk: int = 64,
    seed: int = 0,
    name: str = "mix",
) -> Trace:
    """Round-robin interleave of several traces in chunks of accesses.

    Models a workload with several concurrent access streams (the streams
    keep their own address regions if built with distinct ``region``
    arguments).
    """
    if not traces:
        raise ValueError("need at least one trace")
    rng = np.random.default_rng(seed)
    cursors = [0] * len(traces)
    parts_addr = []
    parts_pc = []
    live = set(range(len(traces)))
    while live:
        order = sorted(live)
        rng.shuffle(order)
        for t in order:
            trace = traces[t]
            start = cursors[t]
            stop = min(start + chunk, len(trace))
            parts_addr.append(trace.addresses[start:stop])
            parts_pc.append(trace.pcs[start:stop])
            cursors[t] = stop
            if stop >= len(trace):
                live.discard(t)
    return Trace(
        np.concatenate(parts_addr),
        np.concatenate(parts_pc),
        instructions=sum(t.instructions for t in traces),
        name=name,
    )
