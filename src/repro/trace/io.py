"""Trace persistence.

Traces are stored as compressed ``.npz`` archives with the address and PC
arrays plus metadata, so evolved-vector experiments can reuse identical
traces across processes (the GA fans out with multiprocessing).  A simple
text format is also supported for importing traces produced by external
tools (one access per line: ``address[,pc[,instruction_position]]``, hex
accepted with a ``0x`` prefix, ``#`` comments ignored).
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from .record import Trace

__all__ = ["save_trace", "load_trace", "load_text_trace"]


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to ``path`` (.npz)."""
    payload = dict(
        addresses=trace.addresses,
        pcs=trace.pcs,
        instructions=np.int64(trace.instructions),
        name=np.str_(trace.name),
    )
    if trace.positions is not None:
        payload["positions"] = trace.positions
    np.savez_compressed(path, **payload)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        return Trace(
            data["addresses"],
            data["pcs"],
            instructions=int(data["instructions"]),
            name=str(data["name"]),
            positions=data["positions"] if "positions" in data else None,
        )


def _parse_int(token: str) -> int:
    token = token.strip()
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def load_text_trace(
    path: Union[str, os.PathLike],
    instructions: Optional[int] = None,
    name: Optional[str] = None,
) -> Trace:
    """Import a textual trace: ``address[,pc[,instruction_position]]``.

    Lines starting with ``#`` (and blank lines) are skipped.  Positions,
    when present, must appear on every line.  ``instructions`` defaults to
    the last position + 1 when positions are given, else to the Trace
    default.
    """
    addresses = []
    pcs = []
    positions = []
    saw_positions = None
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f for f in line.replace("\t", ",").split(",") if f.strip()]
            if not 1 <= len(fields) <= 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 1-3 fields, got {len(fields)}"
                )
            has_position = len(fields) == 3
            if saw_positions is None:
                saw_positions = has_position
            elif saw_positions != has_position:
                raise ValueError(
                    f"{path}:{line_number}: inconsistent field count "
                    "(positions must appear on every line or none)"
                )
            addresses.append(_parse_int(fields[0]))
            pcs.append(_parse_int(fields[1]) if len(fields) >= 2 else 0)
            if has_position:
                positions.append(_parse_int(fields[2]))
    if not addresses:
        raise ValueError(f"{path}: no accesses found")
    if saw_positions and instructions is None:
        instructions = positions[-1] + 1
    return Trace(
        addresses,
        pcs,
        instructions=instructions,
        name=name or os.path.basename(str(path)),
        positions=positions if saw_positions else None,
    )
