"""Trace analysis: reuse-distance and stack-distance profiles.

These are the diagnostics used to validate that the synthetic SPEC stand-ins
have the reuse behaviour their archetypes claim (tests) and to drive PDP's
protecting-distance intuition at trace level.

These walks are the *oracles*: simple, obviously-correct pure Python,
O(accesses x footprint) for the stack distance.  For profiling at scale
(miss curves over millions of accesses) use their vectorized twins in
:mod:`repro.obs.analytics.profile`, which are pinned bit-identical to
these functions by ``tests/obs`` and ``make smoke-analytics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from .record import Trace

__all__ = [
    "stack_distance_histogram",
    "per_set_reuse_histogram",
    "cold_miss_count",
]


def stack_distance_histogram(
    trace: Trace, max_distance: int = 4096
) -> Dict[int, int]:
    """Global LRU stack-distance histogram.

    Returns a mapping distance -> count; cold (first-touch) accesses are
    recorded under key ``-1`` and distances beyond ``max_distance`` under
    ``max_distance``.  Uses an ordered dict as the LRU stack: move-to-front
    on touch, position lookup by scan capped at ``max_distance``.
    """
    if max_distance < 1:
        raise ValueError(f"max_distance must be positive, got {max_distance}")
    histogram: Dict[int, int] = {}
    stack: "OrderedDict[int, None]" = OrderedDict()
    for address in trace.address_list():
        if address in stack:
            distance = 0
            for key in stack:  # newest-first iteration, see below
                if key == address:
                    break
                distance += 1
                if distance >= max_distance:
                    break
            distance = min(distance, max_distance)
            histogram[distance] = histogram.get(distance, 0) + 1
            stack.move_to_end(address, last=False)
        else:
            histogram[-1] = histogram.get(-1, 0) + 1
            stack[address] = None
            stack.move_to_end(address, last=False)
    return histogram


def per_set_reuse_histogram(
    trace: Trace,
    num_sets: int,
    max_distance: int = 256,
) -> List[int]:
    """Reuse distances measured in *accesses to the same set*.

    This is PDP's unit of protecting distance.  Returns a histogram list of
    length ``max_distance + 1`` (the last bucket accumulates overflow).
    """
    if max_distance < 1:
        raise ValueError(f"max_distance must be positive, got {max_distance}")
    histogram = [0] * (max_distance + 1)
    set_clock = [0] * num_sets
    last_touch: Dict[int, int] = {}
    mask = num_sets - 1
    if num_sets & mask:
        raise ValueError("num_sets must be a power of two")
    for address in trace.address_list():
        set_index = address & mask
        set_clock[set_index] += 1
        now = set_clock[set_index]
        last = last_touch.get(address)
        if last is not None:
            histogram[min(now - last, max_distance)] += 1
        last_touch[address] = now
    return histogram


def cold_miss_count(trace: Trace) -> int:
    """Number of first-touch (compulsory-miss) accesses."""
    return trace.footprint()
