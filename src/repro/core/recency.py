"""True-LRU recency stack with IPV-driven insertion and promotion.

This is the Section 2 substrate: each k-way set keeps an explicit recency
stack (position 0 = MRU .. position k-1 = LRU) and an IPV decides where
re-referenced and incoming blocks land.  Bystander blocks shift by one
position toward the vacated slot, exactly as Section 2.3 specifies:

* ``V[i] < i``  — blocks at positions ``V[i] .. i-1`` shift *down* one;
* ``V[i] > i``  — blocks at positions ``i+1 .. V[i]`` shift *up* one.

With ``V = [0]*(k+1)`` this is precisely classic LRU.
"""

from __future__ import annotations

from typing import List

from .ipv import IPV

__all__ = ["RecencyStack"]


class RecencyStack:
    """Recency stack for one cache set, storing way numbers by position.

    ``stack[p]`` is the way occupying position ``p``; ``pos_of[w]`` is the
    inverse map.  Ways start out in identity order, which matches a cold
    set being filled way 0 first.
    """

    __slots__ = ("k", "ipv", "stack", "pos_of")

    def __init__(self, k: int, ipv: IPV):
        if ipv.k != k:
            raise ValueError(f"IPV is for {ipv.k}-way sets, stack is {k}-way")
        self.k = k
        self.ipv = ipv
        self.stack: List[int] = list(range(k))
        self.pos_of: List[int] = list(range(k))

    # ------------------------------------------------------------------
    # Primitive: move the block at position ``src`` to position ``dst``.
    # ------------------------------------------------------------------
    def _move(self, src: int, dst: int) -> None:
        if src == dst:
            return
        stack = self.stack
        pos_of = self.pos_of
        way = stack[src]
        if dst < src:
            # Shift positions dst..src-1 down by one.
            for p in range(src, dst, -1):
                moved = stack[p - 1]
                stack[p] = moved
                pos_of[moved] = p
        else:
            # Shift positions src+1..dst up by one.
            for p in range(src, dst):
                moved = stack[p + 1]
                stack[p] = moved
                pos_of[moved] = p
        stack[dst] = way
        pos_of[way] = dst

    # ------------------------------------------------------------------
    # Policy operations.
    # ------------------------------------------------------------------
    def victim(self) -> int:
        """Way to evict: the block in the LRU position ``k - 1``."""
        return self.stack[self.k - 1]

    def touch(self, way: int) -> None:
        """Re-reference ``way``: promote it to ``V[position(way)]``."""
        src = self.pos_of[way]
        self._move(src, self.ipv.promotion(src))

    def insert(self, way: int) -> None:
        """Fill ``way`` with an incoming block.

        The incoming block conceptually replaces the victim at position
        ``k - 1`` and is then moved to the insertion position ``V[k]``
        (Section 2.1.2 / 2.3).  The caller must have placed the new block in
        the way previously occupied by :meth:`victim` (or any way, for cold
        fills — the way keeps its current position before the move).
        """
        src = self.pos_of[way]
        self._move(src, self.ipv.insertion)

    def position_of(self, way: int) -> int:
        return self.pos_of[way]

    def place(self, way: int, pos: int) -> None:
        """Move ``way`` directly to ``pos``, bypassing the IPV.

        Exists for policies like DIP/BIP that choose insertion positions
        probabilistically rather than through a fixed vector.
        """
        if not 0 <= pos < self.k:
            raise ValueError(f"position {pos} out of range for {self.k}-way set")
        self._move(self.pos_of[way], pos)

    def set_ipv(self, ipv: IPV) -> None:
        """Switch the active IPV (used by set-dueling followers)."""
        if ipv.k != self.k:
            raise ValueError(f"IPV is for {ipv.k}-way sets, stack is {self.k}-way")
        self.ipv = ipv

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples).
    # ------------------------------------------------------------------
    def order(self) -> List[int]:
        """Ways ordered MRU-first."""
        return list(self.stack)

    def check_invariants(self) -> None:
        """Raise AssertionError unless stack and inverse map are consistent."""
        assert sorted(self.stack) == list(range(self.k)), self.stack
        for pos, way in enumerate(self.stack):
            assert self.pos_of[way] == pos, (self.stack, self.pos_of)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecencyStack(k={self.k}, mru_first={self.stack})"
