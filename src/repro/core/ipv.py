"""Insertion/Promotion Vectors (IPVs).

An IPV for a k-way set-associative cache is a (k+1)-entry vector ``V[0..k]``
of recency-stack positions in ``0..k-1`` (Section 2.3 of the paper):

* ``V[i]`` for ``i < k`` is the new position a block at position ``i`` is
  promoted to when it is re-referenced;
* ``V[k]`` is the position an incoming block is inserted at.

Classic policies are special cases: true LRU is ``[0]*k + [0]`` (promote to
MRU, insert at MRU) and LRU-insertion (LIP) is ``[0]*k + [k-1]``.

This module provides the :class:`IPV` value type, well-formedness checks,
the transition-graph induction used by the paper's degeneracy analysis
(footnote 1), and constructors for the classic vectors.
"""

from __future__ import annotations

import random
from typing import Sequence, Set, Tuple

from .plru import is_power_of_two

__all__ = ["IPV", "lru_ipv", "lip_ipv", "mru_pessimistic_ipv", "random_ipv"]


class IPV:
    """An immutable, validated insertion/promotion vector.

    Parameters
    ----------
    entries:
        Sequence of ``k + 1`` integers, each in ``0..k-1``.  ``entries[i]``
        is the promotion target for stack position ``i``; ``entries[k]`` is
        the insertion position.
    name:
        Optional human-readable label used in reports.
    """

    __slots__ = ("entries", "k", "name")

    def __init__(self, entries: Sequence[int], name: str = ""):
        entries = tuple(int(e) for e in entries)
        k = len(entries) - 1
        if k < 2:
            raise ValueError(f"IPV needs at least 3 entries, got {len(entries)}")
        if not is_power_of_two(k):
            raise ValueError(
                f"IPV length {len(entries)} implies associativity {k}, "
                "which is not a power of two"
            )
        for i, e in enumerate(entries):
            if not 0 <= e < k:
                raise ValueError(f"IPV entry V[{i}]={e} out of range 0..{k - 1}")
        object.__setattr__(self, "entries", entries)
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "name", name or f"ipv{k}")

    # IPVs are value objects: hashable, comparable by entries.
    def __setattr__(self, *_args):  # pragma: no cover - immutability guard
        raise AttributeError("IPV is immutable")

    def __reduce__(self):
        # Slots + the immutability guard defeat default pickling; rebuild
        # through the constructor instead (needed for multiprocess fan-out).
        return (IPV, (self.entries, self.name))

    def __getitem__(self, i: int) -> int:
        return self.entries[i]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __eq__(self, other) -> bool:
        return isinstance(other, IPV) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        body = " ".join(str(e) for e in self.entries)
        return f"IPV([{body}], name={self.name!r})"

    @property
    def insertion(self) -> int:
        """Position at which incoming blocks are inserted (``V[k]``)."""
        return self.entries[self.k]

    def promotion(self, pos: int) -> int:
        """Promotion target for a block re-referenced at ``pos``."""
        return self.entries[pos]

    def with_name(self, name: str) -> "IPV":
        return IPV(self.entries, name=name)

    def mutated(self, index: int, value: int) -> "IPV":
        """Return a copy with entry ``index`` replaced by ``value``."""
        entries = list(self.entries)
        entries[index] = value
        return IPV(entries, name=f"{self.name}~m{index}:{value}")

    # ------------------------------------------------------------------
    # Transition-graph analysis (paper footnote 1).
    # ------------------------------------------------------------------
    def transition_edges(self) -> Set[Tuple[int, int]]:
        """All possible position changes under true-LRU shift semantics.

        Edges come in two kinds (Section 2.3): a *promotion* edge
        ``i -> V[i]`` when the block at ``i`` is referenced, and *shift*
        edges for bystander blocks displaced by someone else's promotion:
        if ``V[j] < j`` blocks in ``V[j]..j-1`` shift down one position,
        otherwise blocks in ``j+1..V[j]`` shift up one.  Insertion behaves
        like a promotion from position ``k - 1`` to ``V[k]``.
        """
        k = self.k
        edges: Set[Tuple[int, int]] = set()
        moves = [(i, self.entries[i]) for i in range(k)]
        moves.append((k - 1, self.entries[k]))  # insertion replaces the victim
        for src, dst in moves:
            edges.add((src, dst))
            if dst < src:
                for p in range(dst, src):
                    edges.add((p, p + 1))
            elif dst > src:
                for p in range(src + 1, dst + 1):
                    edges.add((p, p - 1))
        return edges

    def reachable_from_insertion(self) -> Set[int]:
        """Positions reachable by a block after it is inserted."""
        adj = {}
        for a, b in self.transition_edges():
            adj.setdefault(a, set()).add(b)
        seen = {self.insertion}
        stack = [self.insertion]
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def is_degenerate(self) -> bool:
        """True when no path exists from the insertion position to MRU.

        The paper's footnote 1 calls such IPVs degenerate: an inserted block
        can never be promoted to the MRU position no matter how it is
        re-referenced, so the vector wastes part of the recency stack.
        """
        return 0 not in self.reachable_from_insertion()


def lru_ipv(k: int, name: str = "LRU") -> IPV:
    """The classic LRU vector: promote to MRU, insert at MRU."""
    return IPV([0] * (k + 1), name=name)


def lip_ipv(k: int, name: str = "LIP") -> IPV:
    """LRU-insertion (Qureshi et al.): promote to MRU, insert at LRU."""
    return IPV([0] * k + [k - 1], name=name)


def mru_pessimistic_ipv(k: int, name: str = "static") -> IPV:
    """The three-touch vector from Section 2.4.

    Insert at LRU, first re-reference promotes to the middle of the stack,
    second re-reference promotes to MRU.
    """
    entries = [0] * (k + 1)
    entries[k] = k - 1
    entries[k - 1] = k // 2
    return IPV(entries, name=name)


def random_ipv(k: int, rng: random.Random, name: str = "") -> IPV:
    """A uniformly random IPV, as sampled for Figure 1."""
    entries = [rng.randrange(k) for _ in range(k + 1)]
    return IPV(entries, name=name or "random")
