"""Set-dueling machinery (Section 2.3 background, Section 3.5 usage).

Set-dueling (Qureshi et al.) dedicates a few *leader sets* to each candidate
policy and lets a saturating counter track which leader group misses less;
all remaining *follower sets* adopt the winning policy.

Two selectors are provided:

* :class:`DuelSelector` — two policies, one PSEL counter (as in DIP and
  2-DGIPPR; the paper uses a single 11-bit counter).
* :class:`TournamentSelector` — four policies via Loh-style multi-set
  dueling: two pair counters plus a meta-counter (4-DGIPPR; three 11-bit
  counters total).
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = [
    "SaturatingCounter",
    "assign_leader_sets",
    "DuelSelector",
    "TournamentSelector",
    "make_selector",
]


class SaturatingCounter:
    """Signed saturating up/down counter with a fixed bit width.

    An n-bit counter saturates at ``[-2**(n-1), 2**(n-1) - 1]``.  The paper
    uses 11-bit counters for DGIPPR's set-dueling.
    """

    __slots__ = ("bits", "lo", "hi", "value")

    def __init__(self, bits: int = 11, init: int = 0):
        # Reject degenerate widths *and* non-integral widths: a float or
        # bool ``bits`` would silently build a counter with nonsensical
        # saturation bounds (``1 << (2.0 - 1)`` raises much later, deep in
        # an experiment; ``bits=True`` used to mean a 1-bit counter).
        if isinstance(bits, bool) or not isinstance(bits, int):
            raise TypeError(f"bits must be an int, got {type(bits).__name__}")
        if bits < 1:
            raise ValueError("counter needs at least 1 bit")
        self.bits = bits
        self.lo = -(1 << (bits - 1))
        self.hi = (1 << (bits - 1)) - 1
        if not isinstance(init, int) or isinstance(init, bool):
            raise TypeError(f"init must be an int, got {type(init).__name__}")
        if not self.lo <= init <= self.hi:
            raise ValueError(f"init {init} outside {bits}-bit range")
        self.value = init

    def increment(self) -> None:
        if self.value < self.hi:
            self.value += 1

    def decrement(self) -> None:
        if self.value > self.lo:
            self.value -= 1

    def normalized(self) -> float:
        """The counter value scaled into ``[-1.0, 1.0]``.

        Exactly ``-1.0`` / ``+1.0`` at the saturation rails and ``0.0`` at
        the neutral point, independent of the bit width — so PSEL
        timelines from counters of different widths (the paper's 11-bit
        vs. the 10-bit DIP convention) plot on one axis.
        """
        if self.value >= 0:
            return self.value / self.hi if self.hi else 0.0
        return -(self.value / self.lo)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


def default_leaders_per_policy(num_sets: int, num_policies: int) -> int:
    """Leader sets per policy when the caller does not specify.

    The paper (and DIP/DRRIP) use 32 leaders per policy on a 4096-set LLC;
    for scaled-down caches this keeps the leader fraction per policy around
    1.5–12 % so dueling still samples representatively without dominating
    the cache.  On tiny geometries where even one leader per policy would
    not fit (``num_sets < num_policies``) this degrades to zero leaders —
    every set follows the counters' initial winner — rather than forcing an
    impossible assignment.
    """
    return min(
        32,
        max(1, num_sets // (8 * num_policies)),
        num_sets // num_policies,
    )


def assign_leader_sets(
    num_sets: int,
    num_policies: int,
    leaders_per_policy: Optional[int] = None,
    seed: int = 0xDEAD,
) -> List[int]:
    """Assign a leader policy (or -1 for follower) to each cache set.

    Sets are shuffled deterministically and the first ``leaders_per_policy``
    become leaders for policy 0, the next block for policy 1, and so on.
    This spreads each policy's leaders uniformly across the index space, the
    property constituency-based selection is designed for.

    Requests that do not fit the geometry are clamped rather than rejected:
    a cache with fewer sets than ``num_policies * leaders_per_policy`` gets
    ``num_sets // num_policies`` leaders per policy (possibly zero, in
    which case every set is a follower).  This lets the paper's 32-leader
    default degrade gracefully on scaled-down caches instead of raising.
    """
    if leaders_per_policy is None:
        leaders_per_policy = default_leaders_per_policy(num_sets, num_policies)
    if leaders_per_policy < 0:
        raise ValueError("leaders_per_policy cannot be negative")
    leaders_per_policy = min(leaders_per_policy, num_sets // num_policies)
    order = list(range(num_sets))
    random.Random(seed).shuffle(order)
    assignment = [-1] * num_sets
    for policy in range(num_policies):
        start = policy * leaders_per_policy
        for set_index in order[start : start + leaders_per_policy]:
            assignment[set_index] = policy
    return assignment


class DuelSelector:
    """Two-policy set-dueling with a single PSEL counter.

    A miss in a policy-0 leader set increments the counter; a miss in a
    policy-1 leader set decrements it.  Followers run policy 0 while the
    counter is negative (policy 0 has missed less), else policy 1 — the
    convention of Qureshi et al. as restated in Section 2.3.
    """

    num_policies = 2

    def __init__(
        self,
        num_sets: int,
        leaders_per_policy: Optional[int] = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
    ):
        self.leaders = assign_leader_sets(
            num_sets, 2, leaders_per_policy, seed=seed
        )
        self.psel = SaturatingCounter(counter_bits)

    def leader_policy(self, set_index: int) -> int:
        """Leader policy for a set, or -1 when the set is a follower."""
        return self.leaders[set_index]

    def record_miss(self, set_index: int) -> None:
        leader = self.leaders[set_index]
        if leader == 0:
            self.psel.increment()
        elif leader == 1:
            self.psel.decrement()

    def selected(self) -> int:
        """Policy currently followed by the follower sets."""
        return 0 if self.psel.value < 0 else 1

    def policy_for_set(self, set_index: int) -> int:
        leader = self.leaders[set_index]
        return leader if leader >= 0 else self.selected()


class TournamentSelector:
    """Four-policy multi-set dueling (Loh), used by 4-DGIPPR.

    Policies 0/1 duel on one counter and 2/3 on another; a meta-counter
    duels the two pairs (incremented by misses in pair-{0,1} leaders,
    decremented by misses in pair-{2,3} leaders).  Followers run the winner
    of the winning pair.  Total state: three 11-bit counters per cache.
    """

    num_policies = 4

    def __init__(
        self,
        num_sets: int,
        leaders_per_policy: Optional[int] = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
    ):
        self.leaders = assign_leader_sets(
            num_sets, 4, leaders_per_policy, seed=seed
        )
        self.pair01 = SaturatingCounter(counter_bits)
        self.pair23 = SaturatingCounter(counter_bits)
        self.meta = SaturatingCounter(counter_bits)

    def leader_policy(self, set_index: int) -> int:
        return self.leaders[set_index]

    def record_miss(self, set_index: int) -> None:
        leader = self.leaders[set_index]
        if leader < 0:
            return
        if leader == 0:
            self.pair01.increment()
        elif leader == 1:
            self.pair01.decrement()
        elif leader == 2:
            self.pair23.increment()
        else:
            self.pair23.decrement()
        if leader in (0, 1):
            self.meta.increment()
        else:
            self.meta.decrement()

    def selected(self) -> int:
        if self.meta.value < 0:
            return 0 if self.pair01.value < 0 else 1
        return 2 if self.pair23.value < 0 else 3

    def policy_for_set(self, set_index: int) -> int:
        leader = self.leaders[set_index]
        return leader if leader >= 0 else self.selected()


class BracketSelector:
    """Generalized multi-set dueling for any power-of-two policy count.

    Extends the Loh tournament to ``P = 2**m`` policies with a full bracket
    of saturating counters: level 0 duels adjacent policies, level 1 duels
    adjacent pairs, and so on.  A leader miss updates the counter of its
    group at every level.  This exists for the paper's "beyond four vectors
    yields diminishing returns" ablation (Section 3.5); the paper itself
    stops at four.
    """

    def __init__(
        self,
        num_sets: int,
        num_policies: int,
        leaders_per_policy: Optional[int] = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
    ):
        if num_policies < 2 or num_policies & (num_policies - 1):
            raise ValueError("BracketSelector needs a power-of-two policy count")
        self.num_policies = num_policies
        self.leaders = assign_leader_sets(
            num_sets, num_policies, leaders_per_policy, seed=seed
        )
        self.levels: List[List[SaturatingCounter]] = []
        groups = num_policies // 2
        while groups >= 1:
            self.levels.append([SaturatingCounter(counter_bits) for _ in range(groups)])
            groups //= 2

    def leader_policy(self, set_index: int) -> int:
        return self.leaders[set_index]

    def record_miss(self, set_index: int) -> None:
        leader = self.leaders[set_index]
        if leader < 0:
            return
        group = leader
        for counters in self.levels:
            if group & 1:
                counters[group >> 1].decrement()
            else:
                counters[group >> 1].increment()
            group >>= 1

    def selected(self) -> int:
        # Walk the bracket from the root down, picking the less-missing side.
        group = 0
        for counters in reversed(self.levels):
            group = (group << 1) | (0 if counters[group].value < 0 else 1)
        return group

    def policy_for_set(self, set_index: int) -> int:
        leader = self.leaders[set_index]
        return leader if leader >= 0 else self.selected()


def make_selector(
    num_sets: int,
    num_policies: int,
    leaders_per_policy: int = 32,
    counter_bits: int = 11,
    seed: int = 0xDEAD,
):
    """Build the appropriate selector for a power-of-two policy count.

    For a single policy a trivial constant selector is returned so that
    static GIPPR and dynamic DGIPPR share one code path.  Two and four
    policies use the paper's exact schemes; larger powers of two use the
    generalized bracket (ablation only).
    """
    if num_policies == 1:
        return _ConstantSelector()
    if num_policies == 2:
        return DuelSelector(num_sets, leaders_per_policy, counter_bits, seed)
    if num_policies == 4:
        return TournamentSelector(num_sets, leaders_per_policy, counter_bits, seed)
    return BracketSelector(
        num_sets, num_policies, leaders_per_policy, counter_bits, seed
    )


class _ConstantSelector:
    """Degenerate selector for the static single-vector case."""

    num_policies = 1

    def leader_policy(self, set_index: int) -> int:
        return -1

    def record_miss(self, set_index: int) -> None:
        pass

    def selected(self) -> int:
        return 0

    def policy_for_set(self, set_index: int) -> int:
        return 0
