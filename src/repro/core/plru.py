"""Tree-based PseudoLRU machinery.

This module implements the four algorithms from the paper (Figures 5, 6, 7
and 9) on a *packed* representation: the complete binary tree for a k-way set
is stored as a single integer holding the k-1 internal ``plru`` bits.

Tree layout
-----------
Internal nodes are numbered in heap order: node 1 is the root and node ``n``
has children ``2n`` (left) and ``2n + 1`` (right).  Nodes ``k .. 2k-1`` are
the (virtual) leaves; leaf ``k + w`` corresponds to way ``w``.  The plru bit
of internal node ``n`` is stored at bit ``n - 1`` of the state integer, so a
fresh all-zeros state is simply ``0``.

A plru bit of 0 sends the victim search left, 1 sends it right.

Positions
---------
Every block occupies a distinct *PseudoLRU recency-stack position* decoded
from the plru bits on its leaf-to-root path (Figure 7).  Position 0 is the
pseudo-MRU (PMRU) block; position ``k - 1`` (all ones) is the PseudoLRU
victim.  :func:`position` and :func:`set_position` convert between plru bits
and positions; :func:`set_position` is the primitive that makes arbitrary
insertion/promotion vectors implementable on PLRU state.
"""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "tree_bits",
    "find_plru",
    "promote",
    "position",
    "set_position",
    "all_positions",
    "way_at_position",
    "PLRUTree",
]


def is_power_of_two(k: int) -> bool:
    """Return True if ``k`` is a positive power of two."""
    return k > 0 and (k & (k - 1)) == 0


def _check_assoc(k: int) -> None:
    if not is_power_of_two(k):
        raise ValueError(f"associativity must be a power of two, got {k}")


def tree_bits(k: int) -> int:
    """Number of plru bits needed for a k-way set (k - 1 internal nodes)."""
    _check_assoc(k)
    return k - 1


def find_plru(state: int, k: int) -> int:
    """Find the PseudoLRU victim way (Figure 5).

    Walk from the root following plru bits: 0 goes left, 1 goes right.  The
    leaf reached is the PLRU block, i.e. the block at position ``k - 1``.
    """
    n = 1
    while n < k:
        n = (n << 1) | ((state >> (n - 1)) & 1)
    return n - k


def promote(state: int, way: int, k: int) -> int:
    """Promote ``way`` to the PMRU position (Figure 6).

    Sets every plru bit on the leaf-to-root path to point *away* from the
    promoted block, and returns the new state.  Equivalent to
    ``set_position(state, way, 0, k)``.
    """
    q = k + way
    while q > 1:
        parent = q >> 1
        mask = 1 << (parent - 1)
        if q & 1:
            # Right child: parent must point left (0) to lead away.
            state &= ~mask
        else:
            # Left child: parent must point right (1) to lead away.
            state |= mask
        q = parent
    return state


def position(state: int, way: int, k: int) -> int:
    """Decode the PseudoLRU recency-stack position of ``way`` (Figure 7).

    Bit ``i`` of the position (counting from the leaf upward, LSB first) is
    the parent's plru bit when the i-th node on the path is a right child,
    and its complement when it is a left child.  More 1 bits mean the block
    is closer to eviction; position ``k - 1`` is the PLRU victim.
    """
    q = k + way
    x = 0
    i = 0
    while q > 1:
        parent = q >> 1
        b = (state >> (parent - 1)) & 1
        if not (q & 1):
            b ^= 1
        x |= b << i
        q = parent
        i += 1
    return x


def set_position(state: int, way: int, x: int, k: int) -> int:
    """Set the PseudoLRU position of ``way`` to ``x`` (Figure 9).

    Writes the plru bits on the leaf-to-root path so that ``way`` decodes to
    position ``x``.  As in hardware, this touches only ``log2(k)`` bits — but
    as a side effect it may drastically change *other* blocks' positions,
    which is why IPVs evolved for true LRU do not transfer to PLRU and the
    paper evolves PLRU-specific vectors (Section 3.4).
    """
    if not 0 <= x < k:
        raise ValueError(f"position {x} out of range for {k}-way set")
    q = k + way
    i = 0
    while q > 1:
        parent = q >> 1
        bit = (x >> i) & 1
        if not (q & 1):
            bit ^= 1
        mask = 1 << (parent - 1)
        state = (state | mask) if bit else (state & ~mask)
        q = parent
        i += 1
    return state


def all_positions(state: int, k: int) -> list:
    """Return the position of every way; always a permutation of 0..k-1."""
    return [position(state, w, k) for w in range(k)]


def way_at_position(state: int, x: int, k: int) -> int:
    """Return the way currently decoding to position ``x``.

    Walks down from the root using the bits of ``x`` from MSB (root level)
    to LSB (leaf level): a 1 bit follows the parent's plru direction, a 0
    bit goes the other way.
    """
    if not 0 <= x < k:
        raise ValueError(f"position {x} out of range for {k}-way set")
    n = 1
    level = k.bit_length() - 2  # index of the root-level bit of x
    while n < k:
        b = (state >> (n - 1)) & 1
        want = (x >> level) & 1
        # Position bit is 1 when we follow the plru direction (toward the
        # victim side), 0 when we go against it.
        n = (n << 1) | (b if want else b ^ 1)
        level -= 1
    return n - k


class PLRUTree:
    """A mutable wrapper around the packed PLRU state for one cache set.

    The functional API above is the ground truth; this class is a
    convenience for code that wants object syntax (examples, tests).
    """

    __slots__ = ("k", "state")

    def __init__(self, k: int, state: int = 0):
        _check_assoc(k)
        self.k = k
        self.state = state

    def victim(self) -> int:
        """Way of the current PseudoLRU block."""
        return find_plru(self.state, self.k)

    def touch(self, way: int) -> None:
        """Promote ``way`` to PMRU (classic PLRU hit handling)."""
        self.state = promote(self.state, way, self.k)

    def position_of(self, way: int) -> int:
        return position(self.state, way, self.k)

    def move_to(self, way: int, pos: int) -> None:
        self.state = set_position(self.state, way, pos, self.k)

    def positions(self) -> list:
        return all_positions(self.state, self.k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = format(self.state, f"0{self.k - 1}b")
        return f"PLRUTree(k={self.k}, bits={bits}, positions={self.positions()})"
