"""Published insertion/promotion vectors from the paper.

These are the exact vectors reported in Sections 2.5 and 5.3 for 16-way
associativity.  Shipping them lets every experiment run with the authors'
evolved vectors as well as with vectors evolved locally by :mod:`repro.ga`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .ipv import IPV, lip_ipv, lru_ipv

__all__ = [
    "GIPLR_VECTOR",
    "GIPPR_WI_VECTOR",
    "GIPPR_WN1_PERLBENCH",
    "DGIPPR2_WI_VECTORS",
    "DGIPPR4_WI_VECTORS",
    "LRU16",
    "LIP16",
    "paper_vectors",
    "load_wn1_vectors",
    "WN1_VECTORS_PATH",
]

#: Best vector evolved for true-LRU GIPLR (Section 2.5): insert at 13,
#: promote LRU-position blocks to 11, etc.
GIPLR_VECTOR = IPV(
    [0, 0, 1, 0, 3, 0, 1, 2, 1, 0, 5, 1, 0, 0, 1, 11, 13], name="GIPLR"
)

#: Workload-inclusive single vector for GIPPR (Section 5.3).
GIPPR_WI_VECTOR = IPV(
    [0, 0, 2, 8, 4, 1, 4, 1, 8, 0, 14, 8, 12, 13, 14, 9, 5], name="GIPPR-WI"
)

#: Best single workload-neutral vector for 400.perlbench (Section 5.3).
GIPPR_WN1_PERLBENCH = IPV(
    [12, 8, 14, 1, 4, 4, 2, 1, 8, 12, 6, 4, 0, 0, 10, 12, 11],
    name="GIPPR-WN1-perlbench",
)

#: The two vectors duelled by WI-2-DGIPPR (Section 5.3).  The paper notes
#: they clearly duel between PLRU and PMRU insertion, like DIP.
DGIPPR2_WI_VECTORS: List[IPV] = [
    IPV([8, 0, 2, 8, 12, 4, 6, 3, 0, 8, 10, 8, 4, 12, 14, 3, 15], name="2DG-A"),
    IPV([0, 0, 0, 0, 0, 0, 0, 0, 8, 8, 8, 8, 0, 0, 0, 0, 0], name="2DG-B"),
]

#: The four vectors duelled by WI-4-DGIPPR (Section 5.3): they switch between
#: PLRU, PMRU, near-PMRU and "middle" insertion.
DGIPPR4_WI_VECTORS: List[IPV] = [
    IPV([14, 5, 6, 1, 10, 6, 8, 8, 15, 8, 8, 14, 12, 4, 12, 9, 8], name="4DG-A"),
    IPV([4, 12, 2, 8, 10, 0, 6, 8, 0, 8, 8, 0, 2, 4, 14, 11, 15], name="4DG-B"),
    IPV([0, 0, 2, 1, 4, 4, 6, 5, 8, 8, 10, 1, 12, 8, 2, 1, 3], name="4DG-C"),
    IPV([11, 12, 10, 0, 5, 0, 10, 4, 9, 8, 10, 0, 4, 4, 12, 0, 0], name="4DG-D"),
]

#: Classic vectors at the paper's associativity, for convenience.
LRU16 = lru_ipv(16)
LIP16 = lip_ipv(16)


def paper_vectors() -> dict:
    """All published vectors keyed by their name."""
    out = {
        GIPLR_VECTOR.name: GIPLR_VECTOR,
        GIPPR_WI_VECTOR.name: GIPPR_WI_VECTOR,
        GIPPR_WN1_PERLBENCH.name: GIPPR_WN1_PERLBENCH,
    }
    for v in DGIPPR2_WI_VECTORS + DGIPPR4_WI_VECTORS:
        out[v.name] = v
    return out


#: Default location of locally evolved WN1/WI vector sets (produced by
#: ``scripts/evolve_wn1_vectors.py``).
WN1_VECTORS_PATH = os.path.join(os.path.dirname(__file__), "..", "data",
                                "wn1_vectors.json")


def load_wn1_vectors(path: Optional[str] = None) -> Dict[str, Dict[int, List[IPV]]]:
    """Load locally evolved WN1/WI vector sets, if present.

    Returns ``{held_out_benchmark: {vector_count: [IPV, ...]}}``; the key
    ``"WI"`` holds the workload-inclusive sets.  Returns an empty dict when
    the data file has not been generated (benches then skip the honest-WN1
    experiments and fall back to the published WI vectors).
    """
    path = path or WN1_VECTORS_PATH
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        payload = json.load(handle)
    out: Dict[str, Dict[int, List[IPV]]] = {}
    for held_out, by_count in payload["vectors"].items():
        out[held_out] = {
            int(count): [
                IPV(entries, name=f"wn1-{held_out}-{count}v{i}")
                for i, entries in enumerate(vector_lists)
            ]
            for count, vector_lists in by_count.items()
        }
    return out
