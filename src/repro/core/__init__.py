"""Core primitives: PLRU tree, IPVs, recency stacks and set-dueling."""

from .dueling import (
    BracketSelector,
    DuelSelector,
    SaturatingCounter,
    TournamentSelector,
    assign_leader_sets,
    make_selector,
)
from .ipv import IPV, lip_ipv, lru_ipv, mru_pessimistic_ipv, random_ipv
from .plru import (
    PLRUTree,
    all_positions,
    find_plru,
    position,
    promote,
    set_position,
    way_at_position,
)
from .recency import RecencyStack
from .vectors import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPLR_VECTOR,
    GIPPR_WI_VECTOR,
    GIPPR_WN1_PERLBENCH,
    LIP16,
    LRU16,
    paper_vectors,
)

__all__ = [
    "IPV",
    "lru_ipv",
    "lip_ipv",
    "mru_pessimistic_ipv",
    "random_ipv",
    "PLRUTree",
    "find_plru",
    "promote",
    "position",
    "set_position",
    "all_positions",
    "way_at_position",
    "RecencyStack",
    "SaturatingCounter",
    "DuelSelector",
    "TournamentSelector",
    "BracketSelector",
    "assign_leader_sets",
    "make_selector",
    "GIPLR_VECTOR",
    "GIPPR_WI_VECTOR",
    "GIPPR_WN1_PERLBENCH",
    "DGIPPR2_WI_VECTORS",
    "DGIPPR4_WI_VECTORS",
    "LRU16",
    "LIP16",
    "paper_vectors",
]
